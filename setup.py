"""Legacy entry point so `pip install -e .` works without the `wheel` package.

Offline environments missing `wheel` cannot run the PEP 517 editable
build; `pip install -e . --no-use-pep517 --no-build-isolation` uses this
file instead. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
