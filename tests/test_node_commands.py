"""Tests for the extended Memcached command surface.

TTL/expiration, add/replace, append/prepend, CAS, incr/decr, touch, and
the LRU crawler -- the substrate the paper's custom commands sit on.
"""

import pytest

from repro.memcached.node import MemcachedNode
from repro.memcached.slab import PAGE_SIZE


@pytest.fixture
def node() -> MemcachedNode:
    return MemcachedNode("n0", 4 * PAGE_SIZE)


class TestExpiration:
    def test_item_without_ttl_never_expires(self, node):
        node.set("k", "v", 100, 1.0)
        assert node.get("k", 1e9) == "v"

    def test_expired_item_misses(self, node):
        node.set("k", "v", 100, 1.0, exptime=10.0)
        assert node.get("k", 5.0) == "v"
        assert node.get("k", 11.0) is None
        assert node.stats.expired == 1

    def test_expiry_reclaims_memory(self, node):
        node.set("k", "v", 100, 1.0, exptime=10.0)
        used = node.used_bytes
        node.get("k", 20.0)
        assert node.used_bytes < used
        assert node.curr_items == 0

    def test_expiry_boundary_is_inclusive(self, node):
        node.set("k", "v", 100, 0.0, exptime=10.0)
        assert node.get("k", 9.999) == "v"
        assert node.get("k", 10.0) is None

    def test_overwrite_clears_ttl(self, node):
        node.set("k", "v1", 100, 0.0, exptime=5.0)
        node.set("k", "v2", 100, 1.0)
        assert node.get("k", 100.0) == "v2"

    def test_crawl_expired(self, node):
        for i in range(10):
            node.set(f"k{i}", i, 100, 0.0, exptime=5.0 if i % 2 else 0.0)
        reclaimed = node.crawl_expired(now=6.0)
        assert reclaimed == 5
        assert node.curr_items == 5
        assert node.stats.expired == 5

    def test_crawl_nothing_expired(self, node):
        node.set("k", "v", 100, 0.0)
        assert node.crawl_expired(now=100.0) == 0


class TestAddReplace:
    def test_add_only_when_absent(self, node):
        assert node.add("k", "v1", 100, 1.0)
        assert not node.add("k", "v2", 100, 2.0)
        assert node.get("k", 3.0) == "v1"

    def test_add_succeeds_after_expiry(self, node):
        node.set("k", "v1", 100, 0.0, exptime=5.0)
        assert node.add("k", "v2", 100, 10.0)
        assert node.get("k", 11.0) == "v2"

    def test_replace_only_when_present(self, node):
        assert not node.replace("k", "v", 100, 1.0)
        node.set("k", "v1", 100, 2.0)
        assert node.replace("k", "v2", 100, 3.0)
        assert node.get("k", 4.0) == "v2"


class TestConcat:
    def test_append(self, node):
        node.set("k", "hello", 5, 1.0)
        assert node.append("k", "!", 1, 2.0)
        assert node.get("k", 3.0) == ("hello", "!")
        assert node.peek("k").value_size == 6

    def test_prepend(self, node):
        node.set("k", "world", 5, 1.0)
        assert node.prepend("k", ">", 1, 2.0)
        assert node.get("k", 3.0) == (">", "world")

    def test_concat_on_missing_fails(self, node):
        assert not node.append("ghost", "x", 1, 1.0)
        assert not node.prepend("ghost", "x", 1, 1.0)

    def test_concat_preserves_remaining_ttl(self, node):
        node.set("k", "v", 1, 0.0, exptime=10.0)
        node.append("k", "w", 1, 4.0)
        assert node.get("k", 9.0) is not None
        assert node.get("k", 11.0) is None


class TestCas:
    def test_gets_returns_token(self, node):
        node.set("k", "v", 100, 1.0)
        value, token = node.gets("k", 2.0)
        assert value == "v"
        assert token > 0

    def test_gets_miss(self, node):
        assert node.gets("ghost", 1.0) is None

    def test_cas_stores_on_match(self, node):
        node.set("k", "v1", 100, 1.0)
        _, token = node.gets("k", 2.0)
        assert node.cas("k", "v2", 100, token, 3.0) == "stored"
        assert node.get("k", 4.0) == "v2"

    def test_cas_rejects_stale_token(self, node):
        node.set("k", "v1", 100, 1.0)
        _, token = node.gets("k", 2.0)
        node.set("k", "v2", 100, 3.0)  # token is now stale
        assert node.cas("k", "v3", 100, token, 4.0) == "exists"
        assert node.get("k", 5.0) == "v2"

    def test_cas_on_missing(self, node):
        assert node.cas("ghost", "v", 100, 1, 1.0) == "not_found"

    def test_cas_tokens_are_unique(self, node):
        node.set("a", 1, 100, 1.0)
        node.set("b", 2, 100, 2.0)
        assert node.peek("a").cas_id != node.peek("b").cas_id


class TestArithmetic:
    def test_incr(self, node):
        node.set("counter", 10, 100, 1.0)
        assert node.incr("counter", 5, 2.0) == 15
        assert node.get("counter", 3.0) == 15

    def test_decr_clamps_at_zero(self, node):
        node.set("counter", 3, 100, 1.0)
        assert node.decr("counter", 10, 2.0) == 0

    def test_arith_on_missing_returns_none(self, node):
        assert node.incr("ghost", 1, 1.0) is None

    def test_arith_on_non_numeric_raises(self, node):
        node.set("k", "not-a-number", 100, 1.0)
        with pytest.raises(ValueError):
            node.incr("k", 1, 2.0)

    def test_incr_refreshes_mru(self, node):
        node.set("a", 1, 100, 1.0)
        node.set("b", 2, 100, 2.0)
        node.incr("a", 1, 3.0)
        class_id = node.peek("a").slab_class_id
        assert node.dump_timestamps(class_id)[0][0] == "a"


class TestTouch:
    def test_touch_extends_ttl(self, node):
        node.set("k", "v", 100, 0.0, exptime=5.0)
        assert node.touch_item("k", 100.0, now=4.0)
        assert node.get("k", 50.0) == "v"

    def test_touch_can_clear_ttl(self, node):
        node.set("k", "v", 100, 0.0, exptime=5.0)
        node.touch_item("k", 0.0, now=1.0)
        assert node.get("k", 1e6) == "v"

    def test_touch_missing(self, node):
        assert not node.touch_item("ghost", 10.0, now=1.0)

    def test_touch_refreshes_recency(self, node):
        node.set("a", 1, 100, 1.0)
        node.set("b", 2, 100, 2.0)
        node.touch_item("a", 0.0, now=3.0)
        class_id = node.peek("a").slab_class_id
        assert node.dump_timestamps(class_id)[0][0] == "a"
