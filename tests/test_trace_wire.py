"""Cross-process trace propagation over the ``trace`` wire frame.

The tentpole observability claim: a sampled request entering the proxy
carries one trace id across OS processes -- proxy span, client RPC
span, and backend server span stitch into a single tree even though the
backend runs in a separate interpreter reached only over TCP.

The test boots ``repro serve`` as a real subprocess (exporting its
spans via ``--obs-jsonl``), fronts it with an in-process
:class:`~repro.proxy.server.ProxyServer` sampling at 100%, drives one
set/get through a real socket client, then merges both processes' JSONL
exports and asserts the stitched result.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.net.client import NodeClient
from repro.net.runtime import EventLoopThread
from repro.obs import create_telemetry
from repro.obs.livetrace import (
    read_live_spans,
    stitch_spans,
    write_live_jsonl,
)
from repro.proxy.router import ProxyRouter
from repro.proxy.server import ProxyServer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn_backend(jsonl_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--nodes",
            "1",
            "--memory-mb",
            "1",
            "--obs-jsonl",
            jsonl_path,
            "--trace-sample",
            "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=REPO_ROOT,
        text=True,
    )


def _read_endpoint(
    process: subprocess.Popen, timeout_s: float = 30.0
) -> tuple[str, tuple[str, int]]:
    """Parse the serve banner's ``  <name>  <host>:<port>`` line."""
    assert process.stdout is not None
    endpoint: tuple[str, tuple[str, int]] | None = None
    deadline = time.monotonic() + timeout_s
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        parts = line.split()
        if len(parts) == 2 and ":" in parts[1] and line.startswith("  "):
            host, _, port = parts[1].rpartition(":")
            endpoint = (parts[0], (host, int(port)))
        if "serving" in line:
            if endpoint is None:
                break
            return endpoint
    pytest.fail(f"no backend endpoint in serve banner: {lines!r}")


@pytest.mark.slow
def test_one_trace_id_spans_two_processes(tmp_path):
    backend_jsonl = str(tmp_path / "backend_spans.jsonl")
    proxy_jsonl = str(tmp_path / "proxy_spans.jsonl")
    backend = _spawn_backend(backend_jsonl)
    loop = EventLoopThread(name="trace-wire-proxy")
    telemetry = create_telemetry(
        "test-proxy", live_trace=True, trace_sample=1.0, trace_seed=1
    )
    server = None
    client = None
    try:
        name, endpoint = _read_endpoint(backend)
        router = ProxyRouter({name: endpoint}, telemetry=telemetry)
        server = ProxyServer(router, telemetry=telemetry)
        loop.start()
        loop.call(server.start(), timeout=10.0)
        host, port = server.endpoint
        client = NodeClient("front", host, port, timeout_s=5.0)
        assert loop.call(client.set("wire:key", b"payload"), timeout=10.0)
        assert (
            loop.call(client.get("wire:key"), timeout=10.0) is not None
        )
    finally:
        if client is not None:
            loop.call(client.close(), timeout=5.0)
        if server is not None:
            loop.call(server.stop(), timeout=10.0)
        loop.stop()
        backend.send_signal(signal.SIGTERM)
        try:
            tail = backend.communicate(timeout=30.0)[0]
        except subprocess.TimeoutExpired:
            backend.kill()
            backend.communicate()
            pytest.fail("backend did not exit after SIGTERM")
    assert backend.returncode == 0, tail
    write_live_jsonl(proxy_jsonl, telemetry.live, metrics=telemetry.metrics)

    spans = read_live_spans([backend_jsonl, proxy_jsonl])
    traces = stitch_spans(spans)
    assert traces, "no stitched traces recovered from the JSONL exports"
    get_traces = [
        trace
        for trace in traces
        if {"test-proxy", "serve"} <= set(trace.processes)
        and any(s.name == "proxy.get" for s in trace.spans)
    ]
    assert get_traces, (
        "no trace crossed both processes with a proxy.get span: "
        f"{[(t.processes, sorted({s.name for s in t.spans})) for t in traces]}"
    )
    trace = get_traces[0]
    names = {span.name for span in trace.spans}
    # One trace id covers the proxy hop, the client RPC, and the remote
    # backend's execution -- the cross-process stitch.
    assert {"proxy.get", "client.rpc", "server.get"} <= names
    assert all(span.trace_id == trace.trace_id for span in trace.spans)
    by_process = {
        span.process for span in trace.spans
    }
    assert {"test-proxy", "serve"} <= by_process
    # Parent links hold across the process boundary: the backend span's
    # parent is the proxy-side client RPC span.
    server_get = next(s for s in trace.spans if s.name == "server.get")
    rpc_ids = {
        s.span_id for s in trace.spans if s.name == "client.rpc"
    }
    assert server_get.parent_id in rpc_ids
