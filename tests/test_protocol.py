"""Tests for the Memcached ASCII protocol facade."""

import pytest

from repro.memcached.node import MemcachedNode
from repro.memcached.protocol import TextProtocolServer
from repro.memcached.slab import PAGE_SIZE


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def server(clock) -> TextProtocolServer:
    node = MemcachedNode("n0", 4 * PAGE_SIZE)
    return TextProtocolServer(node, clock)


def set_key(server, key, payload=b"hello", flags=0, exptime=0):
    return server.execute(
        f"set {key} {flags} {exptime} {len(payload)}", payload
    )


class TestStorage:
    def test_set_and_get(self, server):
        assert set_key(server, "k") == b"STORED\r\n"
        assert (
            server.execute("get k")
            == b"VALUE k 0 5\r\nhello\r\nEND\r\n"
        )

    def test_get_miss_returns_end_only(self, server):
        assert server.execute("get ghost") == b"END\r\n"

    def test_multi_get(self, server):
        set_key(server, "a", b"1")
        set_key(server, "b", b"22")
        response = server.execute("get a b ghost")
        assert b"VALUE a 0 1\r\n1\r\n" in response
        assert b"VALUE b 0 2\r\n22\r\n" in response
        assert response.endswith(b"END\r\n")

    def test_flags_roundtrip(self, server):
        set_key(server, "k", b"x", flags=42)
        assert b"VALUE k 42 1" in server.execute("get k")

    def test_add_semantics(self, server):
        assert server.execute("add k 0 0 1", b"a") == b"STORED\r\n"
        assert server.execute("add k 0 0 1", b"b") == b"NOT_STORED\r\n"

    def test_replace_semantics(self, server):
        assert server.execute("replace k 0 0 1", b"a") == b"NOT_STORED\r\n"
        set_key(server, "k")
        assert server.execute("replace k 0 0 1", b"b") == b"STORED\r\n"

    def test_append_prepend(self, server):
        set_key(server, "k", b"mid")
        assert server.execute("append k 0 0 3", b"end") == b"STORED\r\n"
        assert server.execute("prepend k 0 0 4", b"pre-") == b"STORED\r\n"
        assert b"pre-midend" in server.execute("get k")

    def test_append_missing_not_stored(self, server):
        assert server.execute("append k 0 0 1", b"x") == b"NOT_STORED\r\n"

    def test_bad_data_trailer(self, server):
        response = server.feed(b"set k 0 0 2\r\nabXX")
        assert b"CLIENT_ERROR" in response

    def test_oversized_key_rejected(self, server):
        key = "k" * 251
        response = server.execute(f"set {key} 0 0 1", b"x")
        assert b"CLIENT_ERROR" in response

    def test_malformed_storage_header(self, server):
        assert b"CLIENT_ERROR" in server.execute("set k 0 0")
        assert b"CLIENT_ERROR" in server.execute("set k 0 0 notanum")


class TestCasProtocol:
    def test_gets_and_cas_roundtrip(self, server):
        set_key(server, "k")
        response = server.execute("gets k").decode()
        token = int(response.split("\r\n")[0].split()[-1])
        assert (
            server.execute(f"cas k 0 0 3 {token}", b"new") == b"STORED\r\n"
        )

    def test_cas_stale_token(self, server):
        set_key(server, "k")
        response = server.execute("gets k").decode()
        token = int(response.split("\r\n")[0].split()[-1])
        set_key(server, "k", b"other")
        assert (
            server.execute(f"cas k 0 0 1 {token}", b"x") == b"EXISTS\r\n"
        )

    def test_cas_missing_key(self, server):
        assert server.execute("cas k 0 0 1 7", b"x") == b"NOT_FOUND\r\n"


class TestMutation:
    def test_delete(self, server):
        set_key(server, "k")
        assert server.execute("delete k") == b"DELETED\r\n"
        assert server.execute("delete k") == b"NOT_FOUND\r\n"

    def test_incr_decr(self, server):
        set_key(server, "n", b"10")
        assert server.execute("incr n 5") == b"15\r\n"
        assert server.execute("decr n 100") == b"0\r\n"

    def test_incr_non_numeric(self, server):
        set_key(server, "k", b"abc")
        assert b"CLIENT_ERROR" in server.execute("incr k 1")

    def test_incr_missing(self, server):
        assert server.execute("incr ghost 1") == b"NOT_FOUND\r\n"

    def test_touch(self, server, clock):
        server.execute("set k 0 10 1", b"x")
        assert server.execute("touch k 100") == b"TOUCHED\r\n"
        clock.now = 50.0
        assert b"VALUE" in server.execute("get k")

    def test_touch_missing(self, server):
        assert server.execute("touch ghost 10") == b"NOT_FOUND\r\n"

    def test_expiry_via_protocol(self, server, clock):
        server.execute("set k 0 10 1", b"x")
        clock.now = 11.0
        assert server.execute("get k") == b"END\r\n"

    def test_flush_all(self, server):
        set_key(server, "k")
        assert server.execute("flush_all") == b"OK\r\n"
        assert server.execute("get k") == b"END\r\n"


class TestMeta:
    def test_version(self, server):
        assert server.execute("version").startswith(b"VERSION")

    def test_unknown_command(self, server):
        assert server.execute("frobnicate") == b"ERROR\r\n"

    def test_empty_line(self, server):
        assert server.feed(b"\r\n") == b"ERROR\r\n"

    def test_stats(self, server):
        set_key(server, "k")
        server.execute("get k")
        stats = server.execute("stats").decode()
        assert "STAT curr_items 1" in stats
        assert "STAT get_hits 1" in stats
        assert stats.endswith("END\r\n")

    def test_stats_slabs(self, server):
        set_key(server, "k")
        response = server.execute("stats slabs").decode()
        assert "chunk_size" in response
        assert "active_slabs" in response


class TestIncrementalParsing:
    def test_command_split_across_chunks(self, server):
        assert server.feed(b"set k 0 0 5") == b""
        assert server.feed(b"\r\nhel") == b""
        assert server.feed(b"lo\r\n") == b"STORED\r\n"

    def test_payload_containing_crlf(self, server):
        payload = b"a\r\nb"
        response = server.execute(f"set k 0 0 {len(payload)}", payload)
        assert response == b"STORED\r\n"
        assert payload in server.execute("get k")

    def test_pipelined_commands(self, server):
        data = (
            b"set a 0 0 1\r\nx\r\n"
            b"set b 0 0 1\r\ny\r\n"
            b"get a b\r\n"
        )
        response = server.feed(data)
        assert response.count(b"STORED\r\n") == 2
        assert b"VALUE a" in response and b"VALUE b" in response
