"""Corpus: REP106 -- ambient contextvar reads across the thread bridge."""
# module: repro.net.corpus_rep106

from contextvars import copy_context

from repro.obs.livetrace import current_context

TRACE_CONTEXT = None  # stands in for a module-level ContextVar


async def send(node, payload):
    ctx = current_context()  # expect: REP106
    ambient = TRACE_CONTEXT.get()  # expect: REP106
    snapshot = copy_context()  # expect: REP106
    return await node.write(payload, ctx, ambient, snapshot)


def bridge(node, payload):
    # Reading the ambient context on the *calling* thread, before the
    # bridge hop, is exactly how the override should be captured.
    ctx = current_context()
    return node.submit(node.write(payload, ctx, None, None))
