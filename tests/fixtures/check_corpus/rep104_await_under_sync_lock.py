"""Corpus: REP104 -- ``await`` while holding a synchronous lock."""

import asyncio
import threading


async def refresh(state):
    with state.lock:
        await state.reload()  # expect: REP104


async def guarded(data):
    with threading.Lock():
        await asyncio.sleep(0)  # expect: REP104


async def sanctioned(state):
    async with state.send_lock:
        await state.reload()


async def released_first(state):
    with state.lock:
        snapshot = dict(state.table)
    await state.push(snapshot)
