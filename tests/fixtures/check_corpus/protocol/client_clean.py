"""Corpus: miniature client whose emissions match ``server.py``."""

CRLF = b"\r\n"


def _command(text, payload=None):
    wire = text.encode() + CRLF
    if payload is not None:
        wire += payload + CRLF
    return wire


async def _read_simple(conn):
    return await conn.readline()


async def _read_values(conn):
    line = await conn.readline()
    while line.startswith(b"VALUE "):
        line = await conn.readline()
    return line


async def _read_stats(conn):
    line = await conn.readline()
    while line.startswith(b"STAT "):
        line = await conn.readline()
    return line


class _Request:
    def __init__(self, wire, reader):
        self.wire = wire
        self.reader = reader


class NodeClient:
    async def get(self, keys):
        return _Request(_command("get " + " ".join(keys)), _read_values)

    async def delete(self, key):
        return _Request(_command(f"delete {key}"), _read_simple)

    async def stats(self):
        return _Request(_command("stats"), _read_stats)

    async def set(self, key, value):
        return _Request(
            _command(f"set {key} 0 0 {len(value)}", value), _read_simple
        )

    async def trace(self, span):
        return _Request(_command(f"trace {span}"), _read_simple)
