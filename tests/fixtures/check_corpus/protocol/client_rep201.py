"""Corpus: REP201 -- client emits a verb the server never handles."""

CRLF = b"\r\n"


def _command(text, payload=None):
    return text.encode() + CRLF


async def _read_simple(conn):
    return await conn.readline()


class _Request:
    def __init__(self, wire, reader):
        self.wire = wire
        self.reader = reader


class NodeClient:
    async def frobnicate(self, key):
        # expect: REP201 -- no `_cmd_frobnicate` on the server
        return _Request(_command(f"frobnicate {key}"), _read_simple)
