"""Corpus: REP203 -- client emits an arity the server rejects."""

CRLF = b"\r\n"


def _command(text, payload=None):
    return text.encode() + CRLF


async def _read_simple(conn):
    return await conn.readline()


class _Request:
    def __init__(self, wire, reader):
        self.wire = wire
        self.reader = reader


class NodeClient:
    async def delete(self, key, flag):
        # expect: REP203 -- server's `_cmd_delete` insists on exactly one
        return _Request(_command(f"delete {key} {flag}"), _read_simple)
