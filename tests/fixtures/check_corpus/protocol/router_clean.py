"""Corpus: miniature router calling real ``NodeClient`` methods."""


class ProxyRouter:
    def __init__(self, clients):
        self._clients = clients

    def client(self, backend):
        return self._clients[backend]

    async def route(self, command, args, backend="b0"):
        if command == "get":
            return await self.client(backend).get(args)
        return await self.client(backend).delete(args[0])
