"""Corpus: REP204 -- router calls a ``NodeClient`` method that is gone."""


class ProxyRouter:
    def __init__(self, clients):
        self._clients = clients

    def client(self, backend):
        return self._clients[backend]

    async def route(self, command, args, backend="b0"):
        # expect: REP204 -- `NodeClient` defines no `get_many`
        return await self.client(backend).get_many(args)
