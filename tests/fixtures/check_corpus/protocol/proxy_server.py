"""Corpus: miniature proxy front-end (baseline routed-verb set)."""

ROUTED_COMMANDS = frozenset({"get", "delete"})


class ProxyServer:
    def __init__(self, router):
        self.router = router

    async def handle(self, command, args):
        if command in ROUTED_COMMANDS:
            return await self.router.route(command, args)
        return b"ERROR\r\n"
