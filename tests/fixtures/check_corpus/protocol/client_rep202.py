"""Corpus: REP202 -- client reads a framing the server never produces."""

CRLF = b"\r\n"


def _command(text, payload=None):
    return text.encode() + CRLF


async def _read_stats(conn):
    line = await conn.readline()
    while line.startswith(b"STAT "):
        line = await conn.readline()
    return line


class _Request:
    def __init__(self, wire, reader):
        self.wire = wire
        self.reader = reader


class NodeClient:
    async def get(self, keys):
        # expect: REP202 -- `get` answers with VALUE blocks, not STAT
        return _Request(_command("get " + " ".join(keys)), _read_stats)
