"""Corpus: REP205 -- proxy routes a verb no backend server handles."""

# expect: REP205 -- `purge` has no `_cmd_purge` on the backend server
ROUTED_COMMANDS = frozenset({"get", "delete", "purge"})


class ProxyServer:
    def __init__(self, router):
        self.router = router

    async def handle(self, command, args):
        if command in ROUTED_COMMANDS:
            return await self.router.route(command, args)
        return b"ERROR\r\n"
