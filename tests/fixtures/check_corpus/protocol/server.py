"""Corpus: miniature server parser (baseline for conformance drift)."""

CRLF = b"\r\n"

STORAGE_COMMANDS = frozenset({"set"})


class TextProtocolServer:
    def _dispatch(self, command, args):
        if command == "trace":
            return b"OK" + CRLF
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return b"ERROR" + CRLF
        return handler(args)

    def _cmd_get(self, keys):
        if not keys:
            return b"ERROR" + CRLF
        lines = [f"VALUE {key} 0 1".encode() for key in keys]
        return CRLF.join(lines) + b"END" + CRLF

    def _cmd_delete(self, args):
        if len(args) != 1:
            return b"ERROR" + CRLF
        return b"DELETED" + CRLF

    def _cmd_stats(self, args):
        return b"STAT uptime 1" + CRLF + b"END" + CRLF

    def _begin_storage(self, command, parts):
        expected = 6 if command == "cas" else 5
        if len(parts) not in (expected, expected + 1):
            return b"CLIENT_ERROR bad header" + CRLF
        return None

    def _store(self, payload):
        return b"STORED" + CRLF
