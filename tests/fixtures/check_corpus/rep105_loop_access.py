"""Corpus: REP105 -- non-thread-safe loop access from synchronous code."""

import asyncio


def kick(loop, callback):
    loop.call_soon(callback)  # expect: REP105


def adopt():
    return asyncio.get_event_loop()  # expect: REP105


def defer(event_loop, callback):
    event_loop.call_later(0.5, callback)  # expect: REP105


def safe(loop, coro, callback):
    loop.call_soon_threadsafe(callback)
    return asyncio.run_coroutine_threadsafe(coro, loop)


async def on_loop(coro):
    # On the loop's own thread these entry points are legal.
    return asyncio.get_running_loop().create_task(coro)
