"""Corpus: REP102 -- coroutines called but never awaited."""

import asyncio


async def warm_up(node):
    await node.connect()


async def drive(node):
    warm_up(node)  # expect: REP102
    asyncio.sleep(0.5)  # expect: REP102
    await node.close()


class Pool:
    async def drain(self):
        await asyncio.sleep(0)

    async def shutdown(self):
        self.drain()  # expect: REP102
        await asyncio.sleep(0)

    async def legit(self):
        await self.drain()
        task = asyncio.get_running_loop().create_task(self.drain())
        return await task

    def sync_lifecycle(self):
        # Sync methods sharing a name with coroutines elsewhere in the
        # module must stay clean (the harness start/stop pattern).
        self.start()
        self.stop()

    def start(self):
        return self

    def stop(self):
        return self


async def start():
    await asyncio.sleep(0)
