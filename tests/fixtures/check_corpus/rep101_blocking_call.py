"""Corpus: REP101 -- blocking calls inside ``async def``."""

import time


async def poll(client):
    time.sleep(0.1)  # expect: REP101
    return await client.ping()


async def load(path, target):
    with open(path) as handle:  # expect: REP101
        data = handle.readline()
    text = target.read_text()  # expect: REP101
    return data, text


async def join_bridge(loop, coro):
    future = loop.submit(coro)
    return future.result()  # expect: REP101


async def clean(client):
    # A sync helper defined inside the coroutine is its own scope: it
    # may run on an executor thread, so its body must not be attributed
    # to the enclosing coroutine.
    def backoff():
        time.sleep(0.1)

    return await client.ping(backoff)


def sync_wait():
    time.sleep(0.1)
