"""Corpus: REP103 -- tasks spawned without retaining a reference."""

import asyncio


async def fire_and_forget(coro):
    asyncio.create_task(coro)  # expect: REP103


def schedule(loop_thread, coro):
    asyncio.ensure_future(coro, loop=loop_thread.loop)  # expect: REP103


class Router:
    def __init__(self):
        self._tasks = set()

    async def spawn(self, coro):
        # The sanctioned pattern (ProxyRouter._spawn): retain the task
        # and discard it from the registry when it completes.
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task
