"""Stateful property test: the Memcached node against a reference model.

Drives a node through random command sequences while mirroring the
expected visible state in plain dicts, checking after every step that
lookups, memory accounting, and MRU structure stay coherent.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.memcached.node import MemcachedNode, MigratedItem
from repro.memcached.slab import PAGE_SIZE

KEYS = [f"key-{i}" for i in range(30)]


class NodeMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        # Large enough that nothing is evicted: the model assumes every
        # set sticks (eviction correctness is tested separately).
        self.node = MemcachedNode("n", 16 * PAGE_SIZE)
        self.model: dict[str, object] = {}
        self.expiry: dict[str, float] = {}
        self.clock = 0.0

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def _expire_model(self) -> None:
        dead = [
            key
            for key, deadline in self.expiry.items()
            if deadline <= self.clock
        ]
        for key in dead:
            self.model.pop(key, None)
            self.expiry.pop(key, None)

    @rule(key=st.sampled_from(KEYS), size=st.integers(1, 2000))
    def do_set(self, key, size):
        now = self._tick()
        assert self.node.set(key, f"v@{now}", size, now)
        self.model[key] = f"v@{now}"
        self.expiry.pop(key, None)

    @rule(
        key=st.sampled_from(KEYS),
        size=st.integers(1, 500),
        ttl=st.integers(1, 5),
    )
    def do_set_with_ttl(self, key, size, ttl):
        now = self._tick()
        assert self.node.set(key, f"t@{now}", size, now, exptime=float(ttl))
        self.model[key] = f"t@{now}"
        self.expiry[key] = now + ttl

    @rule(key=st.sampled_from(KEYS))
    def do_get(self, key):
        now = self._tick()
        self._expire_model()
        value = self.node.get(key, now)
        assert value == self.model.get(key)

    @rule(key=st.sampled_from(KEYS))
    def do_delete(self, key):
        self._tick()
        deleted = self.node.delete(key)
        # Lazy expiry: the node may still hold an expired item the model
        # already dropped; deleting it is allowed either way.
        if key in self.model:
            assert deleted
        self.model.pop(key, None)
        self.expiry.pop(key, None)

    @rule(
        key=st.sampled_from(KEYS),
        size=st.integers(1, 500),
        age=st.floats(0.0, 10.0),
    )
    def do_import(self, key, size, age):
        now = self._tick()
        migrated = MigratedItem(
            key=key,
            value=f"m@{now}",
            value_size=size,
            last_access=max(0.0, now - age),
        )
        assert self.node.batch_import([migrated], mode="merge") == 1
        self.model[key] = f"m@{now}"
        self.expiry.pop(key, None)

    @rule()
    def do_crawl(self):
        self._tick()
        self._expire_model()
        self.node.crawl_expired(self.clock)

    @invariant()
    def table_matches_model_size(self):
        self._expire_model()
        # The node may lag the model by items that expired but were not
        # yet lazily reclaimed -- never the other way around.
        live = {
            key
            for key in self.model
        }
        for key in live:
            assert self.node.contains(key)

    @invariant()
    def memory_accounting_consistent(self):
        assert self.node.used_bytes <= self.node.memory_bytes
        assert self.node.slabs.item_count() == self.node.curr_items

    @invariant()
    def mru_lists_are_well_formed(self):
        for slab_class in self.node.slabs.classes:
            slab_class.mru.check_invariants()

    @invariant()
    def merge_mode_keeps_lists_sorted(self):
        for class_id in self.node.active_class_ids():
            timestamps = [
                ts for _, ts in self.node.dump_timestamps(class_id)
            ]
            assert timestamps == sorted(timestamps, reverse=True)


TestNodeStateMachine = NodeMachine.TestCase
TestNodeStateMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
