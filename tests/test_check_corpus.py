"""Every seeded corpus violation fires exactly where marked.

``tests/fixtures/check_corpus`` holds one deliberately-broken snippet
per REP1xx concurrency rule plus a miniature server/client/proxy triple
with one seeded protocol drift per REP2xx check.  The assertions here
pin each rule to its ``# expect: REPnnn`` lines and *nowhere else* --
each snippet doubles as a negative fixture for the other rules -- and
confirm the real tree stays clean under the same packs.
"""

import re
from pathlib import Path

import pytest

from repro.check import ASYNC_RULES, check_conformance, lint_paths
from repro.check.lint import Linter, module_name_for
from repro.check.rules import DEFAULT_RULES

CORPUS = Path(__file__).resolve().parent / "fixtures" / "check_corpus"
PROTOCOL = CORPUS / "protocol"
SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

EXPECT = re.compile(r"#\s*expect:\s*(REP\d{3})")
MODULE = re.compile(r"#\s*module:\s*(\S+)")

RULE_FIXTURES = sorted(CORPUS.glob("rep1*.py"))


def expected_markers(path: Path) -> set[tuple[str, int]]:
    """``(code, line)`` pairs from the ``# expect:`` markers in a file."""
    return {
        (match.group(1), lineno)
        for lineno, line in enumerate(path.read_text().splitlines(), 1)
        for match in [EXPECT.search(line)]
        if match is not None
    }


def fixture_module(path: Path) -> str:
    """Module name from the ``# module:`` directive, else the bare stem."""
    match = MODULE.search(path.read_text())
    return match.group(1) if match is not None else module_name_for(path)


# ----------------------------------------------------------------------
# REP1xx corpus
# ----------------------------------------------------------------------


def test_corpus_covers_every_async_rule():
    seeded = {path.name.split("_")[0].upper() for path in RULE_FIXTURES}
    assert seeded == {rule.code for rule in ASYNC_RULES}


@pytest.mark.parametrize(
    "path", RULE_FIXTURES, ids=lambda path: path.stem
)
def test_async_rules_fire_exactly_at_markers(path):
    linter = Linter(list(ASYNC_RULES))
    found = {
        (violation.code, violation.line)
        for violation in linter.check_source(
            path.read_text(),
            path=str(path),
            module=fixture_module(path),
        )
    }
    markers = expected_markers(path)
    assert markers, f"{path.name} has no # expect: markers"
    assert found == markers


def test_async_pack_is_clean_on_source_tree():
    violations = lint_paths(
        [SRC], rules=tuple(DEFAULT_RULES) + tuple(ASYNC_RULES)
    )
    assert violations == []


# ----------------------------------------------------------------------
# REP2xx protocol-drift corpus
# ----------------------------------------------------------------------


def conformance(
    client: str = "client_clean.py",
    proxy_server: str | None = None,
    router: str | None = None,
):
    proxy_kwargs = {}
    if proxy_server is not None and router is not None:
        proxy_kwargs = {
            "proxy_server_path": PROTOCOL / proxy_server,
            "proxy_router_path": PROTOCOL / router,
        }
    return check_conformance(
        PROTOCOL / "server.py", PROTOCOL / client, **proxy_kwargs
    )


def test_protocol_corpus_baseline_is_clean():
    assert (
        conformance(
            proxy_server="proxy_server.py", router="router_clean.py"
        )
        == []
    )


@pytest.mark.parametrize(
    ("client", "proxy_server", "router", "code", "drift_file"),
    [
        ("client_rep201.py", None, None, "REP201", "client_rep201.py"),
        ("client_rep202.py", None, None, "REP202", "client_rep202.py"),
        ("client_rep203.py", None, None, "REP203", "client_rep203.py"),
        (
            "client_clean.py",
            "proxy_server.py",
            "router_rep204.py",
            "REP204",
            "router_rep204.py",
        ),
        (
            "client_clean.py",
            "proxy_server_rep205.py",
            "router_clean.py",
            "REP205",
            "proxy_server_rep205.py",
        ),
    ],
)
def test_each_seeded_drift_is_detected(
    client, proxy_server, router, code, drift_file
):
    violations = conformance(client, proxy_server, router)
    assert [violation.code for violation in violations] == [code]
    assert violations[0].path.endswith(drift_file)
