"""Load generator tests: deterministic tapes, open-loop discipline.

The schedule and report tests are pure; the open-loop tests drive a real
:class:`~repro.net.server.LiveClusterHarness` over localhost sockets
(in-process servers, so they stay in tier 1 -- the multi-process runs
live in ``tests/test_proc_cluster.py``).  The coordinated-omission test
stalls the backend with a socket fault stub and checks that the
generator charges the stall to the requests it delayed instead of
quietly moving their deadlines.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.loadgen import (
    LoadGenerator,
    LoadReport,
    build_schedule,
    payload_for,
    tape_rows,
    tape_sha256,
)
from repro.memcached.slab import PAGE_SIZE
from repro.net.server import LiveClusterHarness
from repro.workloads.traces import make_trace

MEMORY = 8 * PAGE_SIZE


class TestSchedule:
    def test_same_args_same_tape(self):
        first = build_schedule(200.0, 1.5, seed=9, num_keys=300)
        second = build_schedule(200.0, 1.5, seed=9, num_keys=300)
        assert tape_rows(first) == tape_rows(second)
        assert tape_sha256(first) == tape_sha256(second)

    def test_different_seeds_diverge(self):
        first = build_schedule(200.0, 1.0, seed=1, num_keys=300)
        second = build_schedule(200.0, 1.0, seed=2, num_keys=300)
        assert tape_sha256(first) != tape_sha256(second)

    def test_deadlines_are_non_decreasing(self):
        schedule = build_schedule(
            150.0, 3.0, seed=4, trace=make_trace("sys")
        )
        deadlines = [op.send_at_s for op in schedule]
        assert deadlines == sorted(deadlines)
        assert deadlines[-1] < 3.0

    def test_trace_shapes_per_second_counts(self):
        rate = 400.0
        schedule = build_schedule(
            rate, 4.0, seed=4, trace=make_trace("sys")
        )
        per_second = [0, 0, 0, 0]
        for op in schedule:
            per_second[int(op.send_at_s)] += 1
        # The trace is normalised to peak 1.0, so no second exceeds the
        # peak rate and the shape actually varies.
        assert max(per_second) <= rate
        assert len(set(per_second)) > 1

    def test_set_fraction_extremes(self):
        all_gets = build_schedule(100.0, 0.5, set_fraction=0.0)
        assert all(op.op == "get" and op.value_bytes == 0 for op in all_gets)
        all_sets = build_schedule(
            100.0, 0.5, set_fraction=1.0, value_bytes=32
        )
        assert all(
            op.op == "set" and op.value_bytes == 32 for op in all_sets
        )

    def test_payload_is_key_derived_and_sized(self):
        payload = payload_for("key-000042", 64)
        assert len(payload) == 64
        assert payload.startswith(b"key-000042#")
        assert payload_for("k", 0) == b""

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_schedule(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            build_schedule(100.0, 0.0)
        with pytest.raises(ConfigurationError):
            build_schedule(100.0, 1.0, set_fraction=1.5)

    def test_tape_rows_carry_no_wall_clock_fields(self):
        rows = tape_rows(build_schedule(50.0, 0.5, seed=2))
        assert rows
        for row in rows:
            assert set(row) == {"i", "t", "op", "key", "size"}


class TestReportRoundTrip:
    def make_report(self) -> LoadReport:
        return LoadReport(
            mode="migrate",
            offered_rate=500.0,
            duration_s=10.0,
            seed=7,
            nodes=["proc-00", "proc-01", "proc-02"],
            ops_total=5000,
            ops_sent=4990,
            ops_ok=4980,
            hits=4200,
            misses=300,
            stored=480,
            transport_errors=10,
            wire_errors=0,
            late_sends=12,
            achieved_rate=497.2,
            wall_seconds=10.016,
            response_ms={"p50": 1.2, "p95": 3.4, "p99": 8.9},
            service_ms={"p50": 0.8, "p95": 2.1, "p99": 4.4},
            lateness_ms={"p50": 0.1, "p95": 0.9, "p99": None},
            tape_sha256="ab" * 32,
            trace="sys",
            migration={
                "retired": ["proc-02"],
                "outcome": "warm",
                "killed_at_s": 3.5,
                "recovered_at_s": 3.9,
                "window_s": 0.4,
            },
            extras={"note": "fixture"},
        )

    def test_to_dict_from_dict_round_trip(self):
        report = self.make_report()
        assert LoadReport.from_dict(report.to_dict()) == report

    def test_survives_json_serialisation(self):
        report = self.make_report()
        decoded = json.loads(json.dumps(report.to_dict()))
        assert LoadReport.from_dict(decoded) == report
        assert decoded == report.to_dict()

    def test_optional_fields_default(self):
        data = self.make_report().to_dict()
        data["trace"] = None
        data["migration"] = None
        del data["extras"]
        rebuilt = LoadReport.from_dict(data)
        assert rebuilt.migration is None
        assert rebuilt.extras == {}
        assert rebuilt.achieved_fraction == pytest.approx(4980 / 5000)


class StallEveryChunk:
    """Fault stub: delay every request chunk by a fixed amount."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def disposition(self, node: str) -> tuple[str, float]:
        return ("delay", self.delay_s)


class TestOpenLoopRuns:
    def run_generator(self, harness: LiveClusterHarness, **kwargs):
        schedule = kwargs.pop("schedule")
        generator = LoadGenerator(
            harness.endpoints, schedule, **kwargs
        )
        asyncio.run(generator.run())
        return generator

    def test_steady_run_completes_the_whole_tape(self):
        schedule = build_schedule(
            300.0, 0.4, seed=5, num_keys=200, set_fraction=0.25
        )
        with LiveClusterHarness(["s0", "s1"], MEMORY) as harness:
            generator = self.run_generator(
                harness, schedule=schedule, tick_s=0.01
            )
        assert generator.ops_ok == generator.ops_total == len(schedule)
        assert generator.transport_errors == 0
        assert generator.wire_errors == 0
        sets = sum(1 for op in schedule if op.op == "set")
        assert generator.stored == sets
        assert generator.hits + generator.misses == len(schedule) - sets
        report = generator.report("steady", 300.0, 0.4, 5)
        assert report.achieved_rate > 0
        assert report.tape_sha256 == tape_sha256(schedule)
        assert report.response_ms["p99"] is not None

    def test_stalled_backend_records_lateness_not_omission(self):
        # 40 ops due inside 0.2 s against a backend that stalls every
        # chunk 50 ms, with one request slot: the tape falls behind by
        # design.  Open-loop discipline says the lateness is *recorded*
        # -- deadlines never move, and response time (charged from the
        # scheduled send) dominates service time (the wire round trip).
        schedule = build_schedule(
            200.0, 0.2, seed=6, num_keys=50, set_fraction=0.0
        )
        stall = StallEveryChunk(0.05)
        with LiveClusterHarness(
            ["s0"], MEMORY, fault_policy=stall
        ) as harness:
            generator = self.run_generator(
                harness,
                schedule=schedule,
                tick_s=0.01,
                max_inflight=1,
                late_threshold_s=0.005,
            )
        assert generator.ops_ok == len(schedule)  # nothing dropped
        assert generator.late_sends > 0
        # The run overran its offered window instead of thinning itself.
        assert generator.wall_seconds > 0.2
        response_p50 = generator.response_hist.quantile(0.50)
        service_p50 = generator.service_hist.quantile(0.50)
        assert response_p50 is not None and service_p50 is not None
        assert response_p50 > service_p50
        # The tape itself is untouched: same digest as when it was built.
        report = generator.report("steady", 200.0, 0.2, 6)
        assert report.tape_sha256 == tape_sha256(schedule)
        assert report.late_sends == generator.late_sends
        assert report.achieved_rate < 200.0

    def test_membership_swap_validates_and_rebinds(self):
        schedule = build_schedule(100.0, 0.1, seed=1, num_keys=20)
        endpoints = {
            "a": ("127.0.0.1", 1),
            "b": ("127.0.0.1", 2),
            "c": ("127.0.0.1", 3),
        }
        generator = LoadGenerator(endpoints, schedule)
        assert generator.members == frozenset({"a", "b", "c"})
        generator.set_membership(["a", "b"])
        assert generator.members == frozenset({"a", "b"})
        with pytest.raises(ConfigurationError):
            generator.set_membership(["a", "zz"])

    def test_generator_validation(self):
        schedule = build_schedule(100.0, 0.1)
        with pytest.raises(ConfigurationError):
            LoadGenerator({}, schedule)
        with pytest.raises(ConfigurationError):
            LoadGenerator({"a": ("127.0.0.1", 1)}, [])
        with pytest.raises(ConfigurationError):
            LoadGenerator({"a": ("127.0.0.1", 1)}, schedule, tick_s=0.0)
