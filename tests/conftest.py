"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MemcachedNode
from repro.memcached.slab import PAGE_SIZE


@pytest.fixture
def small_node() -> MemcachedNode:
    """A 4-page node, enough for a few thousand small items."""
    return MemcachedNode("n0", 4 * PAGE_SIZE)


@pytest.fixture
def small_cluster() -> MemcachedCluster:
    """Four 4-page nodes on a ketama ring."""
    names = [f"node-{i:03d}" for i in range(4)]
    return MemcachedCluster(names, 4 * PAGE_SIZE)


def fill_node(
    node: MemcachedNode,
    count: int,
    value_size: int = 100,
    start_time: float = 0.0,
    prefix: str = "k",
) -> list[str]:
    """Insert ``count`` items with increasing timestamps; returns keys."""
    keys = []
    for i in range(count):
        key = f"{prefix}{i:08d}"
        assert node.set(key, f"v{i}", value_size, start_time + i)
        keys.append(key)
    return keys
