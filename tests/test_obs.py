"""Tests for the observability subsystem: span tracing, metrics,
exporters, timeline rendering, and the instrumentation threaded through
the migration pipeline."""

import json
import math

import pytest

from repro.cli import main as cli_main
from repro.core.master import Master
from repro.core.retry import RetryPolicy
from repro.errors import ConfigurationError
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import NetworkModel
from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TELEMETRY,
    NULL_TRACER,
    MetricsRegistry,
    Telemetry,
    Tracer,
    create_telemetry,
)
from repro.obs.export import read_jsonl, to_prometheus, write_jsonl
from repro.obs.timeline import render_timeline, summary_table
from repro.obs.trace import Span
from repro.sim.metrics import MetricsCollector, SecondRecord


def _record(time, p95=5.0):
    return SecondRecord(
        time=time,
        requests=10,
        kv_gets=40,
        hits=30,
        misses=10,
        secondary_hits=0,
        p95_rt_ms=p95,
        mean_rt_ms=2.0,
        db_latency_ms=1.0,
        active_nodes=4,
    )


class TestSpans:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        root = tracer.root("migration", sim_s=10.0, kind="scale_in")
        plan = root.child("plan", sim_s=10.0)
        dump = plan.child("dump")
        dump.end()
        plan.end(sim_s=12.0)
        imp = root.child("import", sim_s=12.0)
        imp.end(sim_s=20.0)
        root.end(sim_s=20.0)

        assert [s.name for s in root.walk()] == [
            "migration",
            "plan",
            "dump",
            "import",
        ]
        assert root.find("dump") is dump
        assert root.find("missing") is None
        assert root.find_all("plan") == [plan]
        assert tracer.find_roots("migration") == [root]
        assert root.sim_s == pytest.approx(10.0)
        assert imp.sim_s == pytest.approx(8.0)
        assert root.attributes["kind"] == "scale_in"

    def test_wall_clock_monotone_and_idempotent_end(self):
        tracer = Tracer()
        span = tracer.root("work")
        child = span.child("inner")
        child.end()
        first = child.end_wall_s
        child.end()  # second end must not move the wall clock
        assert child.end_wall_s == first
        span.end()
        assert span.ended
        assert span.wall_s >= 0.0
        assert child.start_wall_s >= span.start_wall_s

    def test_sim_window_pins_interval_post_hoc(self):
        span = Span("scoring")
        assert span.sim_s is None  # no sim endpoints yet
        span.sim_window(5.0, 7.5)
        assert span.start_sim_s == 5.0
        assert span.sim_s == pytest.approx(2.5)

    def test_events_carry_attributes(self):
        tracer = Tracer()
        span = tracer.root("migration")
        span.event("retry", sim_s=3.0, backoff_s=2.0)
        tracer.event("fault.injected", sim_s=1.0, kind="node_crash")
        assert span.events[0].name == "retry"
        assert span.events[0].attributes["backoff_s"] == 2.0
        assert tracer.events[0].sim_s == 1.0


class TestDisabledMode:
    def test_null_singletons_absorb_everything(self):
        assert NULL_SPAN.child("x") is NULL_SPAN
        assert NULL_SPAN.event("retry") is None
        NULL_SPAN.set(outcome="warm")
        NULL_SPAN.sim_window(0.0, 1.0)
        NULL_SPAN.end(sim_s=5.0)
        assert NULL_SPAN.find("anything") is None
        assert list(NULL_SPAN.walk()) == []
        assert NULL_TRACER.root("migration") is NULL_SPAN
        assert NULL_TRACER.find_roots("migration") == []
        metric = NULL_METRICS.counter("x_total", label="v")
        metric.inc()
        metric.observe(1.0)
        metric.set(2.0)
        assert metric.value == 0.0
        assert NULL_METRICS.snapshot() == []

    def test_telemetry_defaults_disabled(self):
        assert not NULL_TELEMETRY.enabled
        assert not Telemetry().enabled
        enabled = create_telemetry()
        assert enabled.enabled
        assert enabled.tracer.enabled and enabled.metrics.enabled

    def test_master_without_telemetry_records_nothing(self):
        cluster = _warmed_cluster()
        master = Master(cluster, network=_fast_network())
        plan = master.plan_scale_in(master.choose_retiring(1))
        master.execute(plan, now=0.0)
        assert plan.span is NULL_SPAN


class TestMetrics:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_same_name_and_labels_share_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("ops_total", op="get")
        b = registry.counter("ops_total", op="get")
        c = registry.counter("ops_total", op="set")
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_histogram_bucket_edges(self):
        registry = MetricsRegistry()
        hist = registry.histogram("d_seconds", buckets=(1.0, 5.0))
        # Prometheus le semantics: a value exactly on an edge counts
        # toward that edge's bucket.
        hist.observe(1.0)
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)  # above every bound -> +Inf bucket
        assert hist.counts == [2, 1, 1]
        assert hist.cumulative() == [
            (1.0, 2),
            (5.0, 3),
            (math.inf, 4),
        ]
        assert hist.sum == pytest.approx(106.5)
        assert hist.count == 4

    def test_histogram_validates_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad_seconds", buckets=())
        with pytest.raises(ConfigurationError):
            registry.histogram("bad2_seconds", buckets=(5.0, 1.0))


class TestExporters:
    def _populated(self):
        tracer = Tracer()
        root = tracer.root("migration", sim_s=0.0, kind="scale_in")
        pair = root.child("pair", sim_s=1.0, src="a", dst="b")
        pair.event("retry", sim_s=2.0, backoff_s=1.0)
        pair.end(sim_s=3.0)
        root.end(sim_s=4.0)
        tracer.event("fault.injected", sim_s=0.5, kind="node_stall")
        registry = MetricsRegistry()
        registry.counter("flows_total", "All flows", error="a\"b\\c").inc(3)
        registry.gauge("backlog", "Line1\nline2").set(7)
        registry.histogram("t_seconds", buckets=(1.0, 10.0)).observe(2.0)
        return tracer, registry

    def test_jsonl_round_trip(self, tmp_path):
        tracer, registry = self._populated()
        path = write_jsonl(
            tmp_path / "obs.jsonl",
            tracer=tracer,
            metrics=registry,
            meta={"policy": "elmem"},
        )
        # Every line must be valid JSON.
        for line in path.read_text().splitlines():
            json.loads(line)
        dump = read_jsonl(path)
        assert dump.meta["policy"] == "elmem"
        assert dump.meta["version"] == 1
        assert len(dump.spans) == 1
        tree = dump.spans[0]
        assert tree.name == "migration"
        assert tree.attributes["kind"] == "scale_in"
        pair = tree.find("pair")
        assert pair is not None
        assert pair.attributes == {"src": "a", "dst": "b"}
        assert pair.events[0].name == "retry"
        assert pair.sim_s == pytest.approx(2.0)
        assert [e.name for e in dump.events] == ["fault.injected"]
        assert {m["name"] for m in dump.metrics} == {
            "flows_total",
            "backlog",
            "t_seconds",
        }

    def test_prometheus_exposition_and_escaping(self):
        _, registry = self._populated()
        text = to_prometheus(registry)
        assert text.endswith("\n")
        # Label value escaping: quote and backslash escaped.
        assert 'error="a\\"b\\\\c"' in text
        # Help escaping: newline becomes literal \n.
        assert "# HELP backlog Line1\\nline2" in text
        assert "# TYPE flows_total counter" in text
        assert "# TYPE t_seconds histogram" in text
        assert 't_seconds_bucket{le="1"} 0' in text
        assert 't_seconds_bucket{le="10"} 1' in text
        assert 't_seconds_bucket{le="+Inf"} 1' in text
        assert "t_seconds_sum 2" in text
        assert "t_seconds_count 1" in text
        assert "backlog 7" in text

    def test_prometheus_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestTimeline:
    def test_render_contains_phases_and_events(self):
        tracer = Tracer()
        root = tracer.root("migration", sim_s=0.0)
        plan = root.child("plan")
        plan.sim_window(0.0, 5.0)
        plan.end()
        imp = root.child("import", sim_s=5.0)
        imp.event("retry", sim_s=7.0)
        imp.end(sim_s=10.0)
        root.end(sim_s=10.0)
        text = render_timeline(root, width=40)
        assert "migration timeline (sim clock" in text
        for name in ("plan", "import"):
            assert name in text
        assert "█" in text
        assert "·" in text  # the retry event mark
        with pytest.raises(ValueError):
            render_timeline(root, clock="cpu")

    def test_render_without_sim_data_degrades(self):
        span = Span("empty")
        span.end()
        assert "no sim-clock data" in render_timeline(span)
        # The wall clock is always recorded, so that axis still works.
        assert "empty timeline (wall clock" in render_timeline(
            span, clock="wall"
        )

    def test_summary_table(self):
        tracer = Tracer()
        root = tracer.root("migration", sim_s=0.0)
        root.child("pair", sim_s=0.0).end(sim_s=2.0)
        root.child("pair", sim_s=2.0).end(sim_s=3.0)
        root.end(sim_s=3.0)
        table = summary_table([root])
        assert "pair" in table and "migration" in table
        pair_row = next(
            line for line in table.splitlines() if line.startswith("pair")
        )
        assert " 2 " in pair_row  # count column
        assert summary_table([]) == "(no spans)"


class TestMetricsCollectorFixes:
    def test_between_filters_migrations_too(self):
        collector = MetricsCollector()
        for t in range(10):
            collector.add(_record(float(t)))

        class _FakeReport:
            class plan:
                kind = "scale_in"

            executed_at = 2.0
            retries = 1
            failed_flows = ()
            skipped_pairs = ()
            unattempted_pairs = ()
            items_imported = 5
            retry_time_s = 0.5
            outcome = "warm"
            abort_reason = None

        early = _FakeReport()
        late = _FakeReport()
        late.executed_at = 8.0
        collector.record_migration(early)
        collector.record_migration(late)

        window = collector.between(0.0, 5.0)
        assert len(window.records) == 5
        # Regression: migrations must be windowed with the records, not
        # dropped (the old behaviour) nor copied wholesale.
        assert [m.time for m in window.migrations] == [2.0]
        assert collector.between(5.0, 10.0).migrations[0].time == 8.0
        assert "migrations" in window.summary()

    def test_summary_empty_collector(self):
        assert MetricsCollector().summary() == {}

    def test_summary_all_nan_p95(self):
        collector = MetricsCollector()
        for t in range(3):
            collector.add(_record(float(t), p95=float("nan")))
        summary = collector.summary()
        assert summary["mean_p95_rt_ms"] == 0.0
        assert summary["max_p95_rt_ms"] == 0.0
        assert summary["seconds"] == 3.0


def _warmed_cluster(nodes=4, items=600, metrics=None):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, 6 * PAGE_SIZE, metrics=metrics)
    for i in range(items):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    return cluster


def _fast_network(**kwargs):
    return NetworkModel(
        nic_bandwidth_bps=1e7, connection_setup_s=0.01, **kwargs
    )


class TestInstrumentedMigration:
    """Acceptance: a faulted scale-in records the full span tree."""

    def _traced_faulted_scale_in(self):
        telemetry = create_telemetry()
        cluster = _warmed_cluster(metrics=telemetry.metrics)

        def flaky(src, dst, now):
            # Flows fail during the first simulated second; the first
            # retry (after backoff) succeeds.
            return "fail" if now < 1.0 else 1.0

        master = Master(
            cluster,
            network=_fast_network(
                fault_hook=flaky, metrics=telemetry.metrics
            ),
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=2.0),
            telemetry=telemetry,
        )
        plan = master.plan_scale_in(master.choose_retiring(1), now=0.0)
        report = master.execute(plan, now=0.0)
        return telemetry, plan, report

    def test_span_tree_has_all_phases(self):
        telemetry, plan, report = self._traced_faulted_scale_in()
        roots = telemetry.tracer.find_roots("migration")
        assert len(roots) == 1
        root = roots[0]
        assert root is plan.span
        for phase in ("plan", "scoring", "dump", "fusecache", "import",
                      "switch"):
            span = root.find(phase)
            assert span is not None, f"missing phase span {phase!r}"
            assert span.ended
            assert span.sim_s is not None
        pairs = root.find_all("pair")
        assert len(pairs) == len(plan.transfers)
        assert all(p.attributes["outcome"] == "completed" for p in pairs)
        assert root.attributes["outcome"] == report.outcome == "warm"
        assert root.attributes["retries"] == report.retries >= 1

    def test_retry_events_recorded_on_pair_spans(self):
        telemetry, _, report = self._traced_faulted_scale_in()
        root = telemetry.tracer.find_roots("migration")[0]
        retries = [
            e
            for span in root.walk()
            for e in span.events
            if e.name == "retry"
        ]
        failures = [
            e
            for span in root.walk()
            for e in span.events
            if e.name == "flow_failed"
        ]
        assert len(retries) == report.retries >= 1
        assert failures and failures[0].attributes["error"] == "failed"
        assert retries[0].attributes["backoff_s"] == pytest.approx(2.0)

    def test_counters_updated(self):
        telemetry, plan, report = self._traced_faulted_scale_in()
        registry = telemetry.metrics
        assert (
            registry.counter(
                "migrations_executed_total",
                kind="scale_in",
                outcome="warm",
            ).value
            == 1
        )
        assert (
            registry.counter("migration_retries_total").value
            == report.retries
        )
        assert (
            registry.counter("fusecache_comparisons_total").value
            == plan.fusecache_comparisons
        )
        assert (
            registry.counter("flows_attempted_total").value
            >= len(plan.transfers)
        )
        assert (
            registry.counter("flows_failed_total", error="failed").value
            >= 1
        )
        assert registry.counter("node_commands_total", op="set").value > 0
        phase_hist = registry.histogram(
            "migration_phase_seconds", phase="total"
        )
        assert phase_hist.count == 1

    def test_timeline_and_jsonl_round_trip(self, tmp_path, capsys):
        telemetry, _, _ = self._traced_faulted_scale_in()
        root = telemetry.tracer.find_roots("migration")[0]
        text = render_timeline(root, width=50)
        for phase in ("plan", "dump", "fusecache", "import", "switch"):
            assert phase in text
        path = write_jsonl(
            tmp_path / "trace.jsonl",
            tracer=telemetry.tracer,
            metrics=telemetry.metrics,
            meta={"test": "faulted_scale_in"},
        )
        dump = read_jsonl(path)
        assert dump.spans[0].find("pair") is not None
        prom = to_prometheus(telemetry.metrics)
        assert "migrations_executed_total" in prom

        # The CLI renders the same file.
        assert cli_main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "migration timeline" in out
        assert "pair" in out
        assert "counters (" in out
