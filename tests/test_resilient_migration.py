"""Tests for the resilient three-phase migration: retry policy, deadline
degradation, per-pair partial failure, re-planning around dead nodes, and
seeded end-to-end reproducibility under fault injection."""


import numpy as np
import pytest

from repro.core.master import Master, MigrationReport
from repro.core.policies import ElMemPolicy
from repro.core.retry import NO_RETRY, RetryPolicy
from repro.errors import ConfigurationError, MigrationAbortedError
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import NetworkModel
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.scenarios import fault_sweep_config
from repro.workloads.traces import RateTrace


def warmed_cluster(nodes=4, items=600, memory_pages=6):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, memory_pages * PAGE_SIZE)
    for i in range(items):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    return cluster


def fast_network(**kwargs):
    return NetworkModel(
        nic_bandwidth_bps=1e7, connection_setup_s=0.01, **kwargs
    )


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff_s=1.0,
            backoff_multiplier=2.0,
            max_backoff_s=3.0,
        )
        assert policy.backoff_s(1) == pytest.approx(1.0)
        assert policy.backoff_s(2) == pytest.approx(2.0)
        assert policy.backoff_s(3) == pytest.approx(3.0)  # capped
        assert policy.backoff_s(4) == pytest.approx(3.0)
        assert policy.total_backoff_s() == pytest.approx(1 + 2 + 3 + 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=5.0, max_backoff_s=1.0)
        with pytest.raises(ConfigurationError):
            NO_RETRY.backoff_s(0)


class TestRetriesInExecute:
    def _master_with_flaky_network(self, cluster, fail_times):
        """A master whose network refuses flows while ``now`` is in any
        of the given [start, end) windows."""

        def hook(src, dst, now):
            for start, end in fail_times:
                if start <= now < end:
                    return "fail"
            return 1.0

        network = fast_network(fault_hook=hook)
        return Master(
            cluster,
            network=network,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=2.0),
        )

    def test_transient_failure_retried_and_recovered(self):
        cluster = warmed_cluster()
        # Flows fail for the first simulated second only; the first
        # retry (after 2s backoff) succeeds.
        master = self._master_with_flaky_network(cluster, [(0.0, 1.0)])
        plan = master.plan_scale_in(master.choose_retiring(1))
        report = master.execute(plan, now=0.0)
        assert report.retries >= 1
        assert report.retry_time_s > 0
        assert not report.failed_flows
        assert report.outcome == "warm"
        assert report.items_imported > 0
        assert plan.timings.retry_s == pytest.approx(report.retry_time_s)

    def test_permanent_failure_exhausts_retries(self):
        cluster = warmed_cluster()
        master = self._master_with_flaky_network(cluster, [(0.0, 1e9)])
        plan = master.plan_scale_in(master.choose_retiring(1))
        report = master.execute(plan, now=0.0)
        assert report.failed_flows
        assert len(report.failed_flows) == len(plan.transfers)
        assert report.items_imported == 0
        assert report.outcome == "cold"
        # Membership still switched: cold scaling completed.
        assert set(report.membership_after) == set(plan.retained)

    def test_no_retry_policy_gives_up_immediately(self):
        cluster = warmed_cluster()
        network = fast_network(fault_hook=lambda *a: "fail")
        master = Master(cluster, network=network, retry_policy=NO_RETRY)
        plan = master.plan_scale_in(master.choose_retiring(1))
        report = master.execute(plan, now=0.0)
        assert report.retries == 0
        assert report.failed_flows


class TestDeadline:
    def test_deadline_degrades_to_cold_scaling(self):
        cluster = warmed_cluster()
        # Every flow times out; each attempt burns 50s against a 60s
        # deadline, so the first pair aborts the rest of the warm-up.
        network = fast_network(
            flow_timeout_s=50.0, fault_hook=lambda *a: 1e-9
        )
        master = Master(
            cluster,
            network=network,
            retry_policy=RetryPolicy(max_attempts=5, base_backoff_s=1.0),
            deadline_s=60.0,
        )
        plan = master.plan_scale_in(master.choose_retiring(1))
        assert len(plan.transfers) > 1
        report = master.execute(plan, now=100.0)
        assert report.abort_reason is not None
        assert report.unattempted_pairs
        assert report.outcome == "cold"
        assert report.actual_duration_s >= 60.0
        # The scaling action still completed.
        assert set(report.membership_after) == set(plan.retained)
        for name in plan.retiring:
            assert name not in cluster.nodes

    def test_deadline_raise_mode(self):
        cluster = warmed_cluster()
        network = fast_network(
            flow_timeout_s=50.0, fault_hook=lambda *a: 1e-9
        )
        master = Master(
            cluster,
            network=network,
            deadline_s=60.0,
            on_deadline="raise",
        )
        plan = master.plan_scale_in(master.choose_retiring(1))
        with pytest.raises(MigrationAbortedError):
            master.execute(plan, now=0.0)

    def test_stall_blows_deadline(self):
        cluster = warmed_cluster()
        victim_src = None
        master = Master(
            cluster,
            network=fast_network(),
            dump_rate_items_s=1000.0,
            deadline_s=30.0,
        )
        retiring = master.choose_retiring(1)
        victim_src = retiring[0]
        schedule = FaultSchedule(
            [FaultSpec(0.0, "node_stall", node=victim_src, factor=0.001)]
        )
        FaultInjector(cluster, schedule).attach(master)
        plan = master.plan_scale_in(retiring)
        report = master.execute(plan, now=0.0)
        # The 1000x dump stall pushes the first pair past the deadline.
        assert report.abort_reason is not None
        assert report.outcome in ("partial", "cold")

    def test_invalid_config_rejected(self):
        cluster = warmed_cluster(nodes=2)
        with pytest.raises(ConfigurationError):
            Master(cluster, deadline_s=-1.0)
        with pytest.raises(ConfigurationError):
            Master(cluster, on_deadline="explode")


class TestSkippedPairs:
    """Coverage for the node-lost-between-plan-and-execute path."""

    def test_dead_retiring_node_pairs_skipped(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        expected = [pair for pair in plan.transfers if pair[0] == retiring[0]]
        cluster.destroy(retiring[0])
        report = master.execute(plan)
        assert sorted(report.skipped_pairs) == sorted(expected)
        assert report.completed_pairs == 0
        assert report.outcome == "cold"
        assert set(report.membership_after) == set(plan.retained)

    def test_dead_retained_node_skips_only_its_pairs(self):
        cluster = warmed_cluster(nodes=5)
        master = Master(cluster, network=fast_network())
        plan = master.plan_scale_in(master.choose_retiring(1))
        victim = plan.retained[0]
        others = [pair for pair in plan.transfers if pair[1] != victim]
        cluster.destroy(victim)
        report = master.execute(plan)
        assert all(dst == victim for _, dst in report.skipped_pairs)
        assert report.completed_pairs == len(others)
        assert report.outcome == "partial" if others else "cold"
        assert victim not in report.membership_after

    def test_dead_scale_out_target_pairs_skipped(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        plan = master.plan_scale_out(["node-new-0", "node-new-1"])
        cluster.destroy("node-new-0")
        report = master.execute(plan)
        assert all(dst == "node-new-0" for _, dst in report.skipped_pairs)
        assert "node-new-0" not in report.membership_after
        assert "node-new-1" in report.membership_after

    def test_pre_deletes_tolerate_dead_node(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        retiring = master.choose_retiring(1)
        plan = master.plan_fraction_scale_in(retiring, 0.75)
        doomed = plan.retained[0]
        assert plan.pre_deletes  # naive planning always makes room
        cluster.destroy(doomed)
        report = master.execute(plan)  # must not raise
        assert doomed not in report.membership_after

    def test_skipped_pairs_report_is_degraded(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        cluster.destroy(retiring[0])
        report = master.execute(plan)
        assert report.degraded
        clean = MigrationReport(plan=plan)
        assert not clean.degraded


class TestReplanning:
    def test_replan_returns_same_plan_when_all_alive(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        plan = master.plan_scale_in(master.choose_retiring(1))
        assert master.replan(plan) is plan

    def test_replan_after_retained_death(self):
        cluster = warmed_cluster(nodes=5)
        master = Master(cluster, network=fast_network())
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        victim = plan.retained[0]
        cluster.destroy(victim)
        fresh = master.replan(plan)
        assert fresh is not plan
        assert victim not in fresh.retained
        assert all(dst != victim for _, dst in fresh.transfers)
        report = master.execute(fresh)
        assert not report.skipped_pairs
        assert report.outcome == "warm"

    def test_replan_drops_obsolete_scale_in(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        cluster.destroy(retiring[0])  # membership already shrank
        assert master.replan(plan) is None

    def test_replan_scale_out_around_dead_new_node(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        plan = master.plan_scale_out(["node-new-0", "node-new-1"])
        cluster.destroy("node-new-0")
        fresh = master.replan(plan)
        assert fresh is not None and fresh is not plan
        assert fresh.new_nodes == ["node-new-1"]
        report = master.execute(fresh)
        assert not report.skipped_pairs
        assert "node-new-1" in report.membership_after

    def test_replan_scale_out_all_targets_dead(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=fast_network())
        plan = master.plan_scale_out(["node-new-0"])
        cluster.destroy("node-new-0")
        assert master.replan(plan) is None

    def test_policy_tick_replans_around_dead_retained(self):
        cluster = warmed_cluster(nodes=5)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e5))
        policy = ElMemPolicy()
        policy.bind(cluster, master)
        policy.on_scale_decision(4, now=0.0)
        assert policy.pending
        _, plan = policy._pending
        victim = plan.retained[0]
        cluster.destroy(victim)
        policy.tick(1e9)
        assert not policy.pending
        assert any(e.kind == "replanned" for e in policy.events)
        report = policy.reports[-1]
        assert not report.skipped_pairs
        assert victim not in report.membership_after

    def test_policy_tick_drops_obsolete_plan(self):
        cluster = warmed_cluster()
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e5))
        policy = ElMemPolicy()
        policy.bind(cluster, master)
        policy.on_scale_decision(3, now=0.0)
        _, plan = policy._pending
        cluster.destroy(plan.retiring[0])
        policy.tick(1e9)
        assert not policy.pending
        assert not policy.reports
        assert any(e.kind == "replan_dropped" for e in policy.events)
        assert len(cluster.active_members) == 3


def run_seeded_crash_migration():
    """Acceptance scenario: a schedule kills a retiring node between the
    scaling decision and phase 3; scaling must still complete."""
    cluster = warmed_cluster(nodes=4)
    master = Master(
        cluster,
        network=fast_network(),
        retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
        deadline_s=600.0,
    )
    retiring = master.choose_retiring(1)
    schedule = FaultSchedule(
        [FaultSpec(5.0, "node_crash", node=retiring[0])]
    )
    FaultInjector(cluster, schedule).attach(master)
    plan = master.plan_scale_in(retiring)
    report = master.execute(plan, now=10.0)
    return cluster, plan, report


def report_fingerprint(report):
    return (
        report.outcome,
        report.items_exported,
        report.items_imported,
        report.retries,
        report.retry_time_s,
        report.completed_pairs,
        sorted(report.skipped_pairs),
        sorted(report.failed_flows),
        sorted(report.unattempted_pairs),
        report.membership_after,
        report.abort_reason,
        report.actual_duration_s,
    )


class TestSeededCrashAcceptance:
    def test_scaling_completes_and_degradation_recorded(self):
        cluster, plan, report = run_seeded_crash_migration()
        # Membership switched and the cluster still serves.
        assert set(report.membership_after) == set(plan.retained)
        assert set(cluster.active_members) == set(plan.retained)
        hits = sum(
            1
            for i in range(600)
            if cluster.get(f"key-{i:05d}", 1e6) is not None
        )
        assert hits > 0
        # The degradation is visible in the report.
        assert report.skipped_pairs
        assert report.outcome in ("partial", "cold")
        assert report.degraded

    def test_same_seed_reproduces_identical_report(self):
        _, _, first = run_seeded_crash_migration()
        _, _, second = run_seeded_crash_migration()
        assert report_fingerprint(first) == report_fingerprint(second)


class TestFaultSweepExperiment:
    def _config(self, intensity, seed=5):
        trace = RateTrace("flat", np.full(120, 1.0))
        names = [f"node-{i:03d}" for i in range(4)]
        return ExperimentConfig(
            trace=trace,
            policy="elmem",
            num_keys=4000,
            initial_nodes=4,
            memory_per_node=4 * (1 << 20),
            peak_request_rate=50.0,
            items_per_request=3,
            db_capacity_rps=30.0,
            warmup_seconds=5,
            max_value_size=1200,
            schedule=[(20.0, 3)],
            seed=seed,
            fault_schedule=FaultSchedule.random(
                names, 120.0, seed=seed, intensity=intensity
            ),
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
            migration_deadline_s=120.0,
            flow_timeout_s=60.0,
        )

    @pytest.mark.slow
    def test_faulted_run_completes_and_records_outcomes(self):
        result = run_experiment(self._config(intensity=1.0))
        assert result.fault_injector is not None
        assert result.fault_injector.applied
        summary = result.summary()
        if result.reports:
            assert "migrations" in summary
            outcomes = {m.outcome for m in result.metrics.migrations}
            assert outcomes <= {"warm", "partial", "cold"}
        # The cluster survived the campaign and kept serving.
        assert len(result.cluster.active_members) >= 1

    @pytest.mark.slow
    def test_fault_free_schedule_matches_no_schedule(self):
        faulted = run_experiment(self._config(intensity=0.0))
        config = self._config(intensity=0.0)
        config.fault_schedule = None
        clean = run_experiment(config)
        assert faulted.summary() == clean.summary()

    def test_fault_sweep_config_builds(self):
        config = fault_sweep_config(
            0.5, duration_s=300, num_keys=2000, warmup_seconds=2
        )
        assert config.fault_schedule is not None
        assert len(config.fault_schedule) >= 1
        assert config.migration_deadline_s == 300.0
        again = fault_sweep_config(
            0.5, duration_s=300, num_keys=2000, warmup_seconds=2
        )
        assert config.fault_schedule.specs == again.fault_schedule.specs
