"""Tests for the Agent/Master migration protocol."""

import pytest

from repro.core.agent import TIMESTAMP_BYTES, Agent
from repro.core.master import Master
from repro.errors import MigrationError
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import NetworkModel


def warmed_cluster(nodes=4, items=400, memory_pages=4) -> MemcachedCluster:
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, memory_pages * PAGE_SIZE)
    for i in range(items):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    return cluster


def make_master(cluster) -> Master:
    return Master(
        cluster,
        network=NetworkModel(
            nic_bandwidth_bps=1e6, connection_setup_s=0.1
        ),
    )


class TestAgent:
    def test_dump_and_hash_targets_retained_only(self):
        cluster = warmed_cluster()
        retained = sorted(cluster.active_members)[:-1]
        ring = cluster.ring_for(retained)
        retiring = sorted(cluster.active_members)[-1]
        agent = Agent(cluster.nodes[retiring])
        grouped = agent.dump_and_hash(ring)
        assert set(grouped) <= set(retained)
        total = sum(
            len(entries)
            for per_class in grouped.values()
            for entries in per_class.values()
        )
        assert total == cluster.nodes[retiring].curr_items

    def test_dump_lists_sorted_hottest_first(self):
        cluster = warmed_cluster()
        retained = sorted(cluster.active_members)[:-1]
        ring = cluster.ring_for(retained)
        retiring = sorted(cluster.active_members)[-1]
        grouped = Agent(cluster.nodes[retiring]).dump_and_hash(ring)
        for per_class in grouped.values():
            for entries in per_class.values():
                timestamps = [ts for _, ts in entries]
                assert timestamps == sorted(timestamps, reverse=True)

    def test_metadata_bytes(self):
        per_class = {0: [("abc", 1.0), ("de", 2.0)]}
        expected = (3 + TIMESTAMP_BYTES) + (2 + TIMESTAMP_BYTES)
        assert Agent.metadata_bytes(per_class) == expected

    def test_median_report(self):
        cluster = warmed_cluster()
        name = sorted(cluster.active_members)[0]
        report = Agent(cluster.nodes[name]).median_report()
        assert report
        for class_id, median in report.items():
            assert (
                cluster.nodes[name].median_timestamp(class_id) == median
            )

    def test_slab_capacity_items_counts_free_pages(self):
        cluster = warmed_cluster(items=50)
        name = sorted(cluster.active_members)[0]
        agent = Agent(cluster.nodes[name])
        class_id = cluster.nodes[name].active_class_ids()[0]
        capacity = agent.slab_capacity_items(class_id)
        assert capacity >= cluster.nodes[name].curr_items


class TestScaleInPlanning:
    def test_plan_rejects_unknown_node(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        with pytest.raises(MigrationError):
            master.plan_scale_in(["ghost"])

    def test_plan_rejects_retiring_everything(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        with pytest.raises(MigrationError):
            master.plan_scale_in(sorted(cluster.active_members))

    def test_plan_structure(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        assert plan.kind == "scale_in"
        assert plan.retiring == retiring
        assert len(plan.retained) == 3
        assert plan.items_to_migrate > 0
        assert plan.bytes_to_migrate > 0
        assert plan.metadata_bytes > 0
        assert plan.duration_s > 0
        for (src, dst), keys in plan.transfers.items():
            assert src in retiring
            assert dst in plan.retained
            assert keys

    def test_planned_keys_route_to_their_destination(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        ring = cluster.ring_for(plan.retained)
        for (src, dst), keys in plan.transfers.items():
            for key in keys:
                assert ring.node_for_key(key) == dst

    def test_migrates_everything_when_room(self):
        """With ample capacity on retained nodes, every retiring item
        survives (FuseCache selects all of them)."""
        cluster = warmed_cluster(items=200, memory_pages=8)
        master = make_master(cluster)
        retiring = master.choose_retiring(1)
        count = cluster.nodes[retiring[0]].curr_items
        plan = master.plan_scale_in(retiring)
        assert plan.items_to_migrate == count

    def test_timings_phases_populated(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        plan = master.plan_scale_in(master.choose_retiring(1))
        breakdown = plan.timings.breakdown()
        assert breakdown["scoring"] > 0
        assert breakdown["hash_and_dump"] > 0
        assert breakdown["metadata_transfer"] > 0
        assert breakdown["data_migration"] > 0
        assert breakdown["total"] == pytest.approx(plan.duration_s)

    def test_scoring_excluded_when_requested(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        plan = master.plan_scale_in(
            master.choose_retiring(1), include_scoring=False
        )
        assert plan.timings.scoring_s == 0.0


class TestScaleInExecution:
    def test_execute_switches_membership_and_destroys(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        report = master.execute(plan)
        assert set(report.membership_after) == set(plan.retained)
        assert retiring[0] not in cluster.nodes
        assert report.items_imported > 0
        assert report.items_imported == report.items_exported

    def test_migrated_keys_served_after_scale_in(self):
        cluster = warmed_cluster(memory_pages=8)
        master = make_master(cluster)
        retiring = master.choose_retiring(1)
        migrated_keys = [
            key
            for key in cluster.nodes[retiring[0]].keys()
        ]
        plan = master.plan_scale_in(retiring)
        master.execute(plan)
        hits = sum(
            1 for key in migrated_keys if cluster.get(key, 10_000.0)
        )
        # With room on retained nodes all migrated keys must now hit.
        assert hits == len(migrated_keys)

    def test_execute_tolerates_evicted_keys(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        # Simulate drift: one planned key disappears before execution.
        (src, _), keys = next(iter(plan.transfers.items()))
        cluster.nodes[src].delete(keys[0])
        report = master.execute(plan)
        assert report.items_exported == plan.items_to_migrate - 1


class TestScaleOut:
    def test_plan_provisions_new_nodes_cold(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        plan = master.plan_scale_out(["new-node"])
        assert "new-node" in cluster.nodes
        assert "new-node" not in cluster.active_members
        assert plan.kind == "scale_out"
        assert plan.items_to_migrate > 0

    def test_plan_rejects_existing_name(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        with pytest.raises(MigrationError):
            master.plan_scale_out(["node-000"])

    def test_plan_rejects_empty(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        with pytest.raises(MigrationError):
            master.plan_scale_out([])

    def test_remap_fraction_is_about_one_over_k_plus_one(self):
        cluster = warmed_cluster(nodes=4, items=2000, memory_pages=8)
        master = make_master(cluster)
        total = cluster.total_items()
        plan = master.plan_scale_out(["new-node"])
        fraction = plan.items_to_migrate / total
        assert 0.08 < fraction < 0.40  # ~1/5 with ketama variance

    def test_execute_warms_and_activates(self):
        cluster = warmed_cluster(memory_pages=8)
        master = make_master(cluster)
        plan = master.plan_scale_out(["new-node"])
        report = master.execute(plan)
        assert "new-node" in cluster.active_members
        assert cluster.nodes["new-node"].curr_items > 0
        assert report.items_imported == plan.items_to_migrate

    def test_new_node_serves_its_keys(self):
        cluster = warmed_cluster(memory_pages=8)
        master = make_master(cluster)
        plan = master.plan_scale_out(["new-node"])
        master.execute(plan)
        keys = [
            key
            for (_, dst), keys in plan.transfers.items()
            if dst == "new-node"
            for key in keys
        ]
        for key in keys[:50]:
            assert cluster.route(key) == "new-node"
            assert cluster.get(key, 10_000.0) is not None

    def test_abort_scale_out_cleans_up(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        plan = master.plan_scale_out(["new-node"])
        master.abort_scale_out(plan)
        assert "new-node" not in cluster.nodes


class TestFractionPlanning:
    def test_fraction_validation(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        name = sorted(cluster.active_members)[0]
        with pytest.raises(MigrationError):
            master.plan_fraction_scale_in([name], 1.5)
        with pytest.raises(MigrationError):
            master.plan_fraction_scale_in(["ghost"], 0.5)

    def test_fraction_takes_hottest_prefix(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        name = sorted(cluster.active_members)[0]
        node = cluster.nodes[name]
        plan = master.plan_fraction_scale_in([name], 0.5)
        planned = {
            key for keys in plan.transfers.values() for key in keys
        }
        # Every planned key must be hotter than every unplanned key of
        # the same slab class.
        for class_id in node.active_class_ids():
            items = node.items_in_mru_order(class_id)
            take = int(len(items) * 0.5)
            expected = {item.key for item in items[:take]}
            actual = {
                item.key for item in items if item.key in planned
            }
            assert actual == expected

    def test_fraction_zero_migrates_nothing(self):
        cluster = warmed_cluster()
        master = make_master(cluster)
        name = sorted(cluster.active_members)[0]
        plan = master.plan_fraction_scale_in([name], 0.0)
        assert plan.items_to_migrate == 0
