"""Tests for the calibrated paper scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenarios import (
    MAX_STORM_HOT_KEYS,
    PAPER_SCENARIOS,
    hot_key_storm,
    paper_config,
    scale_action_times,
)


class TestScenarioTable:
    def test_all_five_traces_present(self):
        assert set(PAPER_SCENARIOS) == {
            "sys",
            "etc",
            "sap",
            "nlanr",
            "microsoft",
        }

    def test_sys_scales_ten_to_seven(self):
        scenario = PAPER_SCENARIOS["sys"]
        assert scenario.initial_nodes == 10
        assert scenario.actions == ((0.375, 7),)

    def test_etc_has_in_then_out(self):
        scenario = PAPER_SCENARIOS["etc"]
        targets = [target for _, target in scenario.actions]
        assert targets == [9, 10]

    def test_nlanr_starts_at_eight(self):
        assert PAPER_SCENARIOS["nlanr"].initial_nodes == 8

    def test_action_fractions_ordered(self):
        for scenario in PAPER_SCENARIOS.values():
            fractions = [fraction for fraction, _ in scenario.actions]
            assert fractions == sorted(fractions)
            assert all(0.0 < f < 1.0 for f in fractions)


class TestPaperConfig:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_config("bogus", "elmem")

    def test_schedule_scales_with_duration(self):
        short = paper_config("sys", "baseline", duration_s=400)
        long = paper_config("sys", "baseline", duration_s=1600)
        assert short.schedule[0][0] * 4 == long.schedule[0][0]
        assert short.schedule[0][1] == long.schedule[0][1] == 7

    def test_overrides_applied(self):
        config = paper_config(
            "etc", "elmem", duration_s=300, num_keys=999, seed=42
        )
        assert config.num_keys == 999
        assert config.seed == 42
        assert config.trace_object().duration_s == 300

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_config("etc", "elmem", bogus_field=1)

    def test_scale_action_times(self):
        times = scale_action_times("sap", duration_s=1000)
        assert times == [420.0, 720.0]

    def test_policy_passthrough(self):
        from repro.core.policies import CacheScalePolicy

        policy = CacheScalePolicy(discard_after_s=33.0)
        config = paper_config("sys", policy)
        assert config.policy is policy


class TestHotKeyStorm:
    def test_deterministic_for_same_seed(self):
        a = hot_key_storm(requests=500, hot_keys=4, seed=11)
        b = hot_key_storm(requests=500, hot_keys=4, seed=11)
        assert a.requests == b.requests
        assert a.hot_keys == b.hot_keys
        c = hot_key_storm(requests=500, hot_keys=4, seed=12)
        assert c.requests != a.requests

    def test_hot_share_matches_requested_fraction(self):
        storm = hot_key_storm(
            requests=4000, hot_keys=4, hot_fraction=0.9, seed=3
        )
        assert storm.hot_share == pytest.approx(0.9, abs=0.03)

    def test_zipf_head_hottest_key_dominates(self):
        storm = hot_key_storm(
            requests=4000, hot_keys=4, hot_fraction=1.0, seed=3
        )
        counts = {
            key: storm.requests.count(key) for key in storm.hot_keys
        }
        ranked = sorted(counts.values(), reverse=True)
        # 1/r weights: rank 1 sees roughly twice rank 2's traffic.
        assert counts[storm.hot_keys[0]] == ranked[0]
        assert ranked[0] > 1.5 * ranked[1]

    def test_hot_keys_capped_at_eight(self):
        assert MAX_STORM_HOT_KEYS == 8
        storm = hot_key_storm(requests=10, hot_keys=8, seed=0)
        assert len(storm.hot_keys) == 8
        with pytest.raises(ConfigurationError):
            hot_key_storm(hot_keys=9)
        with pytest.raises(ConfigurationError):
            hot_key_storm(hot_keys=0)

    def test_requests_only_use_declared_keys(self):
        storm = hot_key_storm(
            requests=300, hot_keys=2, cold_keys=10, seed=5
        )
        keyspace = set(storm.hot_keys) | set(storm.cold_keys)
        assert set(storm.requests) <= keyspace

    def test_pure_hot_fraction(self):
        storm = hot_key_storm(
            requests=100, hot_keys=3, hot_fraction=1.0, seed=1
        )
        assert storm.hot_share == 1.0
        assert set(storm.requests) <= set(storm.hot_keys)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hot_key_storm(hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            hot_key_storm(cold_keys=0)
        with pytest.raises(ConfigurationError):
            hot_key_storm(requests=-1)
