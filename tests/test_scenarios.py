"""Tests for the calibrated paper scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenarios import (
    PAPER_SCENARIOS,
    paper_config,
    scale_action_times,
)


class TestScenarioTable:
    def test_all_five_traces_present(self):
        assert set(PAPER_SCENARIOS) == {
            "sys",
            "etc",
            "sap",
            "nlanr",
            "microsoft",
        }

    def test_sys_scales_ten_to_seven(self):
        scenario = PAPER_SCENARIOS["sys"]
        assert scenario.initial_nodes == 10
        assert scenario.actions == ((0.375, 7),)

    def test_etc_has_in_then_out(self):
        scenario = PAPER_SCENARIOS["etc"]
        targets = [target for _, target in scenario.actions]
        assert targets == [9, 10]

    def test_nlanr_starts_at_eight(self):
        assert PAPER_SCENARIOS["nlanr"].initial_nodes == 8

    def test_action_fractions_ordered(self):
        for scenario in PAPER_SCENARIOS.values():
            fractions = [fraction for fraction, _ in scenario.actions]
            assert fractions == sorted(fractions)
            assert all(0.0 < f < 1.0 for f in fractions)


class TestPaperConfig:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_config("bogus", "elmem")

    def test_schedule_scales_with_duration(self):
        short = paper_config("sys", "baseline", duration_s=400)
        long = paper_config("sys", "baseline", duration_s=1600)
        assert short.schedule[0][0] * 4 == long.schedule[0][0]
        assert short.schedule[0][1] == long.schedule[0][1] == 7

    def test_overrides_applied(self):
        config = paper_config(
            "etc", "elmem", duration_s=300, num_keys=999, seed=42
        )
        assert config.num_keys == 999
        assert config.seed == 42
        assert config.trace_object().duration_s == 300

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_config("etc", "elmem", bogus_field=1)

    def test_scale_action_times(self):
        times = scale_action_times("sap", duration_s=1000)
        assert times == [420.0, 720.0]

    def test_policy_passthrough(self):
        from repro.core.policies import CacheScalePolicy

        policy = CacheScalePolicy(discard_after_s=33.0)
        config = paper_config("sys", policy)
        assert config.policy is policy
