"""The REP2xx conformance checker against the *real* protocol surfaces.

Model extraction must see the full verb set the server implements and
every emission the client makes; the cross-check must be clean on the
tree as shipped; and surgically removing a handler, swapping a reader,
renaming a router call, or routing a bogus verb must each produce the
matching drift violation (the acceptance bar for this checker).
"""

from pathlib import Path

import pytest

from repro.check import default_conformance
from repro.check.protocol_conformance import (
    check_models,
    conformance_catalogue,
    extract_client_model,
    extract_proxy_model,
    extract_server_model,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
SERVER = SRC / "memcached" / "protocol.py"
CLIENT = SRC / "net" / "client.py"
PROXY_SERVER = SRC / "proxy" / "server.py"
PROXY_ROUTER = SRC / "proxy" / "router.py"


def models():
    return (
        extract_server_model(SERVER.read_text()),
        extract_client_model(CLIENT.read_text()),
        extract_proxy_model(
            PROXY_SERVER.read_text(), PROXY_ROUTER.read_text()
        ),
    )


def codes(violations):
    return [violation.code for violation in violations]


# ----------------------------------------------------------------------
# Extraction on the real tree
# ----------------------------------------------------------------------


def test_server_model_covers_the_wire_protocol():
    server, _, _ = models()
    expected = {
        "get",
        "gets",
        "set",
        "cas",
        "delete",
        "stats",
        "ts_dump",
        "batch_import",
        "mig_export",
        "trace",
        "version",
        "flush_all",
    }
    assert expected <= set(server.verbs)


def test_server_model_storage_arity_from_begin_storage():
    server, _, _ = models()
    assert server.verbs["set"].arity == (4, 5)
    assert server.verbs["cas"].arity == (5, 6)


def test_server_model_framings():
    server, _, _ = models()
    assert server.verbs["get"].framings == {"values"}
    assert server.verbs["ts_dump"].framings == {"ts"}
    assert "stats" in server.verbs["stats"].framings


def test_client_model_pairs_every_emission_with_a_known_verb():
    server, client, _ = models()
    assert client.emissions, "client model extracted no emissions"
    for emission in client.emissions:
        assert emission.verb in server.verbs, emission


def test_client_model_reader_framings():
    _, client, _ = models()
    assert client.readers["_read_values"] == "values"
    assert client.readers["_read_ts"] == "ts"
    assert client.readers["_read_simple"] == "line"
    # The raw escape hatch must never be pinned to a framing.
    assert "_read_sniffed" not in client.readers


def test_proxy_model_routes_and_client_calls():
    _, client, proxy = models()
    assert "get" in proxy.routed and "set" in proxy.routed
    assert proxy.client_calls
    for method, _ in proxy.client_calls:
        assert method in client.methods


def test_shipped_tree_is_drift_free():
    assert default_conformance(SRC.parent) == []
    # The packaged default (no explicit root) must agree.
    assert default_conformance() == []


# ----------------------------------------------------------------------
# Seeded drift on the real sources (text surgery, no files written)
# ----------------------------------------------------------------------


def test_removing_a_handler_fails_conformance():
    crippled = SERVER.read_text().replace(
        "def _cmd_ts_dump", "def _zzz_ts_dump"
    )
    server = extract_server_model(crippled)
    _, client, proxy = models()
    assert "REP201" in codes(check_models(server, client, proxy))


def test_swapping_a_client_reader_fails_conformance():
    source = CLIENT.read_text()
    swapped = source.replace(
        '_Request(_command(f"ts_dump {class_id}"), _read_ts)',
        '_Request(_command(f"ts_dump {class_id}"), _read_stats)',
    )
    assert swapped != source, "ts_dump emission shape changed; update test"
    server = extract_server_model(SERVER.read_text())
    client = extract_client_model(swapped)
    assert "REP202" in codes(check_models(server, client))


def test_widening_an_emission_arity_fails_conformance():
    source = CLIENT.read_text()
    widened = source.replace(
        'f"delete {key}"', 'f"delete {key} noreply extra"'
    )
    assert widened != source, "delete emission shape changed; update test"
    server = extract_server_model(SERVER.read_text())
    client = extract_client_model(widened)
    assert "REP203" in codes(check_models(server, client))


def test_renaming_a_router_call_fails_conformance():
    source = PROXY_ROUTER.read_text()
    renamed = source.replace(".flush_all(", ".flush_everything(")
    assert renamed != source, "router flush call changed; update test"
    server, client, _ = models()
    proxy = extract_proxy_model(PROXY_SERVER.read_text(), renamed)
    assert "REP204" in codes(check_models(server, client, proxy))


def test_routing_an_unknown_verb_fails_conformance():
    source = PROXY_SERVER.read_text()
    bogus = source.replace('"decr"', '"bump"')
    assert bogus != source, "ROUTED_COMMANDS literal changed; update test"
    server, client, _ = models()
    proxy = extract_proxy_model(bogus, PROXY_ROUTER.read_text())
    assert "REP205" in codes(check_models(server, client, proxy))


def test_catalogue_lists_all_five_conformance_checks():
    rows = conformance_catalogue()
    assert [code for code, _, _ in rows] == [
        f"REP20{index}" for index in range(1, 6)
    ]


@pytest.mark.parametrize("path", [SERVER, CLIENT, PROXY_SERVER, PROXY_ROUTER])
def test_protocol_surfaces_exist(path):
    assert path.is_file()
