"""Tests for the paper-vs-measured report assembler."""

from repro.analysis.report import (
    ABLATIONS,
    ARTIFACTS,
    ArtifactReport,
    load_reports,
    render_digest,
)


class TestArtifactsTable:
    def test_every_paper_artifact_listed(self):
        titles = " ".join(ARTIFACTS)
        for figure in ("Fig. 2", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert figure in titles
        for section in ("IV-B", "V-B2", "II-B", "II-C", "III-B"):
            assert section in titles

    def test_ablations_listed(self):
        assert len(ABLATIONS) >= 4


class TestLoading:
    def test_missing_reports_marked_unavailable(self, tmp_path):
        reports = load_reports(tmp_path)
        assert len(reports) == len(ARTIFACTS)
        assert all(not report.available for report in reports)

    def test_present_reports_loaded(self, tmp_path):
        (tmp_path / "fig2_postscaling.txt").write_text("row one\nrow two\n")
        reports = {r.title: r for r in load_reports(tmp_path)}
        fig2 = reports["Fig. 2 (post-scaling degradation)"]
        assert fig2.available
        assert "row one" in fig2.measured

    def test_report_dataclass(self):
        report = ArtifactReport("t", "claim", None)
        assert not report.available


class TestRendering:
    def test_digest_includes_paper_claims(self, tmp_path):
        digest = render_digest(tmp_path)
        assert "paper vs measured" in digest
        assert "88-97%" in digest
        assert "not yet run" in digest

    def test_digest_includes_measured_rows(self, tmp_path):
        (tmp_path / "cost_energy.txt").write_text("web 204 W\n")
        digest = render_digest(tmp_path)
        assert "web 204 W" in digest

    def test_digest_includes_ablations_when_present(self, tmp_path):
        (tmp_path / "ablation_hashing.txt").write_text("ketama row\n")
        digest = render_digest(tmp_path)
        assert "Ablations" in digest
        assert "ketama row" in digest

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "fig5_traces.txt").write_text("trace row\n")
        assert main(["report", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace row" in out
