"""Graceful-shutdown tests: SIGTERM/SIGINT drain the serving commands.

``repro serve`` and ``repro proxy`` are long-running processes; a
supervisor's TERM (or a Ctrl-C) must drain open connections through the
harness's ``drain_grace_s`` path and exit 0, not die mid-write with a
traceback.  These tests drive the real CLI in a subprocess.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def spawn(command: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            command,
            "--nodes",
            "2",
            "--memory-mb",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=REPO_ROOT,
        text=True,
    )


def wait_until_serving(process: subprocess.Popen, timeout_s: float = 30.0):
    """Read stdout lines until the 'serving' banner appears."""
    lines = []
    deadline = time.monotonic() + timeout_s
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        if "serving" in line:
            return lines
    pytest.fail(
        f"process never reported serving; output so far: {lines!r}"
    )


def finish(process: subprocess.Popen, sig: int, timeout_s: float = 30.0):
    process.send_signal(sig)
    try:
        remaining = process.communicate(timeout=timeout_s)[0]
    except subprocess.TimeoutExpired:
        process.kill()
        process.communicate()
        pytest.fail(f"process did not exit after signal {sig}")
    return remaining


@pytest.mark.slow
class TestGracefulShutdown:
    @pytest.mark.parametrize(
        "command,sig",
        [
            ("serve", signal.SIGTERM),
            ("serve", signal.SIGINT),
            ("proxy", signal.SIGTERM),
        ],
    )
    def test_signal_drains_and_exits_zero(self, command, sig):
        process = spawn(command)
        try:
            wait_until_serving(process)
            tail = finish(process, sig)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, tail
        assert signal.Signals(sig).name in tail
        assert "draining" in tail
        assert "stopped." in tail
        assert "Traceback" not in tail

    def test_duration_elapses_without_signal(self):
        """--duration exits 0 on its own, no signal involved."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "proxy",
                "--nodes",
                "2",
                "--memory-mb",
                "1",
                "--duration",
                "0.5",
            ],
            capture_output=True,
            env=env,
            cwd=REPO_ROOT,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stdout
        assert "stopped." in completed.stdout
        assert "draining" not in completed.stdout
