"""Tests for FuseCache and the baseline top-n selection algorithms.

The central invariant: whatever per-list counts an algorithm returns, the
*multiset* of selected timestamps must equal the top-n of the full sorted
merge -- for any k, any list sizes, and any amount of ties.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusecache import (
    fuse_cache,
    fuse_cache_detailed,
    kway_merge_top_n,
    lower_bound_comparisons,
    selected_multiset,
    sort_merge_top_n,
)
from repro.errors import ConfigurationError


def brute_force_top_n(lists, n):
    merged = sorted((v for lst in lists for v in lst), reverse=True)
    return merged[:n]


sorted_desc_lists = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=50).map(float),
        max_size=30,
    ).map(lambda lst: sorted(lst, reverse=True)),
    min_size=1,
    max_size=6,
)


class TestFuseCacheBasics:
    def test_empty_input(self):
        assert fuse_cache([], 5) == []

    def test_n_zero(self):
        assert fuse_cache([[3.0, 2.0]], 0) == [0]

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_cache([[1.0]], -1)

    def test_unsorted_input_rejected_when_validating(self):
        with pytest.raises(ConfigurationError):
            fuse_cache([[1.0, 2.0]], 1, validate=True)

    def test_n_exceeding_total_takes_everything(self):
        lists = [[3.0, 1.0], [2.0]]
        assert fuse_cache(lists, 10) == [2, 1]

    def test_single_list(self):
        assert fuse_cache([[9.0, 8.0, 7.0, 6.0]], 2) == [2]

    def test_empty_lists_mixed(self):
        lists = [[], [5.0, 4.0], []]
        assert fuse_cache(lists, 1) == [0, 1, 0]

    def test_counts_sum_to_n(self):
        lists = [[9.0, 7.0, 5.0], [8.0, 6.0, 4.0], [10.0, 3.0]]
        picks = fuse_cache(lists, 4)
        assert sum(picks) == 4

    def test_known_example(self):
        lists = [[9.0, 7.0, 5.0], [8.0, 6.0, 4.0, 2.0], [10.0, 3.0]]
        picks = fuse_cache(lists, 5)
        assert selected_multiset(lists, picks) == [10.0, 9.0, 8.0, 7.0, 6.0]

    def test_all_ties(self):
        lists = [[1.0, 1.0, 1.0], [1.0, 1.0], [1.0]]
        picks = fuse_cache(lists, 4)
        assert sum(picks) == 4
        assert all(0 <= p <= len(lst) for p, lst in zip(picks, lists))

    def test_detailed_counters_populated(self):
        lists = [[float(x) for x in range(100, 0, -1)] for _ in range(4)]
        result = fuse_cache_detailed(lists, 50)
        assert result.selected == 50
        assert result.rounds >= 1
        assert result.comparisons > 0


class TestBaselines:
    def test_sort_merge_simple(self):
        lists = [[9.0, 7.0], [8.0, 6.0]]
        assert sort_merge_top_n(lists, 3) == [2, 1]

    def test_sort_merge_overflow_takes_all(self):
        lists = [[9.0], [8.0]]
        assert sort_merge_top_n(lists, 5) == [1, 1]

    def test_sort_merge_n_zero(self):
        assert sort_merge_top_n([[1.0], [2.0]], 0) == [0, 0]

    def test_kway_merge_simple(self):
        lists = [[9.0, 7.0], [8.0, 6.0]]
        assert kway_merge_top_n(lists, 3) == [2, 1]

    def test_kway_merge_empty_lists(self):
        assert kway_merge_top_n([[], [5.0]], 1) == [0, 1]

    def test_kway_handles_ties_with_budget(self):
        lists = [[5.0, 5.0], [5.0, 5.0]]
        picks = kway_merge_top_n(lists, 3)
        assert sum(picks) == 3


class TestEquivalence:
    @given(sorted_desc_lists, st.integers(min_value=0, max_value=80))
    @settings(max_examples=200, deadline=None)
    def test_fusecache_matches_brute_force(self, lists, n):
        picks = fuse_cache(lists, n)
        expected = brute_force_top_n(lists, n)
        assert selected_multiset(lists, picks) == expected

    @given(sorted_desc_lists, st.integers(min_value=0, max_value=80))
    @settings(max_examples=100, deadline=None)
    def test_sort_merge_matches_brute_force(self, lists, n):
        picks = sort_merge_top_n(lists, n)
        assert selected_multiset(lists, picks) == brute_force_top_n(lists, n)

    @given(sorted_desc_lists, st.integers(min_value=0, max_value=80))
    @settings(max_examples=100, deadline=None)
    def test_kway_matches_brute_force(self, lists, n):
        picks = kway_merge_top_n(lists, n)
        assert selected_multiset(lists, picks) == brute_force_top_n(lists, n)

    @given(sorted_desc_lists, st.integers(min_value=0, max_value=80))
    @settings(max_examples=100, deadline=None)
    def test_picks_never_exceed_list_lengths(self, lists, n):
        picks = fuse_cache(lists, n)
        assert len(picks) == len(lists)
        for pick, lst in zip(picks, lists):
            assert 0 <= pick <= len(lst)

    def test_large_distinct_lists(self):
        lists = [
            [float(v) for v in range(1000 - i, 0, -3)] for i in range(8)
        ]
        n = 500
        picks = fuse_cache(lists, n)
        assert selected_multiset(lists, picks) == brute_force_top_n(lists, n)


class TestComplexity:
    def test_comparisons_scale_polylog_in_n(self):
        """FuseCache's comparison count grows ~k*(log n)^2, not ~n."""
        k = 4

        def comparisons(n):
            lists = [
                [float(x) for x in range(n, 0, -1)] for _ in range(k)
            ]
            return fuse_cache_detailed(lists, n // 2).comparisons

        small = comparisons(256)
        large = comparisons(4096)
        # A linear-time algorithm would grow 16x; polylog stays well under.
        assert large < 8 * small

    def test_lower_bound_formula(self):
        # log2(C(n+k-1, n)) for n=3, k=2 -> C(4,3)=4 -> 2 bits.
        assert lower_bound_comparisons(3, 2) == pytest.approx(2.0)

    def test_lower_bound_monotone_in_n(self):
        values = [lower_bound_comparisons(n, 8) for n in (10, 100, 1000)]
        assert values == sorted(values)

    def test_lower_bound_invalid(self):
        with pytest.raises(ConfigurationError):
            lower_bound_comparisons(-1, 2)
        with pytest.raises(ConfigurationError):
            lower_bound_comparisons(5, 0)

    def test_lower_bound_is_order_k_log_n(self):
        n, k = 10**6, 100
        bound = lower_bound_comparisons(n, k)
        assert bound == pytest.approx(k * math.log2(n), rel=0.35)
