"""Live tier under the loop sanitizer: debug mode + blocking trap on.

The acceptance bar for the sanitizer wiring: a full socket-backed
migration and a proxy round-trip run *clean* with asyncio debug mode,
the tightened slow-callback threshold, and the blocking-call trap
active on every loop in the process.  Any blocking call sneaking onto a
loop thread fails these tests loudly instead of hiding behind localhost
latency.
"""

import pytest

from repro.memcached.slab import PAGE_SIZE
from repro.net import NodeClient
from repro.net.livemigrate import run_live_migration
from repro.net.runtime import EventLoopThread
from repro.proxy import ProxyHarness

MEMORY = 8 * PAGE_SIZE


@pytest.fixture
def loop():
    with EventLoopThread(name="test-sanitized-client") as thread:
        yield thread


def test_live_migration_runs_clean_under_sanitizer():
    # A generous slow-callback threshold is set by the harness default;
    # run_live_migration raises InvariantViolation if either loop
    # records a blocking call, so plain completion IS the assertion.
    result = run_live_migration(
        nodes=3,
        retire=1,
        items=150,
        value_bytes=32,
        seed=13,
        verify=True,
        backoff_scale=0.1,
        sanitize=True,
    )
    assert result.warm
    assert result.verified is True


def test_proxy_roundtrip_runs_clean_under_sanitizer(loop):
    with ProxyHarness(
        ["n0", "n1"], MEMORY, drain_grace_s=0.2, sanitize=True
    ) as harness:
        host, port = harness.proxy_endpoint
        client = NodeClient("proxy", host, port)
        assert loop.call(client.set("k", b"hello", flags=3))
        assert loop.call(client.get("k")) == (3, b"hello")
        assert loop.call(client.delete("k"))
        loop.call(client.close())
        assert harness.sanitizer is not None
        assert harness.backends.sanitizer is not None
    harness.sanitizer.check("proxy loop")
    harness.backends.sanitizer.check("backend loop")
