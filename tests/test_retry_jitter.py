"""Regression tests for seeded decorrelated retry jitter.

The jitter option must be strictly opt-in: every policy that does not
ask for it keeps the exact deterministic exponential schedule the Master
and the migration reports have always used.  With
``jitter="decorrelated"`` the schedule becomes the AWS decorrelated
chain -- each delay drawn uniformly from ``[base, min(cap, 3 * prev)]``
-- but remains a pure function of ``(policy, seed, failures)``, so
simulations replay bit-for-bit while distinct seeds spread simultaneous
retries apart.
"""

import pytest

from repro.core.retry import JITTER_MODES, NO_RETRY, RetryPolicy
from repro.errors import ConfigurationError


class TestDefaultScheduleUnchanged:
    """The pre-jitter behaviour is a frozen contract."""

    def test_exponential_schedule_exact_values(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff_s=0.5,
            backoff_multiplier=2.0,
            max_backoff_s=3.0,
        )
        assert [policy.backoff_s(f) for f in range(1, 5)] == [
            0.5,
            1.0,
            2.0,
            3.0,  # capped
        ]

    def test_seed_is_ignored_without_jitter(self):
        policy = RetryPolicy()
        assert policy.backoff_s(2, seed=1) == policy.backoff_s(2, seed=99)
        assert policy.backoff_s(2, seed=1) == policy.backoff_s(2)

    def test_total_backoff_unchanged(self):
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=0.5, max_backoff_s=30.0
        )
        assert policy.total_backoff_s() == pytest.approx(1.5)
        assert NO_RETRY.total_backoff_s() == 0.0

    def test_failures_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)


class TestDecorrelatedJitter:
    def make(self, **kwargs):
        defaults = dict(
            max_attempts=4,
            base_backoff_s=0.1,
            max_backoff_s=2.0,
            jitter="decorrelated",
        )
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_same_seed_same_delays(self):
        policy = self.make()
        first = [policy.backoff_s(f, seed=42) for f in range(1, 4)]
        second = [policy.backoff_s(f, seed=42) for f in range(1, 4)]
        assert first == second

    def test_distinct_seeds_decorrelate(self):
        policy = self.make()
        delays = {policy.backoff_s(2, seed=s) for s in range(20)}
        # 20 clients retrying after the same double failure should not
        # stampede at the same instant.
        assert len(delays) >= 18

    def test_no_seed_means_seed_zero(self):
        policy = self.make()
        assert policy.backoff_s(2) == policy.backoff_s(2, seed=0)

    def test_delays_respect_base_and_cap(self):
        policy = self.make(base_backoff_s=0.2, max_backoff_s=1.0)
        for seed in range(50):
            for failures in range(1, 5):
                delay = policy.backoff_s(failures, seed=seed)
                assert 0.2 <= delay <= 1.0

    def test_chain_growth_bounded_by_3x(self):
        """Each draw's ceiling is 3x the previous draw, so the first
        failure's delay never exceeds 3x base."""
        policy = self.make(base_backoff_s=0.1, max_backoff_s=100.0)
        for seed in range(50):
            assert policy.backoff_s(1, seed=seed) <= 0.3 + 1e-12

    def test_total_backoff_is_an_upper_envelope(self):
        policy = self.make()
        envelope = policy.total_backoff_s()
        for seed in range(30):
            realised = sum(
                policy.backoff_s(f, seed=seed)
                for f in range(1, policy.max_attempts)
            )
            assert realised <= envelope + 1e-12

    def test_unknown_jitter_mode_rejected(self):
        assert "decorrelated" in JITTER_MODES
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter="full")


class TestClientSeedPlumbing:
    def test_node_client_stores_retry_seed(self):
        from repro.net.client import NodeClient

        client = NodeClient(
            "n0", "127.0.0.1", 0, retry_seed=7
        )
        assert client.retry_seed == 7

    def test_proxy_clients_get_per_backend_seeds(self):
        from repro.hashing.hashutil import hash32
        from repro.proxy import ProxyRouter

        router = ProxyRouter(
            {"a": ("127.0.0.1", 1), "b": ("127.0.0.1", 2)}
        )
        assert router.client("a").retry_seed == hash32("a")
        assert router.client("b").retry_seed == hash32("b")
        assert router.client("a").retry_seed != router.client(
            "b"
        ).retry_seed
        assert router.client("a").retry.jitter == "decorrelated"
