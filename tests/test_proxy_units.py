"""Unit tests for the proxy tier's building blocks.

Everything here is event-loop-local (``asyncio.run``) or purely
synchronous; the socket-crossing proxy tests live in
``test_proxy_live.py``.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.obs import create_telemetry
from repro.proxy import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    GetCoalescer,
    HotKeyDetector,
    ProxyConfig,
    ProxyRouter,
    ReplicaRegistry,
)


class StepClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = StepClock()
        telemetry = create_telemetry()
        breaker = CircuitBreaker(
            "n0", clock=clock, telemetry=telemetry, **kwargs
        )
        return breaker, clock, telemetry.metrics

    def test_starts_closed_and_allows(self):
        breaker, _, metrics = self.make()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert (
            metrics.gauge("proxy_breaker_state", backend="n0").value == 0
        )

    def test_trips_open_after_threshold_consecutive_failures(self):
        breaker, _, metrics = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        # A success resets the consecutive count.
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert (
            metrics.gauge("proxy_breaker_state", backend="n0").value == 1
        )
        assert (
            metrics.counter(
                "proxy_breaker_transitions_total", backend="n0", to=OPEN
            ).value
            == 1
        )

    def test_open_rejects_and_counts(self):
        breaker, _, metrics = self.make(failure_threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert (
            metrics.counter(
                "proxy_breaker_rejections_total", backend="n0"
            ).value
            == 2
        )

    def test_half_open_after_duration_single_probe_slot(self):
        breaker, clock, _ = self.make(
            failure_threshold=1, open_duration_s=1.0
        )
        breaker.record_failure()
        clock.now = 0.5
        assert not breaker.allow()
        clock.now = 1.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # claims the probe slot
        assert not breaker.allow()  # slot taken

    def test_probe_success_closes(self):
        breaker, clock, metrics = self.make(
            failure_threshold=1, open_duration_s=1.0, close_after=1
        )
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert (
            metrics.counter(
                "proxy_breaker_transitions_total", backend="n0", to=CLOSED
            ).value
            == 1
        )

    def test_probe_failure_reopens_and_restarts_timer(self):
        breaker, clock, _ = self.make(
            failure_threshold=1, open_duration_s=1.0
        )
        breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 1.5  # only 0.5s since the re-open
        assert not breaker.allow()
        clock.now = 2.0
        assert breaker.allow()

    def test_close_after_requires_consecutive_probe_successes(self):
        breaker, clock, _ = self.make(
            failure_threshold=1, open_duration_s=1.0, close_after=2
        )
        breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_reset_forces_closed(self):
        breaker, _, _ = self.make(failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("n0", failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("n0", open_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("n0", close_after=0)


class TestGetCoalescer:
    def test_concurrent_same_key_fetches_share_one_loader_call(self):
        async def scenario():
            telemetry = create_telemetry()
            coalescer = GetCoalescer(telemetry)
            gate = asyncio.Event()
            calls = 0

            async def loader():
                nonlocal calls
                calls += 1
                await gate.wait()
                return (0, b"value")

            tasks = [
                asyncio.ensure_future(coalescer.fetch("k", loader))
                for _ in range(10)
            ]
            await asyncio.sleep(0)  # let every fetch register
            assert coalescer.inflight == 1
            gate.set()
            results = await asyncio.gather(*tasks)
            metrics = telemetry.metrics
            return calls, results, metrics

        calls, results, metrics = asyncio.run(scenario())
        assert calls == 1
        assert results == [(0, b"value")] * 10
        assert metrics.counter("proxy_coalesce_leaders_total").value == 1
        assert metrics.counter("proxy_coalesce_followers_total").value == 9

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = GetCoalescer()

            async def loader_for(key):
                await asyncio.sleep(0)
                return key

            return await asyncio.gather(
                coalescer.fetch("a", lambda: loader_for("a")),
                coalescer.fetch("b", lambda: loader_for("b")),
            )

        assert asyncio.run(scenario()) == ["a", "b"]

    def test_leader_failure_propagates_to_followers(self):
        async def scenario():
            coalescer = GetCoalescer()
            gate = asyncio.Event()

            async def loader():
                await gate.wait()
                raise RuntimeError("backend died")

            tasks = [
                asyncio.ensure_future(coalescer.fetch("k", loader))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            gate.set()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_memoryless_sequential_fetches_each_lead(self):
        async def scenario():
            telemetry = create_telemetry()
            coalescer = GetCoalescer(telemetry)

            async def loader():
                return 1

            await coalescer.fetch("k", loader)
            await coalescer.fetch("k", loader)
            return telemetry.metrics

        metrics = asyncio.run(scenario())
        assert metrics.counter("proxy_coalesce_leaders_total").value == 2
        assert metrics.counter("proxy_coalesce_followers_total").value == 0

    def test_cancelled_follower_does_not_cancel_leader(self):
        async def scenario():
            coalescer = GetCoalescer()
            gate = asyncio.Event()

            async def loader():
                await gate.wait()
                return "ok"

            leader = asyncio.ensure_future(coalescer.fetch("k", loader))
            await asyncio.sleep(0)
            follower = asyncio.ensure_future(coalescer.fetch("k", loader))
            await asyncio.sleep(0)
            follower.cancel()
            gate.set()
            result = await leader
            assert follower.cancelled() or isinstance(
                follower.exception(), asyncio.CancelledError
            )
            return result

        assert asyncio.run(scenario()) == "ok"


class TestHotKeyDetector:
    def test_promotes_at_threshold(self):
        detector = HotKeyDetector(promote_threshold=3)
        assert not detector.observe("k")
        assert not detector.observe("k")
        assert detector.observe("k")
        assert detector.is_hot("k")
        assert not detector.is_hot("other")

    def test_sampling_is_deterministic_modulo(self):
        detector = HotKeyDetector(promote_threshold=2, sample_every=2)
        # Only every second observation is tallied.
        for _ in range(4):
            detector.observe("k")
        assert detector.count("k") == 2
        assert detector.is_hot("k")

    def test_decay_halves_and_drops_zeros(self):
        detector = HotKeyDetector(promote_threshold=10)
        for _ in range(8):
            detector.observe("hot")
        detector.observe("cold")
        detector.decay()
        assert detector.count("hot") == 4
        assert detector.count("cold") == 0
        assert not detector.is_hot("hot")

    def test_automatic_decay_cadence(self):
        detector = HotKeyDetector(promote_threshold=100, decay_every=10)
        for _ in range(10):
            detector.observe("k")
        # The tenth tally triggered a decay sweep: 10 // 2 = 5.
        assert detector.count("k") == 5

    def test_max_tracked_admission_cap(self):
        detector = HotKeyDetector(promote_threshold=2, max_tracked=2)
        detector.observe("a")
        detector.observe("b")
        detector.observe("c")  # table full; not admitted
        assert detector.count("c") == 0
        assert detector.observe("a")  # existing keys still tallied

    def test_top_orders_hottest_first(self):
        detector = HotKeyDetector(promote_threshold=100)
        for key, count in (("a", 3), ("b", 5), ("c", 1)):
            for _ in range(count):
                detector.observe(key)
        assert detector.top(2) == ["b", "a"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotKeyDetector(promote_threshold=0)
        with pytest.raises(ConfigurationError):
            HotKeyDetector(sample_every=0)


class TestReplicaRegistry:
    def test_promote_demote_roundtrip(self):
        telemetry = create_telemetry()
        registry = ReplicaRegistry(max_hot_keys=2, telemetry=telemetry)
        registry.promote("k", ("n1", "n2"))
        assert "k" in registry
        assert registry.replicas_for("k") == ("n1", "n2")
        registry.demote("k")
        assert "k" not in registry
        assert registry.replicas_for("k") == ()
        metrics = telemetry.metrics
        assert metrics.counter("proxy_replica_promotions_total").value == 1
        assert metrics.counter("proxy_replica_demotions_total").value == 1

    def test_capacity_bound(self):
        registry = ReplicaRegistry(max_hot_keys=1)
        registry.promote("a", ("n1",))
        registry.promote("b", ("n1",))  # full; ignored
        assert registry.full
        assert "b" not in registry
        # Re-promoting an existing key is always allowed.
        registry.promote("a", ("n2",))
        assert registry.replicas_for("a") == ("n2",)

    def test_retain_backends_drops_stale_entries(self):
        registry = ReplicaRegistry(max_hot_keys=4)
        registry.promote("a", ("n1",))
        registry.promote("b", ("n2", "n3"))
        registry.retain_backends(["n1", "n2"])  # n3 departed
        assert "a" in registry
        assert "b" not in registry

    def test_empty_promotion_is_ignored(self):
        registry = ReplicaRegistry()
        registry.promote("a", ())
        assert "a" not in registry


class TestProxyConfig:
    def test_rejects_negative_replication(self):
        with pytest.raises(ConfigurationError):
            ProxyConfig(replication_factor=-1)

    def test_router_requires_backends(self):
        with pytest.raises(ConfigurationError):
            ProxyRouter({})

    def test_router_rejects_unknown_active_names(self):
        from repro.errors import MembershipError

        with pytest.raises(MembershipError):
            ProxyRouter(
                {"n0": ("127.0.0.1", 1)}, active=["n0", "ghost"]
            )

    def test_replica_targets_walk_the_ring_members(self):
        endpoints = {
            f"n{i}": ("127.0.0.1", 1000 + i) for i in range(4)
        }
        router = ProxyRouter(
            endpoints, config=ProxyConfig(replication_factor=2)
        )
        targets = router._replica_targets("n1")
        assert len(targets) == 2
        assert "n1" not in targets

    def test_single_backend_has_no_replica_targets(self):
        router = ProxyRouter(
            {"n0": ("127.0.0.1", 1)},
            config=ProxyConfig(replication_factor=2),
        )
        assert router._replica_targets("n0") == ()
