"""Tests for the load rebalancer (future-work extension) and remaps."""

import pytest

from repro.core.rebalance import LoadRebalancer
from repro.errors import ConfigurationError, MembershipError
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import NetworkModel


def warmed_cluster(nodes=4, items=400):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, 4 * PAGE_SIZE)
    for i in range(items):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    return cluster


class TestClusterRemap:
    def test_remap_changes_routing(self):
        cluster = warmed_cluster()
        key = "key-00000"
        owner = cluster.route(key)
        other = next(
            name for name in cluster.active_members if name != owner
        )
        cluster.set_remap(key, other)
        assert cluster.route(key) == other
        assert cluster.remap_count == 1

    def test_remap_to_hash_owner_is_dropped(self):
        cluster = warmed_cluster()
        key = "key-00000"
        cluster.set_remap(key, cluster.ring.node_for_key(key))
        assert cluster.remap_count == 0

    def test_remap_to_inactive_rejected(self):
        cluster = warmed_cluster()
        with pytest.raises(MembershipError):
            cluster.set_remap("key-00000", "ghost")

    def test_clear_remap(self):
        cluster = warmed_cluster()
        key = "key-00000"
        owner = cluster.route(key)
        other = next(
            name for name in cluster.active_members if name != owner
        )
        cluster.set_remap(key, other)
        cluster.clear_remap(key)
        assert cluster.route(key) == owner

    def test_membership_change_drops_stale_remaps(self):
        cluster = warmed_cluster()
        key = "key-00000"
        owner = cluster.route(key)
        other = next(
            name for name in cluster.active_members if name != owner
        )
        cluster.set_remap(key, other)
        cluster.set_membership(
            sorted(set(cluster.active_members) - {other})
        )
        assert cluster.remap_count == 0
        assert cluster.route(key) != other

    def test_clear_all(self):
        cluster = warmed_cluster()
        keys = [f"key-{i:05d}" for i in range(10)]
        for key in keys:
            owner = cluster.ring.node_for_key(key)
            other = next(
                n for n in cluster.active_members if n != owner
            )
            cluster.set_remap(key, other)
        cluster.clear_all_remaps()
        assert cluster.remap_count == 0


class TestLoadRebalancer:
    def make(self, cluster, **kwargs):
        defaults = dict(
            network=NetworkModel(nic_bandwidth_bps=1e6),
            imbalance_threshold=1.3,
            batch_items=50,
            min_window_requests=100,
        )
        defaults.update(kwargs)
        return LoadRebalancer(cluster, **defaults)

    def hot_node_traffic(self, cluster, rebalancer, repeats=200):
        """Drive requests only at one node's keys."""
        hot = sorted(cluster.active_members)[0]
        hot_keys = [
            key
            for key in [f"key-{i:05d}" for i in range(400)]
            if cluster.route(key) == hot
        ]
        for _ in range(repeats):
            rebalancer.observe_many(hot_keys[:10])
        return hot, hot_keys

    def test_parameter_validation(self):
        cluster = warmed_cluster()
        with pytest.raises(ConfigurationError):
            LoadRebalancer(cluster, imbalance_threshold=1.0)
        with pytest.raises(ConfigurationError):
            LoadRebalancer(cluster, batch_items=0)

    def test_balanced_traffic_triggers_nothing(self):
        cluster = warmed_cluster()
        rebalancer = self.make(cluster)
        for i in range(400):
            rebalancer.observe(f"key-{i % 400:05d}")
        assert rebalancer.maybe_rebalance(now=1.0) is None

    def test_small_window_is_ignored(self):
        cluster = warmed_cluster()
        rebalancer = self.make(cluster, min_window_requests=10_000)
        self.hot_node_traffic(cluster, rebalancer)
        assert rebalancer.maybe_rebalance(now=1.0) is None

    def test_imbalance_metric(self):
        cluster = warmed_cluster()
        rebalancer = self.make(cluster)
        self.hot_node_traffic(cluster, rebalancer)
        assert rebalancer.imbalance() > 2.0

    def test_hot_spot_triggers_move(self):
        cluster = warmed_cluster()
        rebalancer = self.make(cluster)
        hot, _ = self.hot_node_traffic(cluster, rebalancer)
        action = rebalancer.maybe_rebalance(now=5.0)
        assert action is not None
        assert action.source == hot
        assert action.items_moved > 0
        assert action.duration_s > 0
        assert rebalancer.actions == [action]

    def test_moved_keys_follow_routing(self):
        cluster = warmed_cluster()
        rebalancer = self.make(cluster)
        self.hot_node_traffic(cluster, rebalancer)
        action = rebalancer.maybe_rebalance(now=5.0)
        target_node = cluster.nodes[action.target]
        # Remapped keys are now served by the target node.
        served = 0
        for key in [f"key-{i:05d}" for i in range(400)]:
            if cluster.route(key) == action.target and target_node.contains(
                key
            ):
                served += 1
        assert served >= action.items_moved

    def test_window_resets_after_action(self):
        cluster = warmed_cluster()
        rebalancer = self.make(cluster)
        self.hot_node_traffic(cluster, rebalancer)
        rebalancer.maybe_rebalance(now=5.0)
        assert rebalancer.window.total == 0
        assert rebalancer.maybe_rebalance(now=6.0) is None

    def test_single_node_cluster_never_rebalances(self):
        cluster = warmed_cluster(nodes=1)
        rebalancer = self.make(cluster)
        for _ in range(300):
            rebalancer.observe("key-00001")
        assert rebalancer.maybe_rebalance(now=1.0) is None
