"""Live-tier tests: real sockets, timeouts, faults, and equivalence.

Everything here crosses actual TCP connections on localhost: the
harness runs the asyncio node servers on one event loop, the client
calls are driven from a second loop through
:class:`~repro.net.runtime.EventLoopThread`, exactly as the CLI does.
The slow-but-total checks (timeout exhaustion, degrade-to-cold, the
socket-vs-in-process equivalence replay) keep their budgets tiny via
``backoff_scale`` so the suite stays fast.
"""

import time

import pytest

from repro.core.master import Master
from repro.core.retry import RetryPolicy
from repro.errors import TransportError
from repro.faults.sockets import DEAD_STOP_DELAY_S, SocketFaultPolicy
from repro.faults.spec import FaultSchedule, FaultSpec
from repro.memcached.slab import PAGE_SIZE
from repro.net import LiveCluster, LiveClusterHarness, NodeClient
from repro.net.livemigrate import (
    node_signature,
    run_live_migration,
    seed_records,
)
from repro.net.runtime import EventLoopThread
from repro.obs import create_telemetry

MEMORY = 8 * PAGE_SIZE
FAST_RETRY = RetryPolicy(
    max_attempts=2, base_backoff_s=0.01, max_backoff_s=0.05
)


@pytest.fixture
def loop():
    with EventLoopThread(name="test-client") as thread:
        yield thread


class StepClock:
    """A manual wall clock for deterministic fault windows."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class DropFirstChunk:
    """Policy stub: abort the very first chunk, pass everything after."""

    def __init__(self) -> None:
        self.chunks = 0

    def disposition(self, node: str) -> tuple[str, float]:
        self.chunks += 1
        return ("drop", 0.0) if self.chunks == 1 else ("pass", 0.0)


class TestSocketFaultPolicy:
    def make(self, *specs, base_delay_s=0.1, now=0.0):
        clock = StepClock(now)
        policy = SocketFaultPolicy(
            FaultSchedule(list(specs)),
            base_delay_s=base_delay_s,
            clock=clock,
        )
        return policy, clock

    def test_inactive_schedule_passes(self):
        policy, _ = self.make(
            FaultSpec(5.0, "node_stall", node="n0", factor=0.5)
        )
        assert policy.disposition("n0") == ("pass", 0.0)

    def test_crash_drops_and_wins_over_stall(self):
        policy, clock = self.make(
            FaultSpec(0.0, "node_stall", node="n0", factor=0.5),
            FaultSpec(1.0, "node_crash", node="n0"),
        )
        clock.now = 0.5
        assert policy.disposition("n0")[0] == "delay"
        clock.now = 2.0
        assert policy.disposition("n0") == ("drop", 0.0)

    def test_throttle_delay_math(self):
        policy, clock = self.make(
            FaultSpec(0.0, "flow_throttle", dst="n0", factor=0.5),
            base_delay_s=0.1,
        )
        kind, delay = policy.disposition("n0")
        assert kind == "delay"
        assert delay == pytest.approx(0.1)  # 0.1 * (1/0.5 - 1)

    def test_zero_factor_is_dead_stop(self):
        policy, _ = self.make(
            FaultSpec(0.0, "node_stall", node="n0", factor=0.0)
        )
        assert policy.disposition("n0") == ("delay", DEAD_STOP_DELAY_S)

    def test_flow_fault_filters_by_dst_only(self):
        policy, _ = self.make(
            FaultSpec(0.0, "flow_fail", src="n9", dst="n0")
        )
        assert policy.disposition("n0") == ("drop", 0.0)
        assert policy.disposition("n1") == ("pass", 0.0)

    def test_fault_expires(self):
        policy, clock = self.make(
            FaultSpec(0.0, "flow_fail", dst="n0", duration_s=2.0)
        )
        assert policy.disposition("n0")[0] == "drop"
        clock.now = 3.0
        assert policy.disposition("n0") == ("pass", 0.0)


class TestClientServerRoundTrip:
    def test_kv_operations_over_sockets(self, loop):
        with LiveClusterHarness(["n0"], MEMORY) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient("n0", host, port)
            assert loop.call(client.set("k", b"hello", flags=3))
            assert loop.call(client.get("k")) == (3, b"hello")
            assert loop.call(client.get("ghost")) is None
            assert loop.call(client.set("n", b"41"))
            assert loop.call(client.incr("n", 1)) == 42
            assert loop.call(client.delete("k"))
            assert loop.call(client.get("k")) is None
            assert loop.call(client.stats())["curr_items"] == 1
            loop.call(client.close())

    def test_pipelined_many_operations(self, loop):
        with LiveClusterHarness(["n0"], MEMORY) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient("n0", host, port)
            entries = [(f"k{i}", i % 4, bytes([i]) * 10) for i in range(150)]
            assert loop.call(client.set_many(entries)) == 150
            values = loop.call(
                client.get_many([key for key, _, _ in entries] + ["ghost"])
            )
            assert values[:-1] == [
                (flags, payload) for _, flags, payload in entries
            ]
            assert values[-1] is None
            loop.call(client.close())

    def test_migration_commands_between_live_nodes(self, loop):
        """ts_dump -> mig_export -> batch_import across two servers."""
        with LiveClusterHarness(["src", "dst"], MEMORY) as harness:
            src = NodeClient("src", *harness.endpoints["src"])
            dst = NodeClient("dst", *harness.endpoints["dst"])
            records = seed_records(40, value_bytes=24, seed=3)
            assert loop.call(src.batch_import(records)) == 40

            rows = loop.call(src.ts_dump(0))
            assert {key for key, _, _ in rows} == {
                record.key for record in records
            }
            # merge-mode imports keep the shipped hotness timestamps.
            by_key = {r.key: r.last_access for r in records}
            assert all(by_key[key] == ts for key, ts, _ in rows)

            exported = loop.call(
                src.mig_export([record.key for record in records])
            )
            assert loop.call(dst.batch_import(exported)) == 40
            assert loop.call(dst.get(records[0].key)) == records[0].value
            loop.call(src.close())
            loop.call(dst.close())


class TestTimeoutAndRetry:
    def test_stalled_server_times_out_then_transport_error(self, loop):
        """A dead-stop stall exhausts the retry budget, one timeout per
        attempt, and surfaces as TransportError."""
        policy = SocketFaultPolicy(
            FaultSchedule(
                [FaultSpec(0.0, "node_stall", node="n0", factor=0.0)]
            )
        )
        telemetry = create_telemetry()
        with LiveClusterHarness(
            ["n0"], MEMORY, fault_policy=policy, drain_grace_s=0.1
        ) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient(
                "n0",
                host,
                port,
                timeout_s=0.2,
                retry=FAST_RETRY,
                backoff_scale=0.1,
                telemetry=telemetry,
            )
            started = time.monotonic()
            with pytest.raises(TransportError, match="after 2 attempt"):
                loop.call(client.set("k", b"v"))
            elapsed = time.monotonic() - started
            assert elapsed < 2.0  # two 0.2 s timeouts plus slack
            metrics = telemetry.metrics
            assert (
                metrics.counter("net_client_retries_total", node="n0").value
                == 1
            )
            assert (
                metrics.counter(
                    "net_client_transport_errors_total", node="n0"
                ).value
                == 1
            )
            loop.call(client.close())

    def test_dropped_connection_is_retried_and_succeeds(self, loop):
        policy = DropFirstChunk()
        telemetry = create_telemetry()
        with LiveClusterHarness(
            ["n0"], MEMORY, fault_policy=policy, drain_grace_s=0.1
        ) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient(
                "n0",
                host,
                port,
                retry=FAST_RETRY,
                backoff_scale=0.1,
                telemetry=telemetry,
            )
            assert loop.call(client.set("k", b"v"))
            assert loop.call(client.get("k")) == (0, b"v")
            assert policy.chunks >= 2
            assert (
                telemetry.metrics.counter(
                    "net_client_retries_total", node="n0"
                ).value
                == 1
            )
            loop.call(client.close())

    def test_connection_refused_is_transport_error(self, loop):
        # Bind-then-close guarantees a dead localhost port.
        import socket

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = NodeClient(
            "gone",
            "127.0.0.1",
            port,
            timeout_s=0.5,
            retry=FAST_RETRY,
            backoff_scale=0.1,
        )
        with pytest.raises(TransportError):
            loop.call(client.get("k"))
        loop.call(client.close())


class TickClock:
    """A wall clock that advances a fixed step per reading, so a timed
    fault window expires after a known number of policy consultations
    without any real sleeping."""

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestMidStreamChunkDelays:
    """SocketFaultPolicy delay dispositions against a *pipelined* client.

    A large pipelined batch spans several RECV_CHUNK reads at the
    server, and the policy delays each chunk mid-stream -- the slow-node
    regime between "healthy" and "dead".  The client must either ride
    it out within its timeout, retry on a fresh connection, or give up
    with TransportError after the retry budget.
    """

    def big_batch(self, entries=300, value_bytes=512):
        # ~150 KB of wire bytes: at least three 64 KB server reads, so
        # the per-chunk delay is applied mid-request, not just once.
        return [
            (f"bulk:{i:04d}", i % 8, bytes([i % 251]) * value_bytes)
            for i in range(entries)
        ]

    def test_cumulative_chunk_delays_exhaust_retries(self, loop):
        """Per-chunk delays that sum past the timeout on every attempt
        end in TransportError, one timeout per attempt."""
        policy = SocketFaultPolicy(
            FaultSchedule(
                [FaultSpec(0.0, "node_stall", node="n0", factor=0.25)]
            ),
            base_delay_s=0.1,  # 0.1 * (1/0.25 - 1) = 0.3s per chunk
        )
        telemetry = create_telemetry()
        with LiveClusterHarness(
            ["n0"], MEMORY, fault_policy=policy, drain_grace_s=0.1
        ) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient(
                "n0",
                host,
                port,
                timeout_s=0.4,
                retry=FAST_RETRY,
                backoff_scale=0.1,
                telemetry=telemetry,
            )
            started = time.monotonic()
            with pytest.raises(TransportError, match="after 2 attempt"):
                loop.call(client.set_many(self.big_batch()))
            elapsed = time.monotonic() - started
            # Two 0.4s timeouts plus backoff and slack, not the full
            # ~0.9s-per-attempt the delays would add up to.
            assert elapsed < 3.0
            metrics = telemetry.metrics
            assert (
                metrics.counter("net_client_retries_total", node="n0").value
                == 1
            )
            assert (
                metrics.counter(
                    "net_client_transport_errors_total", node="n0"
                ).value
                == 1
            )
            loop.call(client.close())

    def test_stall_window_expiring_lets_the_retry_succeed(self, loop):
        """First attempt lands inside the stall window and times out;
        the retry's fresh connection arrives after the window expired
        and the whole pipelined batch goes through."""
        clock = TickClock(step=3.0)
        policy = SocketFaultPolicy(
            FaultSchedule(
                [
                    FaultSpec(
                        0.0,
                        "node_stall",
                        node="n0",
                        factor=0.0,  # dead stop while active
                        duration_s=5.0,
                    )
                ]
            ),
            clock=clock,
        )
        telemetry = create_telemetry()
        with LiveClusterHarness(
            ["n0"], MEMORY, fault_policy=policy, drain_grace_s=0.1
        ) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient(
                "n0",
                host,
                port,
                timeout_s=0.3,
                retry=FAST_RETRY,
                backoff_scale=0.1,
                telemetry=telemetry,
            )
            entries = self.big_batch(entries=40, value_bytes=64)
            # Attempt 1: policy reads elapsed=3.0 < 5.0 -> dead stop ->
            # client times out.  Attempt 2 (fresh connection): policy
            # reads elapsed=6.0 > 5.0 -> pass -> success.
            assert loop.call(client.set_many(entries)) == len(entries)
            assert (
                telemetry.metrics.counter(
                    "net_client_retries_total", node="n0"
                ).value
                == 1
            )
            values = loop.call(
                client.get_many([key for key, _, _ in entries])
            )
            assert values == [
                (flags, payload) for _, flags, payload in entries
            ]
            loop.call(client.close())


class TestHarnessNodeLifecycle:
    def test_stop_node_refuses_connections_and_restart_is_warm(self, loop):
        """stop_node kills only the listener: the cache survives, and
        start_node brings it back on the same port."""
        with LiveClusterHarness(
            ["n0", "n1"], MEMORY, drain_grace_s=0.2
        ) as harness:
            host, port = harness.endpoints["n0"]
            client = NodeClient(
                "n0",
                host,
                port,
                timeout_s=0.5,
                retry=FAST_RETRY,
                backoff_scale=0.1,
            )
            assert loop.call(client.set("k", b"v"))
            harness.stop_node("n0")
            with pytest.raises(TransportError):
                loop.call(client.get("k"))
            restarted = harness.start_node("n0")
            assert restarted == (host, port)
            assert loop.call(client.get("k")) == (0, b"v")
            loop.call(client.close())


class TestDegradeToColdOverSockets:
    def test_failed_import_flows_degrade_but_membership_switches(self):
        """Kill the import flows into one retained node mid-execution:
        the Master records the failed flows, completes the rest, and
        still switches membership -- degraded, never wedged."""
        schedule = FaultSchedule([])
        policy = SocketFaultPolicy(schedule, clock=StepClock())
        names = [f"live-{i:02d}" for i in range(4)]
        with LiveClusterHarness(
            names, MEMORY, fault_policy=policy, drain_grace_s=0.2
        ) as harness:
            live = LiveCluster(
                harness.endpoints,
                timeout_s=2.0,
                retry=FAST_RETRY,
                backoff_scale=0.05,
            )
            try:
                records = seed_records(400, value_bytes=32, seed=5)
                owners = live.route_many([r.key for r in records])
                groups = {}
                for record, owner in zip(records, owners):
                    groups.setdefault(owner, []).append(record)
                for name, group in groups.items():
                    live.nodes[name].batch_import(group, mode="merge")

                master = Master(live)
                plan = master.plan_scale_in(master.choose_retiring(1))
                victims = {dst for _, dst in plan.transfers}
                victim = sorted(victims)[0]
                # Fault goes live only now, after planning: imports into
                # the victim abort at the socket layer from here on.
                schedule.add(FaultSpec(0.0, "flow_fail", dst=victim))

                report = master.execute(plan)
                assert report.failed_flows
                assert {dst for _, dst in report.failed_flows} == {victim}
                assert report.outcome in ("partial", "cold")
                assert report.membership_after == sorted(plan.retained)
                assert (
                    report.completed_pairs
                    == len(plan.transfers) - len(report.failed_flows)
                )
            finally:
                # Clear the fault so pooled-connection teardown and the
                # harness drain do not wait out aborted sockets.
                schedule.specs.clear()
                live.close()


class TestSocketEquivalence:
    def test_live_migration_matches_in_process_twin(self):
        result = run_live_migration(
            nodes=3,
            retire=1,
            items=250,
            value_bytes=32,
            seed=11,
            verify=True,
            backoff_scale=0.1,
        )
        assert result.warm
        assert result.failed_flows == 0
        assert result.verified is True
        assert result.mismatched_nodes == []
        assert result.items_seeded == 250
        assert result.items_exported == result.items_imported
        assert len(result.membership_after) == 2
        payload = result.to_dict()
        assert payload["outcome"] == "warm"
        assert payload["verified"] is True

    def test_node_signature_live_equals_in_process(self, loop):
        """The signature helper reads identical bytes through the wire
        and through the in-process API."""
        from repro.memcached.node import MemcachedNode

        records = seed_records(60, value_bytes=16, seed=21)
        twin = MemcachedNode("n0", MEMORY)
        twin.batch_import(records, mode="merge")
        with LiveClusterHarness(["n0"], MEMORY) as harness:
            live = LiveCluster(harness.endpoints)
            try:
                live.nodes["n0"].batch_import(records, mode="merge")
                assert node_signature(live.nodes["n0"]) == node_signature(
                    twin
                )
            finally:
                live.close()
