"""Tests for the intrusive MRU list."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memcached.items import Item
from repro.memcached.lru import MRUList


def make_item(key: str, ts: float = 0.0) -> Item:
    return Item(key, None, 10, ts)


class TestBasicOperations:
    def test_empty_list(self):
        lst = MRUList()
        assert len(lst) == 0
        assert not lst
        assert lst.head is None
        assert lst.tail is None
        assert lst.pop_back() is None
        assert lst.median() is None

    def test_push_front_orders_mru(self):
        lst = MRUList()
        a, b, c = make_item("a"), make_item("b"), make_item("c")
        lst.push_front(a)
        lst.push_front(b)
        lst.push_front(c)
        assert [i.key for i in lst] == ["c", "b", "a"]
        assert lst.head is c
        assert lst.tail is a
        assert len(lst) == 3

    def test_pop_back_removes_lru(self):
        lst = MRUList()
        for key in "abc":
            lst.push_front(make_item(key))
        assert lst.pop_back().key == "a"
        assert lst.pop_back().key == "b"
        assert lst.pop_back().key == "c"
        assert lst.pop_back() is None

    def test_move_to_front(self):
        lst = MRUList()
        items = {key: make_item(key) for key in "abc"}
        for key in "abc":
            lst.push_front(items[key])
        lst.move_to_front(items["a"])
        assert [i.key for i in lst] == ["a", "c", "b"]

    def test_move_to_front_of_head_is_noop(self):
        lst = MRUList()
        a = make_item("a")
        lst.push_front(a)
        lst.move_to_front(a)
        assert [i.key for i in lst] == ["a"]

    def test_remove_middle(self):
        lst = MRUList()
        items = {key: make_item(key) for key in "abc"}
        for key in "abc":
            lst.push_front(items[key])
        lst.remove(items["b"])
        assert [i.key for i in lst] == ["c", "a"]
        lst.check_invariants()

    def test_remove_only_element(self):
        lst = MRUList()
        a = make_item("a")
        lst.push_front(a)
        lst.remove(a)
        assert len(lst) == 0
        assert lst.head is None and lst.tail is None

    def test_iter_lru_reverses(self):
        lst = MRUList()
        for key in "abc":
            lst.push_front(make_item(key))
        assert [i.key for i in lst.iter_lru()] == ["a", "b", "c"]

    def test_timestamps_dump(self):
        lst = MRUList()
        for i, key in enumerate("abc"):
            lst.push_front(make_item(key, float(i)))
        assert lst.timestamps() == [2.0, 1.0, 0.0]


class TestInsertBefore:
    def test_insert_before_none_appends(self):
        lst = MRUList()
        lst.push_front(make_item("a"))
        b = make_item("b")
        lst.insert_before(None, b)
        assert [i.key for i in lst] == ["a", "b"]
        assert lst.tail is b

    def test_insert_before_head(self):
        lst = MRUList()
        a = make_item("a")
        lst.push_front(a)
        b = make_item("b")
        lst.insert_before(a, b)
        assert [i.key for i in lst] == ["b", "a"]
        assert lst.head is b

    def test_insert_before_middle(self):
        lst = MRUList()
        items = {key: make_item(key) for key in "ab"}
        lst.push_front(items["a"])
        lst.push_front(items["b"])  # order: b, a
        c = make_item("c")
        lst.insert_before(items["a"], c)
        assert [i.key for i in lst] == ["b", "c", "a"]
        lst.check_invariants()

    def test_insert_before_none_into_empty(self):
        lst = MRUList()
        a = make_item("a")
        lst.insert_before(None, a)
        assert [i.key for i in lst] == ["a"]
        assert lst.head is a and lst.tail is a


class TestMedian:
    def test_median_odd(self):
        lst = MRUList()
        for key in "abcde":
            lst.push_front(make_item(key))
        # MRU order: e d c b a; index len//2 = 2 -> "c"
        assert lst.median().key == "c"

    def test_median_even(self):
        lst = MRUList()
        for key in "abcd":
            lst.push_front(make_item(key))
        # MRU order: d c b a; index 2 -> "b"
        assert lst.median().key == "b"

    def test_median_single(self):
        lst = MRUList()
        a = make_item("a")
        lst.push_front(a)
        assert lst.median() is a


@given(
    st.lists(
        st.tuples(st.sampled_from("pmr"), st.integers(0, 9)),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_random_ops_match_model(ops):
    """The intrusive list behaves like a plain Python list model."""
    lst = MRUList()
    model: list[str] = []  # head-first
    items: dict[str, Item] = {}
    counter = 0
    for op, arg in ops:
        if op == "p":
            key = f"k{counter}"
            counter += 1
            item = make_item(key)
            items[key] = item
            lst.push_front(item)
            model.insert(0, key)
        elif op == "m" and model:
            key = model[arg % len(model)]
            lst.move_to_front(items[key])
            model.remove(key)
            model.insert(0, key)
        elif op == "r" and model:
            key = model[arg % len(model)]
            lst.remove(items[key])
            model.remove(key)
        assert [i.key for i in lst] == model
        lst.check_invariants()
