"""Multi-process cluster tests: lifecycle, crashes, orphans, equivalence.

Everything here spawns real OS processes (the ``spawn`` start method, so
each child re-imports the package from scratch), which makes the tests
an order of magnitude slower than the in-process live tier.  They carry
the ``proc`` marker and run in their own CI job, outside tier 1:

    PYTHONPATH=src python -m pytest -m proc -q

The equivalence test is the headline: the *unmodified* Master runs a
three-phase scale-in where every byte crosses a process boundary, and
the surviving nodes' contents must still match the in-process twin
byte for byte.
"""

import os
import time

import pytest

from repro.errors import ConfigurationError, TransportError
from repro.memcached.slab import PAGE_SIZE
from repro.net import NodeClient, ProcessClusterHarness
from repro.net.livemigrate import run_live_migration
from repro.net.runtime import EventLoopThread

pytestmark = pytest.mark.proc

MEMORY = 8 * PAGE_SIZE


@pytest.fixture
def loop():
    with EventLoopThread(name="proc-test-client") as thread:
        yield thread


def process_gone(pid: int) -> bool:
    """True once ``pid`` no longer exists (reaped, not a zombie)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:  # someone else's recycled pid: ours is gone
        return True
    return False


def wait_for(predicate, timeout_s: float = 10.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestLifecycle:
    def test_spawn_readiness_and_wire_proof(self, loop):
        names = ["p0", "p1", "p2"]
        with ProcessClusterHarness(names, MEMORY) as harness:
            endpoints = harness.endpoints
            assert sorted(endpoints) == names
            # Distinct OS processes, each alive and distinct from us.
            pids = harness.pids
            assert len(set(pids.values())) == 3
            assert os.getpid() not in pids.values()
            for name in names:
                assert harness.is_alive(name)
            # Readiness is not just a pipe message: round-trip the
            # version command through every node's real listener.
            for name, (host, port) in endpoints.items():
                client = NodeClient(name, host, port)
                try:
                    assert "repro" in loop.call(client.version())
                finally:
                    loop.call(client.close())

    def test_endpoints_require_started_harness(self):
        harness = ProcessClusterHarness(["p0"], MEMORY)
        with pytest.raises(ConfigurationError):
            harness.endpoints

    def test_stop_is_graceful_and_idempotent(self):
        harness = ProcessClusterHarness(["p0", "p1"], MEMORY)
        harness.start()
        harness.stop()
        harness.stop()  # idempotent
        # SIGTERM drain exits 0 -- never escalated to SIGKILL.
        assert harness.exit_codes == {"p0": 0, "p1": 0}
        assert not harness.crash_events

    def test_stop_node_drains_one_without_crash_report(self):
        with ProcessClusterHarness(["p0", "p1", "p2"], MEMORY) as harness:
            pid = harness.pids["p1"]
            harness.stop_node("p1")
            assert wait_for(lambda: not harness.is_alive("p1"))
            assert process_gone(pid)
            # A requested stop is not a crash.
            time.sleep(3 * harness.poll_interval_s)
            assert not harness.crash_events
            assert harness.is_alive("p0") and harness.is_alive("p2")


class TestCrashDetection:
    def test_kill_node_is_reported_as_crash(self):
        seen = []
        with ProcessClusterHarness(
            ["p0", "p1", "p2"], MEMORY, on_crash=seen.append
        ) as harness:
            victim_pid = harness.pids["p1"]
            harness.kill_node("p1")
            assert wait_for(lambda: harness.crash_events)
            event = harness.crash_events[0]
            assert event.node == "p1"
            assert event.pid == victim_pid
            assert event.exitcode == -9
            assert event.restarted is False
            assert seen == [event]
            # The rest of the fleet is untouched.
            assert harness.is_alive("p0") and harness.is_alive("p2")

    def test_restart_crashed_heals_cold_on_same_port(self, loop):
        with ProcessClusterHarness(
            ["p0", "p1"], MEMORY, restart_crashed=True
        ) as harness:
            host, port = harness.endpoints["p1"]
            old_pid = harness.pids["p1"]
            client = NodeClient("p1", host, port)

            def cold_cache() -> bool:
                try:
                    return loop.call(client.get("k")) is None
                except TransportError:
                    return False  # listener not back yet; keep polling

            try:
                assert loop.call(client.set("k", b"payload"))
                harness.kill_node("p1")
                assert wait_for(
                    lambda: any(
                        e.restarted for e in harness.crash_events
                    )
                )
                assert wait_for(lambda: harness.is_alive("p1"))
                assert harness.pids["p1"] != old_pid
                # Same endpoint, new process, empty cache: shared-nothing
                # restarts are cold.
                assert harness.endpoints["p1"] == (host, port)
                assert wait_for(cold_cache)
            finally:
                loop.call(client.close())


class TestNoOrphans:
    def test_stop_reaps_every_child(self):
        harness = ProcessClusterHarness(["p0", "p1", "p2"], MEMORY)
        harness.start()
        pids = list(harness.pids.values())
        assert len(pids) == 3
        harness.stop()
        for pid in pids:
            assert process_gone(pid), f"orphaned child pid {pid}"

    def test_context_manager_exit_reaps_after_crash(self):
        with ProcessClusterHarness(["p0", "p1"], MEMORY) as harness:
            pids = list(harness.pids.values())
            harness.kill_node("p0")
            assert wait_for(lambda: harness.crash_events)
        for pid in pids:
            assert process_gone(pid), f"orphaned child pid {pid}"


class TestMigrationEquivalence:
    def test_three_phase_migration_matches_in_process_twin(self):
        result = run_live_migration(
            nodes=3,
            retire=1,
            items=400,
            value_bytes=48,
            seed=13,
            process_cluster=True,
            verify=True,
        )
        assert result.warm
        assert result.verified is True
        assert not result.mismatched_nodes
        assert result.items_exported == result.items_imported
        assert result.items_exported > 0
        assert len(result.membership_after) == 2

    def test_process_cluster_rejects_loop_instrumentation(self):
        # Fault injection and the sanitizer hook in-process servers;
        # composing them with child processes would silently no-op.
        with pytest.raises(ConfigurationError):
            run_live_migration(
                nodes=2, items=10, process_cluster=True, sanitize=True
            )
