"""Tests for the paper-literal Algorithm 1 rendition.

The printed pseudocode is approximate at window boundaries (see the
docstring of ``fuse_cache_algorithm1``); these tests pin down what it
*does* guarantee -- structurally valid pick counts that are close to the
exact top-n -- and document where it deviates from the corrected
:func:`fuse_cache`.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusecache import (
    fuse_cache,
    fuse_cache_algorithm1,
    selected_multiset,
)
from repro.errors import ConfigurationError

distinct_lists = st.lists(
    st.lists(st.floats(0, 1, allow_nan=False), max_size=25, unique=True).map(
        lambda lst: sorted(lst, reverse=True)
    ),
    min_size=1,
    max_size=5,
)


class TestStructure:
    def test_empty(self):
        assert fuse_cache_algorithm1([], 5) == []

    def test_n_zero(self):
        assert fuse_cache_algorithm1([[3.0, 1.0]], 0) == [0]

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_cache_algorithm1([[1.0]], -1)

    def test_overflow_takes_all(self):
        lists = [[3.0, 1.0], [2.0]]
        assert fuse_cache_algorithm1(lists, 99) == [2, 1]

    def test_terminates_under_ties(self):
        lists = [[1.0] * 20, [1.0] * 20]
        picks = fuse_cache_algorithm1(lists, 10)
        assert sum(picks) == 10

    @given(distinct_lists, st.integers(0, 100))
    @settings(max_examples=150, deadline=None)
    def test_pick_counts_always_valid(self, lists, n):
        picks = fuse_cache_algorithm1(lists, n)
        total = sum(len(lst) for lst in lists)
        assert sum(picks) == min(n, total)
        for pick, lst in zip(picks, lists):
            assert 0 <= pick <= len(lst)


class TestApproximation:
    @given(distinct_lists, st.integers(0, 100))
    @settings(max_examples=150, deadline=None)
    def test_close_to_exact_top_n(self, lists, n):
        """The printed algorithm's selection differs from the exact
        top-n by at most one boundary item per list per commit round --
        bounded here as a quarter of the selection (plus slack for tiny
        n).  Compared as multisets: a positional ``zip`` would let one
        extra boundary item shift every later element and count the
        whole tail as mismatched."""
        picks = fuse_cache_algorithm1(lists, n)
        selected = Counter(selected_multiset(lists, picks))
        exact = Counter(selected_multiset(lists, fuse_cache(lists, n)))
        mismatches = sum((selected - exact).values())
        total = sum(selected.values())
        assert mismatches <= max(2 * len(lists), total // 2)

    def test_exact_on_single_list(self):
        lst = [float(x) for x in range(50, 0, -1)]
        assert fuse_cache_algorithm1([lst], 20) == [20]

    def test_known_small_example(self):
        lists = [[9.0, 7.0, 5.0], [8.0, 6.0, 4.0, 2.0], [10.0, 3.0]]
        picks = fuse_cache_algorithm1(lists, 5)
        assert sum(picks) == 5
