"""Tests for the SHARDS sampling profiler."""

import numpy as np
import pytest

from repro.cache_analysis.mrc import HitRateCurve
from repro.cache_analysis.shards import ShardsProfiler
from repro.cache_analysis.stack_distance import stack_distances
from repro.errors import ConfigurationError


class TestBasics:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            ShardsProfiler(0.0, 100)
        with pytest.raises(ConfigurationError):
            ShardsProfiler(1.5, 100)

    def test_full_rate_matches_exact(self):
        trace = [f"k{i % 7}" for i in range(50)]
        shards = ShardsProfiler(1.0, len(trace))
        results = [shards.record(key) for key in trace]
        exact = list(stack_distances(trace))
        for got, want in zip(results, exact):
            if want < 0:
                assert got == float("inf")
            else:
                assert got == want

    def test_unsampled_keys_return_none(self):
        shards = ShardsProfiler(0.01, 1000)
        results = [shards.record(f"key{i}") for i in range(500)]
        assert results.count(None) > 400

    def test_sampling_is_by_key_not_by_request(self):
        shards = ShardsProfiler(0.3, 1000)
        key = "some-key"
        first = shards.record(key) is None
        for _ in range(5):
            assert (shards.record(key) is None) == first

    def test_effective_rate_near_nominal(self):
        shards = ShardsProfiler(0.2, 20_000)
        for i in range(10_000):
            shards.record(f"key{i}")
        assert shards.effective_rate == pytest.approx(0.2, abs=0.05)

    def test_counters(self):
        shards = ShardsProfiler(1.0, 10)
        shards.record("a")
        shards.record("a")
        assert shards.requests_seen == 2
        assert shards.sampled_requests == 2


class TestAccuracy:
    def test_curve_close_to_exact_on_zipf(self):
        rng = np.random.default_rng(11)
        ranks = np.arange(1, 2001)
        probabilities = 1.0 / ranks
        probabilities /= probabilities.sum()
        trace = [
            f"key{i}"
            for i in rng.choice(2000, size=40_000, p=probabilities)
        ]

        exact_curve = HitRateCurve.from_distances(
            float(d) if d >= 0 else float("inf")
            for d in stack_distances(trace)
        )
        shards = ShardsProfiler(0.1, 10_000)
        for key in trace:
            shards.record(key)
        approx_curve = HitRateCurve(*shards.histogram())

        for capacity in (50, 200, 800, 2000):
            exact = exact_curve.hit_rate(capacity)
            approx = approx_curve.hit_rate(capacity)
            assert abs(exact - approx) < 0.08, (
                f"capacity {capacity}: {exact:.3f} vs {approx:.3f}"
            )

    def test_distance_scaling(self):
        """A reuse over k sampled distinct keys estimates ~k/R distance."""
        shards = ShardsProfiler(0.5, 10_000)
        # Find sampled keys deterministically.
        sampled = [
            f"key{i}" for i in range(4000) if shards.is_sampled(f"key{i}")
        ][:50]
        for key in sampled:
            shards.record(key)
        distance = shards.record(sampled[0])
        # 49 sampled distinct keys between the reuses -> ~98 estimated.
        assert distance == pytest.approx(49 / 0.5)
