"""Fuzz tests for the text-protocol parser.

Random byte chunking and random command streams must never crash the
server, and every complete command must elicit a well-formed response.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memcached.node import MemcachedNode
from repro.memcached.protocol import TextProtocolServer
from repro.memcached.slab import PAGE_SIZE

KNOWN_REPLIES = (
    b"STORED",
    b"NOT_STORED",
    b"EXISTS",
    b"NOT_FOUND",
    b"DELETED",
    b"TOUCHED",
    b"OK",
    b"ERROR",
    b"CLIENT_ERROR",
    b"SERVER_ERROR",
    b"VALUE",
    b"END",
    b"VERSION",
    b"STAT",
    b"TS",
    b"IMPORTED",
)


def make_server() -> TextProtocolServer:
    node = MemcachedNode("fuzz", 4 * PAGE_SIZE)
    return TextProtocolServer(node, clock=lambda: 1.0)


keys = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Nd"), max_codepoint=127
    ),
    min_size=1,
    max_size=8,
)

command_lines = st.one_of(
    st.builds(lambda k: f"get {k}", keys),
    st.builds(lambda k: f"delete {k}", keys),
    st.builds(lambda k, d: f"incr {k} {d}", keys, st.integers(0, 100)),
    st.builds(lambda k, t: f"touch {k} {t}", keys, st.integers(0, 50)),
    st.builds(lambda c: f"ts_dump {c}", st.integers(-2, 60)),
    st.builds(
        lambda m, c: f"batch_import {m} {c}",
        st.sampled_from(["merge", "prepend", "fresh", "bogus"]),
        st.integers(-1, 3),
    ),
    st.just("stats"),
    st.just("version"),
    st.just("flush_all"),
    st.text(max_size=20).filter(lambda s: "\r" not in s and "\n" not in s),
)


@given(st.lists(command_lines, max_size=20))
@settings(max_examples=100, deadline=None)
def test_random_command_streams_never_crash(lines):
    server = make_server()
    wire = b"".join(line.encode("utf-8", "replace") + b"\r\n" for line in lines)
    response = server.feed(wire)
    assert isinstance(response, bytes)


@given(
    st.lists(
        st.tuples(keys, st.binary(min_size=0, max_size=40)), max_size=10
    ),
    st.integers(1, 7),
)
@settings(max_examples=100, deadline=None)
def test_chunked_storage_roundtrip(pairs, chunk_size):
    """set commands fed in arbitrary chunk sizes still store correctly."""
    server = make_server()
    wire = b"".join(
        f"set {key} 0 0 {len(payload)}".encode() + b"\r\n" + payload + b"\r\n"
        for key, payload in pairs
    )
    responses = b""
    for start in range(0, len(wire), chunk_size):
        responses += server.feed(wire[start : start + chunk_size])
    assert responses.count(b"STORED\r\n") == len(pairs)
    # Every stored key is retrievable with its exact payload.
    for key, payload in dict(pairs).items():
        out = server.execute(f"get {key}")
        assert payload in out


@given(st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_arbitrary_bytes_never_crash(blob):
    server = make_server()
    response = server.feed(blob)
    assert isinstance(response, bytes)


@given(st.lists(command_lines, min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_responses_start_with_known_tokens(lines):
    server = make_server()
    for line in lines:
        out = server.execute(line)
        if not out:
            continue
        first = out.split(b"\r\n")[0]
        assert any(
            first.startswith(reply) for reply in KNOWN_REPLIES
        ), first


# ---------------------------------------------------------------------------
# ts_dump / batch_import (the migration wire commands added in PR 4)
# ---------------------------------------------------------------------------


def import_wire(mode: str, records) -> bytes:
    """Encode a batch_import exchange: header line + per-record frames."""
    wire = f"batch_import {mode} {len(records)}".encode() + b"\r\n"
    for key, last_access, payload in records:
        wire += f"{key} {last_access} {len(payload)}".encode() + b"\r\n"
        wire += payload + b"\r\n"
    return wire


import_records = st.lists(
    st.tuples(
        keys,
        st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
        st.binary(min_size=0, max_size=60),
    ),
    max_size=8,
    unique_by=lambda record: record[0],
)


@given(
    import_records,
    st.sampled_from(["merge", "prepend", "fresh"]),
    st.integers(1, 9),
)
@settings(max_examples=100, deadline=None)
def test_batch_import_roundtrip_any_chunking(records, mode, chunk_size):
    """Well-formed imports succeed whole, regardless of byte chunking."""
    server = make_server()
    wire = import_wire(mode, records)
    responses = b""
    for start in range(0, len(wire), chunk_size):
        responses += server.feed(wire[start : start + chunk_size])
    assert f"IMPORTED {len(records)}".encode() + b"\r\n" in responses
    for key, _, _ in records:
        assert server.node.contains(key)


@given(import_records.filter(lambda r: len(r) >= 1))
@settings(max_examples=50, deadline=None)
def test_batch_import_duplicate_keys_rejected_atomically(records):
    server = make_server()
    duplicated = records + [records[0]]
    wire = import_wire("merge", duplicated)
    out = server.feed(wire)
    assert b"CLIENT_ERROR duplicate key in batch" in out
    assert b"IMPORTED" not in out
    assert len(server.node) == 0  # nothing from the batch was installed


def test_batch_import_empty_batch():
    server = make_server()
    assert server.execute("batch_import merge 0") == b"IMPORTED 0\r\n"
    assert len(server.node) == 0


def test_batch_import_rejects_bad_mode_and_count():
    server = make_server()
    assert b"CLIENT_ERROR" in server.execute("batch_import sideways 2")
    assert b"CLIENT_ERROR" in server.execute("batch_import merge -3")
    assert b"CLIENT_ERROR" in server.execute("batch_import merge many")
    assert b"CLIENT_ERROR" in server.execute("batch_import merge")
    # None of the malformed headers left the parser in import mode.
    assert server.execute("version").startswith(b"VERSION")


@given(st.integers(-5, -1))
@settings(max_examples=20, deadline=None)
def test_batch_import_malformed_item_size_aborts(bad_size):
    server = make_server()
    wire = b"batch_import merge 2\r\n"
    wire += f"alpha 1.0 {bad_size}".encode() + b"\r\n"
    out = server.feed(wire)
    assert b"CLIENT_ERROR bad item header" in out
    assert len(server.node) == 0
    assert server.execute("version").startswith(b"VERSION")


def test_batch_import_bad_data_trailer_aborts():
    server = make_server()
    wire = b"batch_import merge 1\r\n" + b"alpha 1.0 4\r\n" + b"abcdXY"
    out = server.feed(wire)
    assert b"CLIENT_ERROR bad data chunk" in out
    assert len(server.node) == 0


@given(st.lists(st.tuples(keys, st.binary(max_size=30)), max_size=6))
@settings(max_examples=50, deadline=None)
def test_ts_dump_reflects_stored_items(pairs):
    server = make_server()
    for key, payload in dict(pairs).items():
        server.execute(f"set {key} 0 0 {len(payload)}", payload)
    seen = set()
    for class_id in range(len(server.node.slabs.classes)):
        out = server.execute(f"ts_dump {class_id}")
        assert out.endswith(b"END\r\n")
        for line in out.splitlines():
            if line.startswith(b"TS "):
                seen.add(line.split()[1].decode())
    assert seen == set(dict(pairs))


def test_ts_dump_rejects_bad_class():
    server = make_server()
    assert b"CLIENT_ERROR" in server.execute("ts_dump -1")
    assert b"CLIENT_ERROR" in server.execute("ts_dump 9999")
    assert b"CLIENT_ERROR" in server.execute("ts_dump about")
    assert b"CLIENT_ERROR" in server.execute("ts_dump")


# ---------------------------------------------------------------------------
# trace framing (the cross-process propagation prefix)
# ---------------------------------------------------------------------------


hex_ids = st.text(alphabet="0123456789abcdef", min_size=1, max_size=32)
span_ids = st.text(alphabet="0123456789abcdef", min_size=1, max_size=16)


# batch_import opens a multi-line exchange whose continuation lines are
# data, not commands -- a trace frame is only recognised at command
# position, so the transparency property holds per *command*, not per
# wire line.
single_line_commands = command_lines.filter(
    lambda line: not line.startswith("batch_import")
)


@given(
    hex_ids, span_ids, st.lists(single_line_commands, min_size=1, max_size=6)
)
@settings(max_examples=80, deadline=None)
def test_trace_prefix_is_response_transparent(trace_id, span_id, lines):
    """A valid trace frame must never change what the command answers."""
    plain = make_server()
    framed = make_server()
    for line in lines:
        expected = plain.execute(line)
        wire = (
            f"trace {trace_id} {span_id}".encode()
            + b"\r\n"
            + line.encode("utf-8", "replace")
            + b"\r\n"
        )
        assert framed.feed(wire) == expected


@given(
    hex_ids,
    span_ids,
    st.lists(st.tuples(keys, st.binary(max_size=30)), min_size=1, max_size=4),
    st.integers(1, 7),
)
@settings(max_examples=60, deadline=None)
def test_trace_frame_survives_any_chunking(
    trace_id, span_id, pairs, chunk_size
):
    """Chunk-split trace frames + storage commands still store cleanly."""
    server = make_server()
    wire = b"".join(
        f"trace {trace_id} {span_id}".encode()
        + b"\r\n"
        + f"set {key} 0 0 {len(payload)}".encode()
        + b"\r\n"
        + payload
        + b"\r\n"
        for key, payload in pairs
    )
    responses = b""
    for start in range(0, len(wire), chunk_size):
        responses += server.feed(wire[start : start + chunk_size])
    assert responses.count(b"STORED\r\n") == len(pairs)
    for key, payload in dict(pairs).items():
        assert payload in server.execute(f"get {key}")


bad_trace_lines = st.one_of(
    st.just("trace"),
    st.just("trace abc"),
    st.just("trace abc def ghi"),
    st.builds(lambda t: f"trace {t} ab", st.text(max_size=8).filter(
        lambda s: (
            s
            and "\r" not in s
            and "\n" not in s
            and " " not in s
            and not all(c in "0123456789abcdef" for c in s)
        )
    )),
    # Oversized ids: one past the 32/16-char caps.
    st.just("trace " + "a" * 33 + " ab"),
    st.just("trace ab " + "b" * 17),
    # Uppercase hex is rejected; the wire format is lowercase-only.
    st.just("trace DEADBEEF ab"),
)


@given(bad_trace_lines, st.lists(command_lines, max_size=4))
@settings(max_examples=80, deadline=None)
def test_malformed_trace_frames_rejected_deterministically(bad, lines):
    """A bad frame answers CLIENT_ERROR and never wedges the parser."""
    server = make_server()
    out = server.execute(bad)
    assert out.startswith(b"CLIENT_ERROR bad trace frame"), (bad, out)
    # The connection keeps serving; no stale context survives.
    assert server.execute("version").startswith(b"VERSION")
    for line in lines:
        reply = server.execute(line)
        if reply:
            first = reply.split(b"\r\n")[0]
            assert any(first.startswith(r) for r in KNOWN_REPLIES), first


def test_trace_frame_applies_to_exactly_one_command():
    """The context covers only the next command, then clears."""
    from repro.obs import create_telemetry
    from repro.memcached.node import MemcachedNode

    telemetry = create_telemetry("fuzz", live_trace=True)
    node = MemcachedNode("fuzz", 4 * PAGE_SIZE)
    server = TextProtocolServer(node, clock=lambda: 1.0, telemetry=telemetry)
    out = server.feed(
        b"trace abcd1234 ef01\r\n"
        b"set k 0 0 1\r\nv\r\n"
        b"get k\r\n"
    )
    assert b"STORED" in out and b"VALUE k" in out
    spans = telemetry.live.spans
    assert [s.name for s in spans] == ["server.set"]
    assert spans[0].trace_id == "abcd1234"
    assert spans[0].parent_id == "ef01"


def test_consecutive_trace_frames_latest_wins():
    """A trace frame replaces any unconsumed predecessor."""
    from repro.obs import create_telemetry
    from repro.memcached.node import MemcachedNode

    telemetry = create_telemetry("fuzz", live_trace=True)
    node = MemcachedNode("fuzz", 4 * PAGE_SIZE)
    server = TextProtocolServer(node, clock=lambda: 1.0, telemetry=telemetry)
    out = server.feed(
        b"trace aaaa 01\r\ntrace bbbb 02\r\nget missing\r\n"
    )
    assert out == b"END\r\n"
    assert [s.trace_id for s in telemetry.live.spans] == ["bbbb"]
