"""Fuzz tests for the text-protocol parser.

Random byte chunking and random command streams must never crash the
server, and every complete command must elicit a well-formed response.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memcached.node import MemcachedNode
from repro.memcached.protocol import TextProtocolServer
from repro.memcached.slab import PAGE_SIZE

KNOWN_REPLIES = (
    b"STORED",
    b"NOT_STORED",
    b"EXISTS",
    b"NOT_FOUND",
    b"DELETED",
    b"TOUCHED",
    b"OK",
    b"ERROR",
    b"CLIENT_ERROR",
    b"SERVER_ERROR",
    b"VALUE",
    b"END",
    b"VERSION",
    b"STAT",
)


def make_server() -> TextProtocolServer:
    node = MemcachedNode("fuzz", 4 * PAGE_SIZE)
    return TextProtocolServer(node, clock=lambda: 1.0)


keys = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Nd"), max_codepoint=127
    ),
    min_size=1,
    max_size=8,
)

command_lines = st.one_of(
    st.builds(lambda k: f"get {k}", keys),
    st.builds(lambda k: f"delete {k}", keys),
    st.builds(lambda k, d: f"incr {k} {d}", keys, st.integers(0, 100)),
    st.builds(lambda k, t: f"touch {k} {t}", keys, st.integers(0, 50)),
    st.just("stats"),
    st.just("version"),
    st.just("flush_all"),
    st.text(max_size=20).filter(lambda s: "\r" not in s and "\n" not in s),
)


@given(st.lists(command_lines, max_size=20))
@settings(max_examples=100, deadline=None)
def test_random_command_streams_never_crash(lines):
    server = make_server()
    wire = b"".join(line.encode("utf-8", "replace") + b"\r\n" for line in lines)
    response = server.feed(wire)
    assert isinstance(response, bytes)


@given(
    st.lists(
        st.tuples(keys, st.binary(min_size=0, max_size=40)), max_size=10
    ),
    st.integers(1, 7),
)
@settings(max_examples=100, deadline=None)
def test_chunked_storage_roundtrip(pairs, chunk_size):
    """set commands fed in arbitrary chunk sizes still store correctly."""
    server = make_server()
    wire = b"".join(
        f"set {key} 0 0 {len(payload)}".encode() + b"\r\n" + payload + b"\r\n"
        for key, payload in pairs
    )
    responses = b""
    for start in range(0, len(wire), chunk_size):
        responses += server.feed(wire[start : start + chunk_size])
    assert responses.count(b"STORED\r\n") == len(pairs)
    # Every stored key is retrievable with its exact payload.
    for key, payload in dict(pairs).items():
        out = server.execute(f"get {key}")
        assert payload in out


@given(st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_arbitrary_bytes_never_crash(blob):
    server = make_server()
    response = server.feed(blob)
    assert isinstance(response, bytes)


@given(st.lists(command_lines, min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_responses_start_with_known_tokens(lines):
    server = make_server()
    for line in lines:
        out = server.execute(line)
        if not out:
            continue
        first = out.split(b"\r\n")[0]
        assert any(
            first.startswith(reply) for reply in KNOWN_REPLIES
        ), first
