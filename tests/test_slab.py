"""Tests for the slab allocator."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.memcached.items import Item
from repro.memcached.slab import (
    PAGE_SIZE,
    SlabAllocator,
    size_class_table,
)


class TestSizeClassTable:
    def test_default_table_properties(self):
        sizes = size_class_table()
        assert sizes == sorted(sizes)
        assert len(sizes) == len(set(sizes))
        assert sizes[0] >= 96
        assert sizes[-1] == PAGE_SIZE

    def test_growth_factor_respected(self):
        sizes = size_class_table(min_chunk=100, growth_factor=2.0)
        for small, large in zip(sizes, sizes[1:-1]):
            assert large <= 2 * small + 8

    def test_alignment(self):
        for size in size_class_table():
            assert size % 8 == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            size_class_table(min_chunk=0)
        with pytest.raises(ConfigurationError):
            size_class_table(growth_factor=1.0)
        with pytest.raises(ConfigurationError):
            size_class_table(max_chunk=PAGE_SIZE * 2)


class TestSlabAllocator:
    def test_requires_one_page(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(PAGE_SIZE - 1)

    def test_class_for_size_picks_smallest_fit(self):
        allocator = SlabAllocator(4 * PAGE_SIZE)
        slab_class = allocator.class_for_size(100)
        assert slab_class.chunk_size >= 100
        index = slab_class.class_id
        if index > 0:
            assert allocator.classes[index - 1].chunk_size < 100

    def test_oversized_item_rejected(self):
        allocator = SlabAllocator(4 * PAGE_SIZE)
        with pytest.raises(CapacityError):
            allocator.class_for_size(PAGE_SIZE + 1)

    def test_page_assignment_on_demand(self):
        allocator = SlabAllocator(2 * PAGE_SIZE)
        slab_class = allocator.class_for_size(1000)
        assert slab_class.pages == 0
        assert allocator.try_allocate(slab_class)
        assert slab_class.pages == 1
        assert allocator.assigned_pages == 1
        assert allocator.free_pages == 1

    def test_allocation_fails_when_exhausted(self):
        allocator = SlabAllocator(PAGE_SIZE)
        slab_class = allocator.class_for_size(PAGE_SIZE // 2)
        # One page holds exactly chunks_per_page chunks.
        for _ in range(slab_class.chunks_per_page):
            assert allocator.try_allocate(slab_class)
        assert not allocator.try_allocate(slab_class)

    def test_release_returns_chunk(self):
        allocator = SlabAllocator(PAGE_SIZE)
        slab_class = allocator.class_for_size(PAGE_SIZE // 2)
        for _ in range(slab_class.chunks_per_page):
            allocator.try_allocate(slab_class)
        allocator.release(slab_class)
        assert allocator.try_allocate(slab_class)

    def test_release_on_empty_class_rejected(self):
        allocator = SlabAllocator(PAGE_SIZE)
        slab_class = allocator.classes[0]
        with pytest.raises(CapacityError):
            allocator.release(slab_class)

    def test_link_and_unlink_item(self):
        allocator = SlabAllocator(2 * PAGE_SIZE)
        item = Item("key", None, 200, 0.0)
        slab_class = allocator.link_item(item)
        assert slab_class is not None
        assert item.slab_class_id == slab_class.class_id
        assert len(slab_class.mru) == 1
        allocator.unlink_item(item)
        assert len(slab_class.mru) == 0
        assert slab_class.used_chunks == 0

    def test_page_fractions_sum_to_one(self):
        allocator = SlabAllocator(8 * PAGE_SIZE)
        for size in (100, 100, 5000, 60000):
            item = Item(f"k{size}", None, size, 0.0)
            assert allocator.link_item(item) is not None
        fractions = allocator.page_fractions()
        assert fractions
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_page_fractions_empty(self):
        allocator = SlabAllocator(PAGE_SIZE)
        assert allocator.page_fractions() == {}

    def test_used_bytes_counts_chunk_rounding(self):
        allocator = SlabAllocator(2 * PAGE_SIZE)
        item = Item("key", None, 100, 0.0)
        slab_class = allocator.link_item(item)
        assert allocator.used_bytes() == slab_class.chunk_size
        assert allocator.item_count() == 1
