"""Tests for the backing store and database latency model."""

import pytest

from repro.database.kvstore import BackingStore
from repro.database.latency import DatabaseTier, MM1LatencyModel
from repro.errors import ConfigurationError


class TestBackingStore:
    def test_put_get_roundtrip(self):
        store = BackingStore()
        store.put("k", "v", 128)
        assert store.get("k") == ("v", 128)
        assert store.reads == 1
        assert store.writes == 1

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            BackingStore().get("ghost")

    def test_from_sizes(self):
        store = BackingStore.from_sizes({"a": 10, "b": 20})
        assert len(store) == 2
        assert store.get("a") == (None, 10)

    def test_value_size_does_not_count_read(self):
        store = BackingStore.from_sizes({"a": 10})
        assert store.value_size("a") == 10
        assert store.reads == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BackingStore().put("k", "v", -1)

    def test_total_bytes(self):
        store = BackingStore.from_sizes({"ab": 10, "cd": 20})
        assert store.total_bytes() == 10 + 20 + 4

    def test_contains_and_keys(self):
        store = BackingStore.from_sizes({"a": 1})
        assert "a" in store
        assert "b" not in store
        assert list(store.keys()) == ["a"]


class TestMM1LatencyModel:
    def test_idle_latency_is_service_time(self):
        model = MM1LatencyModel(0.004)
        assert model.mean_latency(0.0) == pytest.approx(0.004)

    def test_latency_rises_with_utilisation(self):
        model = MM1LatencyModel(0.004)
        assert model.mean_latency(0.5) == pytest.approx(0.008)
        assert model.mean_latency(0.9) > model.mean_latency(0.5)

    def test_clamped_at_max_utilisation(self):
        model = MM1LatencyModel(0.004, max_utilisation=0.9)
        assert model.mean_latency(5.0) == model.mean_latency(0.9)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MM1LatencyModel(0.0)
        with pytest.raises(ConfigurationError):
            MM1LatencyModel(0.004, max_utilisation=1.0)


class TestDatabaseTier:
    def make_tier(self, capacity=100.0):
        store = BackingStore.from_sizes({"k": 10})
        return DatabaseTier(store, capacity_rps=capacity)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DatabaseTier(BackingStore(), capacity_rps=0.0)

    def test_get_reads_store(self):
        tier = self.make_tier()
        assert tier.get("k") == (None, 10)

    def test_latency_knee(self):
        """Latency rises abruptly once offered load crosses capacity."""
        tier = self.make_tier(capacity=100.0)
        below = tier.observe_second(50.0)
        tier.reset()
        near = tier.observe_second(95.0)
        tier.reset()
        above = tier.observe_second(200.0)
        assert below < near < above
        assert above > 5 * below

    def test_backlog_accumulates_and_drains(self):
        tier = self.make_tier(capacity=100.0)
        tier.observe_second(300.0)
        assert tier.backlog_requests == pytest.approx(200.0)
        assert tier.overloaded_seconds == 1
        tier.observe_second(0.0)
        assert tier.backlog_requests == pytest.approx(100.0)
        tier.observe_second(0.0)
        assert tier.backlog_requests == pytest.approx(0.0)

    def test_backlog_inflates_latency_of_later_seconds(self):
        tier = self.make_tier(capacity=100.0)
        tier.observe_second(500.0)
        during_drain = tier.observe_second(10.0)
        tier.reset()
        fresh = tier.observe_second(10.0)
        assert during_drain > fresh

    def test_negative_rate_rejected(self):
        tier = self.make_tier()
        with pytest.raises(ConfigurationError):
            tier.observe_second(-1.0)

    def test_reset(self):
        tier = self.make_tier()
        tier.observe_second(500.0)
        tier.reset()
        assert tier.backlog_requests == 0.0
        assert tier.seconds_observed == 0
        assert tier.overloaded_seconds == 0
