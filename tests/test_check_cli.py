"""The ``repro check`` subcommand and the strict-mode smoke runs."""

import json
from pathlib import Path

import pytest

from repro.check.strict import (
    strict_fault_sweep_report,
    strict_smoke_report,
)
from repro.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src" / "repro")


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for index in range(1, 9):
        assert f"REP00{index}" in out
    # The full catalogue includes the async and conformance packs.
    for index in range(1, 7):
        assert f"REP10{index}" in out
    for index in range(1, 6):
        assert f"REP20{index}" in out


def test_check_lint_only_passes_on_source_tree(capsys):
    assert main(["check", "--no-sim", SRC]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_check_fails_on_a_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def collect(into=[]):\n"
        "    try:\n"
        "        return into\n"
        "    except:\n"
        "        pass\n"
    )
    assert main(["check", "--no-sim", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP003" in out and "REP004" in out


def test_check_full_run_includes_invariant_smoke(capsys):
    assert main(["check", SRC]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out
    assert "invariants:" in out and "0 violation(s)" in out


def test_strict_smoke_runs_checks_and_migrations():
    report = strict_smoke_report()
    assert report["violations"] == 0
    assert report["migrations"] >= 1
    assert report["checks_run"] > 0


@pytest.mark.slow
def test_strict_fault_sweep_completes_without_violations():
    report = strict_fault_sweep_report()
    assert report["violations"] == 0
    assert report["checks_run"] > 0
    assert report["migrations"] >= 1


# ----------------------------------------------------------------------
# --async / --protocol / machine output
# ----------------------------------------------------------------------


def test_check_async_and_protocol_pass_on_source_tree(capsys):
    assert main(["check", "--async", "--protocol", "--no-sim", SRC]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out
    assert "protocol: client/server/proxy models agree" in out


def test_check_async_fails_on_a_blocking_coroutine(tmp_path, capsys):
    bad = tmp_path / "blocky.py"
    bad.write_text(
        "import time\n"
        "async def poll():\n"
        "    time.sleep(0.1)\n"
    )
    assert main(["check", "--async", "--no-sim", str(bad)]) == 1
    assert "REP101" in capsys.readouterr().out


def test_check_json_output_is_machine_readable(capsys):
    assert (
        main(
            ["check", "--async", "--protocol", "--no-sim", "--json", SRC]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["failed"] is False
    assert payload["lint"] == []
    assert payload["conformance"] == []


def test_check_sarif_and_annotations(tmp_path, capsys):
    bad = tmp_path / "blocky.py"
    bad.write_text(
        "import time\n"
        "async def poll():\n"
        "    time.sleep(0.1)\n"
    )
    sarif_path = tmp_path / "findings.sarif"
    assert (
        main(
            [
                "check",
                "--async",
                "--no-sim",
                "--sarif",
                str(sarif_path),
                "--annotate",
                str(bad),
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "::error file=" in out and "REP101" in out
    document = json.loads(sarif_path.read_text())
    assert document["version"] == "2.1.0"
    results = document["runs"][0]["results"]
    assert [result["ruleId"] for result in results] == ["REP101"]
    rule_ids = {
        rule["id"] for rule in document["runs"][0]["tool"]["driver"]["rules"]
    }
    assert "REP101" in rule_ids
