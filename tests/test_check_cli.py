"""The ``repro check`` subcommand and the strict-mode smoke runs."""

from pathlib import Path

import pytest

from repro.check.strict import (
    strict_fault_sweep_report,
    strict_smoke_report,
)
from repro.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src" / "repro")


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for index in range(1, 9):
        assert f"REP00{index}" in out


def test_check_lint_only_passes_on_source_tree(capsys):
    assert main(["check", "--no-sim", SRC]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_check_fails_on_a_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def collect(into=[]):\n"
        "    try:\n"
        "        return into\n"
        "    except:\n"
        "        pass\n"
    )
    assert main(["check", "--no-sim", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP003" in out and "REP004" in out


def test_check_full_run_includes_invariant_smoke(capsys):
    assert main(["check", SRC]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out
    assert "invariants:" in out and "0 violation(s)" in out


def test_strict_smoke_runs_checks_and_migrations():
    report = strict_smoke_report()
    assert report["violations"] == 0
    assert report["migrations"] >= 1
    assert report["checks_run"] > 0


@pytest.mark.slow
def test_strict_fault_sweep_completes_without_violations():
    report = strict_fault_sweep_report()
    assert report["violations"] == 0
    assert report["checks_run"] > 0
    assert report["migrations"] >= 1
