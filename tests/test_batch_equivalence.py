"""Batched fast paths must be bit-identical to the per-op paths.

The hot-path engine (PR 4) added ``get_many``/``set_many``/``delete_many``
to nodes and the cluster, a per-membership routing cache with
``lookup_many`` on both hash functions, and a ``batched_ops`` switch in the
simulator.  None of that is allowed to change *behavior*: same seed, same
ops, same interleaving must produce the same cache contents, the same
stats, the same eviction sequence, and the same telemetry -- whether the
ops ran one at a time or in batches.  These tests pin that contract.
"""

import json
import random

import pytest

from repro.errors import MembershipError, ReproError, RingMutationError
from repro.hashing.ketama import ConsistentHashRing
from repro.hashing.rendezvous import RendezvousHash
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MemcachedNode
from repro.memcached.slab import PAGE_SIZE
from repro.obs import create_telemetry
from repro.obs.export import write_jsonl
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.traces import make_trace

from tests.test_determinism import scrub


def node_snapshot(node: MemcachedNode) -> dict:
    """Everything observable about a node's cache state, stats included.

    ``dump_metadata`` walks every per-class MRU list front to back, so it
    captures item identity, recency *order*, and last-access timestamps.
    """
    stats = node.stats
    return {
        "metadata": node.dump_metadata(),
        "curr_items": node.curr_items,
        "used_bytes": node.used_bytes,
        "stats": (
            stats.get_hits,
            stats.get_misses,
            stats.sets,
            stats.deletes,
            stats.evictions,
            stats.expired,
            stats.too_large,
            stats.imported,
        ),
    }


def cluster_snapshot(cluster: MemcachedCluster) -> dict:
    return {name: node_snapshot(node) for name, node in cluster.nodes.items()}


def make_workload(seed: int, num_keys: int, ops: int):
    """A mixed randomized op tape: (op, key, value_size) triples."""
    rng = random.Random(seed)
    keys = [f"key-{i:06d}" for i in range(num_keys)]
    tape = []
    for _ in range(ops):
        op = rng.choices(("set", "get", "delete"), weights=(5, 4, 1))[0]
        key = rng.choice(keys)
        # A narrow size band keeps the items in a couple of slab classes,
        # so the node's pages fill and the tape exercises LRU eviction.
        tape.append((op, key, rng.randint(700, 1000)))
    return tape


class TestNodeBatchEquivalence:
    def run_serial(self, tape):
        node = MemcachedNode("serial", 2 * PAGE_SIZE)
        for tick, (op, key, size) in enumerate(tape):
            now = float(tick)
            if op == "set":
                node.set(key, f"v-{key}-{size}", size, now)
            elif op == "get":
                node.get(key, now)
            else:
                node.delete(key)
        return node

    def run_batched(self, tape, batch_size):
        """Replay the tape through the *_many APIs in same-op runs.

        Consecutive same-op entries are grouped (up to ``batch_size``)
        exactly as the tick loop batches its per-second requests; the
        timestamp handed to each batch matches the serial run's first
        member, mirroring how the simulator stamps a whole batch.
        """
        node = MemcachedNode("batched", 2 * PAGE_SIZE)
        index = 0
        while index < len(tape):
            op = tape[index][0]
            end = index
            while (
                end < len(tape)
                and end - index < batch_size
                and tape[end][0] == op
            ):
                end += 1
            chunk = tape[index:end]
            if op == "set":
                # Per-item timestamps match the serial run's per-op calls.
                for offset, (_, key, size) in enumerate(chunk):
                    node.set_many(
                        [(key, f"v-{key}-{size}", size)],
                        float(index + offset),
                    )
            elif op == "get":
                # A get batch shares one timestamp in the simulator; use
                # per-item stamps here so the tapes stay comparable.
                for offset, (_, key, _) in enumerate(chunk):
                    node.get_many([key], float(index + offset))
            else:
                node.delete_many([key for _, key, _ in chunk])
            index = end
        return node

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_same_tape_same_state(self, batch_size):
        tape = make_workload(seed=101, num_keys=4_000, ops=8_000)
        serial = self.run_serial(tape)
        batched = self.run_batched(tape, batch_size)
        assert serial.stats.evictions > 0, "tape must stress eviction"
        assert node_snapshot(serial) == node_snapshot(batched)

    def test_multikey_batches_match_per_op(self):
        """One big get_many/set_many call versus the per-op loop."""
        tape = make_workload(seed=55, num_keys=120, ops=800)
        serial = MemcachedNode("serial", 4 * PAGE_SIZE)
        batched = MemcachedNode("batched", 4 * PAGE_SIZE)
        entries = [
            (key, f"v{size}", size) for op, key, size in tape if op == "set"
        ]
        for key, value, size in entries:
            serial.set(key, value, size, 1.0)
        batched.set_many(entries, 1.0)
        probes = [key for _, key, _ in tape]
        expected = [serial.get(key, 2.0) for key in probes]
        assert batched.get_many(probes, 2.0) == expected
        assert node_snapshot(serial) == node_snapshot(batched)

    def test_empty_and_duplicate_batches(self):
        node = MemcachedNode("edge", 4 * PAGE_SIZE)
        assert node.get_many([], 1.0) == []
        assert node.set_many([], 1.0) == 0
        assert node.delete_many([]) == 0
        # Duplicate keys behave like sequential per-op calls: last set
        # wins, repeated gets both hit.
        node.set_many([("dup", "a", 10), ("dup", "b", 10)], 1.0)
        assert node.get("dup", 2.0) == "b"
        assert node.get_many(["dup", "dup"], 3.0) == ["b", "b"]
        assert node.delete_many(["dup", "dup"]) == 1


class TestClusterBatchEquivalence:
    def build(self, name: str) -> MemcachedCluster:
        return MemcachedCluster(
            [f"{name}-{i}" for i in range(3)],
            memory_per_node=2 * PAGE_SIZE,
            growth_factor=2.0,
        )

    def test_cluster_state_matches_per_op(self):
        tape = make_workload(seed=9, num_keys=400, ops=3_000)
        serial = self.build("n")
        batched = self.build("n")
        for tick, (op, key, size) in enumerate(tape):
            now = float(tick)
            if op == "set":
                serial.set(key, f"v{size}", size, now)
                batched.set_many([(key, f"v{size}", size)], now)
            elif op == "get":
                assert serial.get(key, now) == batched.get_many([key], now)[0]
            else:
                serial.delete(key)
                batched.delete_many([key])
        assert cluster_snapshot(serial) == cluster_snapshot(batched)

    def test_multiget_matches_get_loop(self):
        cluster = self.build("m")
        keys = [f"key-{i:05d}" for i in range(500)]
        cluster.set_many([(k, f"v-{k}", 80) for k in keys[::2]], 1.0)
        probe = random.Random(3).sample(keys, 200)
        hits, misses = cluster.multiget(probe, 2.0)
        reference = self.build("m")
        reference.set_many([(k, f"v-{k}", 80) for k in keys[::2]], 1.0)
        expected_hits = {}
        expected_misses = []
        for key in probe:
            value = reference.get(key, 2.0)
            if value is None:
                expected_misses.append(key)
            else:
                expected_hits[key] = value
        assert hits == expected_hits
        assert misses == expected_misses
        assert cluster_snapshot(cluster) == cluster_snapshot(reference)

    def test_route_many_matches_route(self):
        cluster = self.build("r")
        cluster.set_remap("key-000001", sorted(cluster.nodes)[0])
        keys = [f"key-{i:06d}" for i in range(2_000)]
        assert cluster.route_many(keys) == [cluster.route(k) for k in keys]


class TestRingCacheAgreement:
    """Cached routing must agree with the cold path across churn."""

    CHURN = (
        ("remove", "node-03"),
        ("add", "node-10"),
        ("remove", "node-00"),
        ("add", "node-11"),
        ("add", "node-03"),
    )

    @pytest.mark.parametrize("factory", [ConsistentHashRing, RendezvousHash])
    def test_cached_matches_uncached_across_churn(self, factory):
        ring = factory([f"node-{i:02d}" for i in range(8)])
        base_generation = ring.generation
        rng = random.Random(42)
        keys = [f"obj:{rng.getrandbits(48):012x}" for _ in range(10_000)]
        for step, (action, node) in enumerate((("noop", ""),) + self.CHURN):
            if action == "add":
                ring.add_node(node)
            elif action == "remove":
                ring.remove_node(node)
            owners = ring.lookup_many(keys)
            # Second pass is served from the warm cache; both passes must
            # match the from-scratch route for every key.
            assert ring.lookup_many(keys) == owners, f"step {step}"
            cold = [ring.uncached_lookup(key) for key in keys]
            assert owners == cold, f"step {step}"
        info = ring.cache_info()
        assert info["hits"] > len(keys)  # warm pass actually used the cache
        assert info["generation"] == base_generation + len(self.CHURN)

    @pytest.mark.parametrize("factory", [ConsistentHashRing, RendezvousHash])
    def test_lookup_many_matches_per_key(self, factory):
        ring = factory(["a", "b", "c", "d"])
        keys = [f"key-{i}" for i in range(3_000)]
        assert ring.lookup_many(keys) == [ring.node_for_key(k) for k in keys]


class TestRingMutationDetection:
    """Membership changes mid-batch must fail loudly, not mix routes."""

    @pytest.mark.parametrize("factory", [ConsistentHashRing, RendezvousHash])
    def test_generator_mutation_raises(self, factory):
        ring = factory(["a", "b", "c"])

        def poisoned():
            yield "key-1"
            yield "key-2"
            ring.remove_node("c")
            yield "key-3"

        with pytest.raises(RingMutationError):
            ring.lookup_many(poisoned())

    @pytest.mark.parametrize("factory", [ConsistentHashRing, RendezvousHash])
    def test_mutation_on_final_key_raises(self, factory):
        ring = factory(["a", "b", "c"])

        def poisoned():
            yield "key-1"
            ring.add_node("d")

        with pytest.raises(RingMutationError):
            ring.lookup_many(poisoned())

    def test_mutation_error_is_a_repro_error(self):
        assert issubclass(RingMutationError, ReproError)
        assert issubclass(RingMutationError, MembershipError)

    def test_iter_points_guards_against_mutation(self):
        ring = ConsistentHashRing(["a", "b"])
        iterator = ring.iter_points()
        next(iterator)
        ring.add_node("c")
        with pytest.raises(RingMutationError):
            next(iterator)

    @pytest.mark.parametrize("factory", [ConsistentHashRing, RendezvousHash])
    def test_clean_batches_unaffected(self, factory):
        ring = factory(["a", "b", "c"])
        keys = (f"key-{i}" for i in range(100))  # lazy but benign
        owners = ring.lookup_many(keys)
        assert len(owners) == 100
        assert set(owners) <= {"a", "b", "c"}


def run_experiment_once(tmp_path, tag: str, batched: bool):
    telemetry = create_telemetry()
    config = ExperimentConfig(
        trace=make_trace("sys", duration_s=120),
        policy="elmem",
        duration_s=120,
        num_keys=20_000,
        initial_nodes=5,
        schedule=[(50.0, 4)],
        seed=7,
        strict_checks=True,
        telemetry=telemetry,
        batched_ops=batched,
    )
    result = run_experiment(config)
    path = write_jsonl(
        tmp_path / f"{tag}.jsonl",
        tracer=telemetry.tracer,
        metrics=telemetry.metrics,
        meta={"seed": config.seed},
    )
    return result, path


@pytest.mark.slow
def test_experiment_batched_vs_serial_bit_identical(tmp_path):
    """The headline contract: flipping ``batched_ops`` changes nothing.

    Same config and seed, one run through the batched multiget/fill path
    and one through the historical per-key loops, compared down to the
    exported telemetry JSONL (wall-clock spans scrubbed, as in
    tests/test_determinism.py).  Strict mode keeps the invariant checker
    on throughout both runs.
    """
    batched, batched_path = run_experiment_once(tmp_path, "batched", True)
    serial, serial_path = run_experiment_once(tmp_path, "serial", False)

    assert batched.summary() == serial.summary()
    assert list(batched.metrics.hit_rates()) == list(serial.metrics.hit_rates())
    assert list(batched.metrics.p95_series_ms()) == list(
        serial.metrics.p95_series_ms()
    )
    assert batched.scaling_times == serial.scaling_times
    assert [r.outcome for r in batched.reports] == [
        r.outcome for r in serial.reports
    ]

    batched_lines = batched_path.read_text().splitlines()
    serial_lines = serial_path.read_text().splitlines()
    assert len(batched_lines) == len(serial_lines)
    for left, right in zip(batched_lines, serial_lines):
        assert scrub(json.loads(left)) == scrub(json.loads(right))
