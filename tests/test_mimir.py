"""Tests for the MIMIR approximate stack-distance profiler."""

import numpy as np
import pytest

from repro.cache_analysis.mimir import MimirProfiler
from repro.cache_analysis.mrc import HitRateCurve
from repro.cache_analysis.stack_distance import stack_distances
from repro.errors import ConfigurationError


class TestBasics:
    def test_needs_two_buckets(self):
        with pytest.raises(ConfigurationError):
            MimirProfiler(buckets=1)

    def test_first_access_is_cold(self):
        profiler = MimirProfiler(buckets=4)
        assert profiler.record("a") == float("inf")
        assert profiler.cold_misses == 1

    def test_immediate_reuse_has_small_distance(self):
        profiler = MimirProfiler(buckets=8)
        profiler.record("a")
        distance = profiler.record("a")
        assert distance < 2

    def test_tracked_keys(self):
        profiler = MimirProfiler(buckets=4)
        for key in ["a", "b", "a", "c"]:
            profiler.record(key)
        assert profiler.tracked_keys == 3
        assert profiler.requests_seen == 4

    def test_bucket_count_bounded(self):
        profiler = MimirProfiler(buckets=4)
        for i in range(500):
            profiler.record(f"k{i % 37}")
        assert len(profiler._bucket_counts) <= 4 + 1

    def test_histogram_shape(self):
        profiler = MimirProfiler(buckets=8)
        for key in ["a", "b", "a", "b", "c", "a"]:
            profiler.record(key)
        histogram, cold = profiler.histogram()
        assert cold == 3
        assert sum(histogram) == 3


class TestAccuracy:
    def test_reuse_after_k_distinct_keys(self):
        """Touching k distinct keys between reuses yields distance ~k."""
        profiler = MimirProfiler(buckets=64)
        # Establish the working set first.
        keys = [f"k{i}" for i in range(10)]
        for key in keys:
            profiler.record(key)
        distance = profiler.record("k0")  # 9 distinct keys since last use
        assert 4 <= distance <= 15

    def test_curve_close_to_exact_on_zipf(self):
        """MIMIR's hit-rate curve tracks the exact one within tolerance."""
        rng = np.random.default_rng(7)
        ranks = np.arange(1, 201)
        probabilities = 1.0 / ranks
        probabilities /= probabilities.sum()
        trace = [
            f"k{i}" for i in rng.choice(200, size=4000, p=probabilities)
        ]

        exact_curve = HitRateCurve.from_distances(stack_distances(trace))
        profiler = MimirProfiler(buckets=128)
        for key in trace:
            profiler.record(key)
        approx_curve = HitRateCurve(*profiler.histogram())

        for capacity in (10, 50, 100, 200):
            exact = exact_curve.hit_rate(capacity)
            approx = approx_curve.hit_rate(capacity)
            assert abs(exact - approx) < 0.12, (
                f"capacity {capacity}: exact {exact:.3f} vs "
                f"approx {approx:.3f}"
            )
