"""Control-plane tests: engine hysteresis and the admin API.

The :class:`~repro.core.autoscaler.ScalingEngine` tests drive the
decision loop with scripted decision streams (a stub scaler) and with a
real AutoScaler fed identical samples along both the sim and live entry
points, asserting decision parity.  The admin-API tests run a real
:class:`~repro.controlplane.daemon.ControlPlane` over an in-process
:class:`~repro.memcached.cluster.MemcachedCluster` -- the only sockets
involved are the admin server's HTTP ones -- in ``auto_poll=False``
mode, so command execution happens exactly when the test calls
``step()``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.controlplane import ControlPlane, ControlPlaneConfig
from repro.core.autoscaler import (
    AutoScaler,
    AutoScalerConfig,
    EngineTick,
    ScalingDecision,
    ScalingEngine,
    ScalingEngineConfig,
)
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.obs import create_telemetry

MEMORY = 8 * PAGE_SIZE


class _StubScaler:
    """Replays a scripted list of node deltas as ScalingDecisions."""

    def __init__(self, deltas):
        self.deltas = list(deltas)
        self.calls = 0
        self.window_fill = 10_000

    def decide(self, request_rate, current_nodes, now=0.0):
        delta = self.deltas[self.calls % len(self.deltas)]
        self.calls += 1
        return ScalingDecision(
            target_nodes=current_nodes + delta,
            current_nodes=current_nodes,
            p_min=0.5,
            required_bytes=1 << 20,
            request_rate=request_rate,
        )

    def observe(self, key):
        pass

    def observe_many(self, keys):
        pass


def _engine(deltas, **config):
    return ScalingEngine(_StubScaler(deltas), ScalingEngineConfig(**config))


class TestScalingEngineGating:
    def test_interval_gates_evaluations(self):
        engine = _engine([-1], evaluate_interval_s=10.0, min_window=0)
        assert engine.evaluate(100.0, 4, now=0.0) is not None
        assert engine.evaluate(100.0, 4, now=5.0) is None
        assert engine.evaluate(100.0, 4, now=10.0) is not None

    def test_busy_skips_without_consuming_the_interval(self):
        engine = _engine([-1], evaluate_interval_s=10.0, min_window=0)
        assert engine.evaluate(100.0, 4, now=0.0, busy=True) is None
        # The busy skip must not count as an evaluation: the very next
        # non-busy call still evaluates.
        assert engine.evaluate(100.0, 4, now=0.1) is not None

    def test_window_fill_gates_evaluations(self):
        engine = ScalingEngine(
            AutoScaler(
                AutoScalerConfig(
                    db_capacity_rps=1000.0,
                    node_memory_bytes=MEMORY,
                    bytes_per_item=128.0,
                )
            ),
            ScalingEngineConfig(evaluate_interval_s=1.0, min_window=100),
        )
        assert engine.evaluate(100.0, 4, now=0.0) is None
        engine.observe_many([f"k{i}" for i in range(100)])
        assert engine.window_fill == 100
        assert engine.evaluate(100.0, 4, now=0.0) is not None


class TestScalingEngineHysteresis:
    def test_acts_after_exactly_confirm_rounds(self):
        engine = _engine(
            [-1], evaluate_interval_s=1.0, min_window=0, confirm_rounds=3
        )
        verdicts = [
            engine.evaluate(100.0, 4, now=float(t)).act for t in range(4)
        ]
        # Two confirmations, the action, then the streak restarts.
        assert verdicts == [False, False, True, False]
        assert engine.actions == 1
        held = [t.held_reason for t in engine.history if not t.act]
        assert any("confirming" in reason for reason in held)

    def test_oscillating_decisions_never_act(self):
        # Scale-in, scale-out, scale-in, ... -- the direction never
        # holds for two consecutive rounds, so a confirm_rounds=2
        # engine must refuse to flap the tier.
        engine = _engine(
            [-1, +1], evaluate_interval_s=1.0, min_window=0, confirm_rounds=2
        )
        for t in range(20):
            tick = engine.evaluate(100.0, 4, now=float(t))
            assert tick is not None
            assert not tick.act
        assert engine.actions == 0

    def test_cooldown_suppresses_followup_actions(self):
        engine = _engine(
            [-1],
            evaluate_interval_s=1.0,
            min_window=0,
            confirm_rounds=1,
            cooldown_s=100.0,
        )
        assert engine.evaluate(100.0, 4, now=0.0).act
        for t in range(1, 50):
            tick = engine.evaluate(100.0, 4, now=float(t))
            assert not tick.act
            assert "cooldown" in tick.held_reason
        assert engine.evaluate(100.0, 4, now=101.0).act

    def test_hold_resets_the_streak(self):
        engine = _engine(
            [-1, 0, -1], evaluate_interval_s=1.0, min_window=0,
            confirm_rounds=2,
        )
        first = engine.evaluate(100.0, 4, now=0.0)
        hold = engine.evaluate(100.0, 4, now=1.0)
        third = engine.evaluate(100.0, 4, now=2.0)
        assert not first.act and "confirming" in first.held_reason
        assert not hold.act and hold.held_reason == "hold"
        assert not third.act  # streak restarted at 1, not 2


class TestSimLiveParity:
    def test_same_samples_same_decisions(self):
        # The sim feeds keys one at a time; the live path batches them
        # through observe_many.  Identical samples and rates must yield
        # identical (target, act) sequences from either entry point.
        def build():
            return ScalingEngine(
                AutoScaler(
                    AutoScalerConfig(
                        db_capacity_rps=5000.0,
                        node_memory_bytes=MEMORY,
                        bytes_per_item=128.0,
                        min_nodes=2,
                        max_nodes=8,
                    )
                ),
                ScalingEngineConfig(
                    evaluate_interval_s=1.0,
                    min_window=500,
                    confirm_rounds=2,
                ),
            )

        keys = [f"key-{i % 400}" for i in range(2000)]
        sim, live = build(), build()
        sim_ticks: list[EngineTick] = []
        live_ticks: list[EngineTick] = []
        for round_index in range(4):
            chunk = keys[round_index * 500 : (round_index + 1) * 500]
            for key in chunk:
                sim.observe(key)
            live.observe_many(chunk)
            now = float(round_index)
            sim_tick = sim.evaluate(450.0, 4, now=now)
            live_tick = live.evaluate(450.0, 4, now=now)
            assert (sim_tick is None) == (live_tick is None)
            if sim_tick is not None:
                sim_ticks.append(sim_tick)
                live_ticks.append(live_tick)
        assert sim_ticks, "no evaluation happened"
        assert [
            (t.decision.target_nodes, t.act) for t in sim_ticks
        ] == [(t.decision.target_nodes, t.act) for t in live_ticks]


@pytest.fixture
def control():
    cluster = MemcachedCluster(
        ["node-a", "node-b", "node-c", "node-d"], MEMORY
    )
    for index in range(200):
        cluster.set(f"key-{index}", b"x" * 32, 32, now=0.0)
    plane = ControlPlane(
        cluster,
        # Deltas of 0: the engine always holds, so only admin commands
        # (the surface under test) can change the tier.
        _engine([0], evaluate_interval_s=1.0, min_window=0),
        config=ControlPlaneConfig(poll_interval_s=0.1),
        telemetry=create_telemetry("controlplane-test"),
    )
    plane.start(auto_poll=False)
    try:
        yield plane
    finally:
        plane.stop()


def _request(plane, method, path, body=None):
    host, port = plane.admin_endpoint
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read()


class TestAdminApi:
    def test_status_round_trip(self, control):
        status, body = _request(control, "GET", "/status")
        assert status == 200
        payload = json.loads(body)
        assert payload["members"] == [
            "node-a", "node-b", "node-c", "node-d",
        ]
        assert payload["migrating"] is False
        assert payload["engine"]["actions"] == 0

    def test_metrics_round_trip(self, control):
        control.step()
        status, body = _request(control, "GET", "/metrics")
        assert status == 200
        assert b"controlplane_polls_total" in body

    def test_scale_round_trip(self, control):
        status, body = _request(
            control, "POST", "/scale", json.dumps({"target": 3}).encode()
        )
        assert status == 202
        assert json.loads(body) == {"accepted": True, "target": 3}
        control.step()
        assert len(control.cluster.active_members) == 3
        assert control.migrations[0]["action"] == "scale_in"
        assert control.migrations[0]["source"] == "admin"
        assert control.migrations[0]["outcome"] == "warm"

    def test_drain_round_trip(self, control):
        status, _ = _request(control, "POST", "/drain/node-b")
        assert status == 202
        control.step()
        assert "node-b" not in control.cluster.active_members
        assert control.migrations[0]["changed"] == ["node-b"]

    def test_drain_unknown_node_is_404(self, control):
        status, _ = _request(control, "POST", "/drain/nope")
        assert status == 404

    def test_concurrent_scale_refused(self, control):
        first, _ = _request(
            control, "POST", "/scale", json.dumps({"target": 3}).encode()
        )
        second, body = _request(
            control, "POST", "/scale", json.dumps({"target": 2}).encode()
        )
        assert first == 202
        assert second == 409
        assert b"in flight" in body
        control.step()  # only the first command executes
        assert len(control.cluster.active_members) == 3
        assert len(control.migrations) == 1

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[]",
            b"{}",
            json.dumps({"target": "three"}).encode(),
            json.dumps({"target": True}).encode(),
            json.dumps({"target": 0}).encode(),
            json.dumps({"target": 99}).encode(),
        ],
    )
    def test_malformed_scale_bodies_rejected(self, control, body):
        status, _ = _request(control, "POST", "/scale", body)
        assert status == 400
        control.step()
        assert len(control.cluster.active_members) == 4
        assert not control.migrations

    def test_wrong_method_is_405(self, control):
        status, _ = _request(control, "POST", "/status", b"{}")
        assert status == 405
        status, _ = _request(control, "GET", "/scale")
        assert status == 405

    def test_unknown_route_is_404(self, control):
        status, _ = _request(control, "GET", "/nothing")
        assert status == 404

    def test_step_polls_counters_and_rate(self, control):
        control.step()
        for index in range(300):
            control.cluster.get(f"key-{index % 200}", now=1.0)
        control.step()
        payload = json.loads(_request(control, "GET", "/status")[1])
        assert payload["polls"] == 2
        assert payload["poll_failures"] == 0
