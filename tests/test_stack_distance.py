"""Tests for exact stack-distance computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache_analysis.stack_distance import (
    INFINITE,
    StackDistanceProfiler,
    distance_histogram,
    naive_stack_distances,
    stack_distances,
)


class TestExactDistances:
    def test_first_access_is_infinite(self):
        assert list(stack_distances(["a"])) == [INFINITE]

    def test_immediate_reuse_is_zero(self):
        assert list(stack_distances(["a", "a"])) == [INFINITE, 0]

    def test_classic_sequence(self):
        trace = ["a", "b", "c", "a"]
        # 'a' is re-touched after distinct keys b, c -> distance 2.
        assert list(stack_distances(trace)) == [
            INFINITE,
            INFINITE,
            INFINITE,
            2,
        ]

    def test_repeated_interleaving(self):
        trace = ["a", "b", "a", "b"]
        assert list(stack_distances(trace)) == [INFINITE, INFINITE, 1, 1]

    def test_duplicates_between_do_not_count(self):
        trace = ["a", "b", "b", "b", "a"]
        # Only one distinct key (b) between the two accesses of a.
        assert list(stack_distances(trace))[-1] == 1

    def test_profiler_capacity_enforced(self):
        profiler = StackDistanceProfiler(2)
        profiler.record("a")
        profiler.record("b")
        with pytest.raises(OverflowError):
            profiler.record("c")

    def test_profiler_counters(self):
        profiler = StackDistanceProfiler(10)
        for key in ["a", "b", "a"]:
            profiler.record(key)
        assert profiler.requests_seen == 3
        assert profiler.unique_keys == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(0)

    @given(
        st.lists(st.integers(min_value=0, max_value=12), max_size=120)
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_naive_reference(self, indices):
        trace = [f"k{i}" for i in indices]
        fast = list(stack_distances(trace))
        slow = list(naive_stack_distances(trace))
        assert fast == slow


class TestHistogram:
    def test_histogram_and_cold(self):
        distances = [INFINITE, 0, 0, 2, INFINITE]
        histogram, cold = distance_histogram(distances)
        assert cold == 2
        assert histogram == [2, 0, 1]

    def test_histogram_clamps_to_max(self):
        histogram, cold = distance_histogram([5, 9], max_distance=6)
        assert cold == 0
        assert histogram[5] == 1
        assert histogram[6] == 1

    def test_empty_histogram(self):
        histogram, cold = distance_histogram([])
        assert histogram == []
        assert cold == 0


class TestHitRateSemantics:
    def test_distances_predict_lru_hits(self):
        """Stack distance < C iff an LRU cache of size C hits -- checked
        against a direct LRU simulation."""
        import random

        rng = random.Random(42)
        trace = [f"k{rng.randint(0, 20)}" for _ in range(500)]
        distances = list(stack_distances(trace))
        for capacity in (1, 3, 8):
            # Direct LRU simulation.
            stack: list[str] = []
            hits = 0
            for key in trace:
                if key in stack:
                    position = stack.index(key)
                    if position < capacity:
                        hits += 1
                    stack.remove(key)
                stack.insert(0, key)
            predicted = sum(
                1 for d in distances if d != INFINITE and d < capacity
            )
            assert predicted == hits
