"""Tests for the Memcached node model."""

import pytest

from repro.memcached.node import MemcachedNode, MigratedItem
from repro.memcached.slab import PAGE_SIZE

from tests.conftest import fill_node


class TestGetSetDelete:
    def test_miss_returns_none(self, small_node):
        assert small_node.get("missing", 1.0) is None
        assert small_node.stats.get_misses == 1

    def test_set_then_get(self, small_node):
        assert small_node.set("k", "v", 100, 1.0)
        assert small_node.get("k", 2.0) == "v"
        assert small_node.stats.get_hits == 1
        assert small_node.stats.sets == 1

    def test_get_refreshes_timestamp(self, small_node):
        small_node.set("k", "v", 100, 1.0)
        small_node.get("k", 5.0)
        assert small_node.peek("k").last_access == 5.0

    def test_set_overwrites(self, small_node):
        small_node.set("k", "v1", 100, 1.0)
        small_node.set("k", "v2", 100, 2.0)
        assert small_node.get("k", 3.0) == "v2"
        assert small_node.curr_items == 1

    def test_set_resize_moves_slab_class(self, small_node):
        small_node.set("k", "v", 50, 1.0)
        first_class = small_node.peek("k").slab_class_id
        small_node.set("k", "v", 5000, 2.0)
        second_class = small_node.peek("k").slab_class_id
        assert second_class > first_class
        assert small_node.curr_items == 1

    def test_delete(self, small_node):
        small_node.set("k", "v", 100, 1.0)
        assert small_node.delete("k")
        assert not small_node.delete("k")
        assert small_node.get("k", 2.0) is None
        assert small_node.stats.deletes == 1

    def test_contains_and_peek_have_no_side_effects(self, small_node):
        small_node.set("k", "v", 100, 1.0)
        assert small_node.contains("k")
        item = small_node.peek("k")
        assert item.last_access == 1.0
        assert small_node.stats.get_hits == 0

    def test_too_large_rejected(self, small_node):
        assert not small_node.set("big", "v", 2 * PAGE_SIZE, 1.0)
        assert small_node.stats.too_large == 1

    def test_flush_all(self, small_node):
        fill_node(small_node, 10)
        small_node.flush_all()
        assert small_node.curr_items == 0
        assert small_node.used_bytes == 0

    def test_hit_rate_stat(self, small_node):
        small_node.set("k", "v", 100, 1.0)
        small_node.get("k", 2.0)
        small_node.get("absent", 3.0)
        assert small_node.stats.hit_rate == pytest.approx(0.5)


class TestEviction:
    @staticmethod
    def _capacity(node: MemcachedNode, value_size: int, key: str) -> int:
        """Items of this size one page can hold."""
        total = len(key) + value_size + 56
        return node.slabs.class_for_size(total).chunks_per_page

    def test_eviction_is_coldest_first(self):
        node = MemcachedNode("n", PAGE_SIZE)
        size = 400
        capacity = self._capacity(node, size, "k000")
        for i in range(capacity + 3):
            node.set(f"k{i:03d}", i, size, float(i))
        assert node.stats.evictions == 3
        for i in range(3):
            assert not node.contains(f"k{i:03d}")  # coldest evicted
        for i in range(3, capacity + 3):
            assert node.contains(f"k{i:03d}")

    def test_get_protects_from_eviction(self):
        node = MemcachedNode("n", PAGE_SIZE)
        size = 400
        capacity = self._capacity(node, size, "k000")
        for i in range(capacity):
            node.set(f"k{i:03d}", i, size, float(i))
        node.get("k000", 1000.0)  # touch the coldest so k001 becomes LRU
        node.set("new", 1, size, 1001.0)
        assert node.contains("k000")
        assert not node.contains("k001")

    def test_capacity_stays_bounded(self, small_node):
        fill_node(small_node, 50_000, value_size=400)
        assert small_node.used_bytes <= small_node.memory_bytes
        assert small_node.stats.evictions > 0


class TestDumpAndImport:
    def test_dump_timestamps_mru_order(self, small_node):
        fill_node(small_node, 20, start_time=100.0)
        for class_id in small_node.active_class_ids():
            dump = small_node.dump_timestamps(class_id)
            timestamps = [ts for _, ts in dump]
            assert timestamps == sorted(timestamps, reverse=True)

    def test_dump_metadata_covers_all_items(self, small_node):
        keys = set(fill_node(small_node, 25))
        dumped = {
            key
            for entries in small_node.dump_metadata().values()
            for key, _ in entries
        }
        assert dumped == keys

    def test_export_skips_missing(self, small_node):
        fill_node(small_node, 5)
        exported = small_node.export_items(["k00000001", "ghost"])
        assert [e.key for e in exported] == ["k00000001"]

    def test_export_preserves_metadata(self, small_node):
        small_node.set("k", "value", 321, 42.0)
        record = small_node.export_items(["k"])[0]
        assert record.value == "value"
        assert record.value_size == 321
        assert record.last_access == 42.0
        assert record.transfer_bytes == len("k") + 321

    def test_batch_import_merge_keeps_sorted(self, small_node):
        fill_node(small_node, 10, start_time=0.0)
        migrated = [
            MigratedItem("m1", "v", 100, 4.5),
            MigratedItem("m2", "v", 100, 2.5),
        ]
        count = small_node.batch_import(migrated, mode="merge")
        assert count == 2
        for class_id in small_node.active_class_ids():
            timestamps = [
                ts for _, ts in small_node.dump_timestamps(class_id)
            ]
            assert timestamps == sorted(timestamps, reverse=True)

    def test_batch_import_prepend_puts_at_head(self, small_node):
        fill_node(small_node, 5, start_time=100.0)
        migrated = [MigratedItem("cold", "v", 100, 1.0)]
        small_node.batch_import(migrated, mode="prepend")
        class_id = small_node.peek("cold").slab_class_id
        head_key = small_node.dump_timestamps(class_id)[0][0]
        assert head_key == "cold"

    def test_batch_import_overwrites_existing(self, small_node):
        small_node.set("k", "old", 100, 1.0)
        small_node.batch_import([MigratedItem("k", "new", 100, 9.0)])
        assert small_node.peek("k").value == "new"
        assert small_node.curr_items == 1

    def test_batch_import_invalid_mode(self, small_node):
        with pytest.raises(ValueError):
            small_node.batch_import([], mode="bogus")

    def test_batch_import_evicts_when_full(self):
        node = MemcachedNode("n", PAGE_SIZE)
        size = PAGE_SIZE // 2 - 200
        node.set("a", 1, size, 1.0)
        node.set("b", 2, size, 2.0)
        migrated = [MigratedItem("hot", "v", size, 10.0)]
        assert node.batch_import(migrated) == 1
        assert node.contains("hot")
        assert not node.contains("a")
        assert node.stats.imported == 1


class TestScoringSupport:
    def test_median_timestamp(self, small_node):
        fill_node(small_node, 9, start_time=0.0)
        class_id = small_node.active_class_ids()[0]
        median = small_node.median_timestamp(class_id)
        dump = [ts for _, ts in small_node.dump_timestamps(class_id)]
        assert median == dump[len(dump) // 2]

    def test_median_of_empty_class_is_none(self, small_node):
        empty_class = small_node.active_class_ids()[-1] + 1 \
            if small_node.active_class_ids() else 0
        assert small_node.median_timestamp(empty_class) is None

    def test_page_fractions(self, small_node):
        fill_node(small_node, 10)
        fractions = small_node.page_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
