"""Tests for hit-rate curves and memory sizing."""

import pytest

from repro.cache_analysis.mrc import (
    HitRateCurve,
    hit_rate_table,
    memory_for_hit_rate,
)
from repro.cache_analysis.stack_distance import stack_distances
from repro.errors import ConfigurationError


class TestHitRateCurve:
    def test_empty_trace(self):
        curve = HitRateCurve([], 0)
        assert curve.total_requests == 0
        assert curve.hit_rate(10) == 0.0
        assert curve.required_items(0.0) == 0

    def test_rejects_negative_histogram(self):
        with pytest.raises(ConfigurationError):
            HitRateCurve([1, -1], 0)
        with pytest.raises(ConfigurationError):
            HitRateCurve([1], -1)

    def test_simple_counts(self):
        # 5 requests at distance 0, 3 at distance 2, 2 cold.
        curve = HitRateCurve([5, 0, 3], 2)
        assert curve.total_requests == 10
        assert curve.hits_at(1) == 5
        assert curve.hits_at(3) == 8
        assert curve.hit_rate(3) == pytest.approx(0.8)
        assert curve.max_hit_rate == pytest.approx(0.8)

    def test_zero_capacity(self):
        curve = HitRateCurve([5], 0)
        assert curve.hit_rate(0) == 0.0

    def test_required_items(self):
        curve = HitRateCurve([5, 0, 3], 2)
        assert curve.required_items(0.5) == 1
        assert curve.required_items(0.8) == 3
        assert curve.required_items(0.9) is None

    def test_required_items_validation(self):
        curve = HitRateCurve([5], 0)
        with pytest.raises(ConfigurationError):
            curve.required_items(1.5)

    def test_from_distances(self):
        curve = HitRateCurve.from_distances(
            [float("inf"), 0.0, 1.0, -1.0, 0.4]
        )
        assert curve.cold_misses == 2
        assert curve.hits_at(1) == 2  # the two distance-0 bins
        assert curve.hits_at(2) == 3

    def test_curve_arrays(self):
        curve = HitRateCurve([2, 2], 1)
        capacities, rates = curve.curve()
        assert list(capacities) == [0, 1, 2]
        assert rates[0] == 0.0
        assert rates[-1] == pytest.approx(4 / 5)

    def test_cyclic_trace_needs_full_working_set(self):
        """A cyclic scan of W keys only hits with capacity >= W."""
        trace = [f"k{i % 8}" for i in range(80)]
        curve = HitRateCurve.from_distances(
            float(d) if d >= 0 else float("inf")
            for d in stack_distances(trace)
        )
        assert curve.hit_rate(7) == 0.0
        assert curve.hit_rate(8) == pytest.approx(72 / 80)


class TestMemorySizing:
    def test_memory_conversion(self):
        curve = HitRateCurve([5, 0, 3], 2)
        assert memory_for_hit_rate(curve, 0.5, 100.0) == 100
        assert memory_for_hit_rate(curve, 0.8, 100.0) == 300
        assert memory_for_hit_rate(curve, 0.9, 100.0) is None

    def test_memory_requires_positive_item_size(self):
        curve = HitRateCurve([5], 0)
        with pytest.raises(ConfigurationError):
            memory_for_hit_rate(curve, 0.5, 0.0)

    def test_hit_rate_table_has_99_rows(self):
        curve = HitRateCurve([5, 0, 3], 2)
        table = hit_rate_table(curve, 100.0)
        assert len(table) == 99
        assert table[0][0] == 1
        assert table[-1][0] == 99
        # Memory demand is monotone in the target hit rate when reachable.
        reachable = [bytes_ for _, bytes_ in table if bytes_ is not None]
        assert reachable == sorted(reachable)
