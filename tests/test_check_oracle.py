"""Property test: FuseCache equals the brute-force oracle.

~200 randomized seeded configurations, weighted toward the nasty
regions: duplicate timestamps shared across lists (tie-breaking), empty
lists, k=1, n=0, and n past the total item count.
"""

import random

import pytest

from repro.check import check_fusecache, fusecache_oracle
from repro.core.fusecache import selected_multiset
from repro.errors import InvariantViolation


def random_case(seed: int):
    rng = random.Random(seed)
    k = rng.randint(1, 8)
    lists = []
    for _ in range(k):
        length = rng.choice([0, rng.randint(1, 50), rng.randint(1, 8)])
        if rng.random() < 0.5:
            # Integer timestamps from a narrow range: many exact
            # duplicates within and across lists.
            values = [float(rng.randint(0, 12)) for _ in range(length)]
        else:
            values = [rng.uniform(0.0, 1000.0) for _ in range(length)]
        lists.append(sorted(values, reverse=True))
    total = sum(len(lst) for lst in lists)
    n = rng.choice(
        [0, rng.randint(0, max(total, 1)), total, total + rng.randint(1, 5)]
    )
    return lists, n


@pytest.mark.parametrize("seed", range(200))
def test_fusecache_matches_oracle_on_random_config(seed):
    lists, n = random_case(seed)
    result = check_fusecache(lists, n)
    assert result.selected == min(n, sum(len(lst) for lst in lists))


def test_oracle_on_known_case():
    lists = [[9.0, 5.0, 1.0], [8.0, 7.0, 2.0]]
    assert fusecache_oracle(lists, 4) == [9.0, 8.0, 7.0, 5.0]
    assert fusecache_oracle(lists, 0) == []
    assert fusecache_oracle(lists, 99) == [
        9.0, 8.0, 7.0, 5.0, 2.0, 1.0,
    ]


def test_oracle_handles_all_empty_lists():
    assert fusecache_oracle([[], [], []], 5) == []
    result = check_fusecache([[], []], 3)
    assert result.topick == [0, 0]


def test_oracle_rejects_negative_n():
    with pytest.raises(InvariantViolation):
        fusecache_oracle([[1.0]], -1)


def test_duplicate_timestamps_compare_as_multisets():
    # Every item identical: any split of picks is a valid answer, and
    # the checker must accept whichever FuseCache chose.
    lists = [[3.0] * 10, [3.0] * 10, [3.0] * 10]
    result = check_fusecache(lists, 17)
    assert result.selected == 17
    assert selected_multiset(lists, result.topick) == [3.0] * 17


def test_check_fusecache_detects_a_wrong_selection(monkeypatch):
    """A deliberately corrupted FuseCache answer must be rejected."""
    from repro.check import oracle as oracle_module
    from repro.core.fusecache import FuseCacheResult

    lists = [[9.0, 5.0, 1.0], [8.0, 7.0, 2.0]]

    def broken(lists, n, validate=False):
        # Right count, but takes cold 5.0 instead of hot 7.0.
        return FuseCacheResult(topick=[2, 1])

    monkeypatch.setattr(oracle_module, "fuse_cache_detailed", broken)
    with pytest.raises(InvariantViolation) as excinfo:
        check_fusecache(lists, 3)
    assert excinfo.value.invariant == "fusecache"


def test_check_fusecache_detects_a_wrong_count(monkeypatch):
    from repro.check import oracle as oracle_module
    from repro.core.fusecache import FuseCacheResult

    def broken(lists, n, validate=False):
        return FuseCacheResult(topick=[1, 0])

    monkeypatch.setattr(oracle_module, "fuse_cache_detailed", broken)
    with pytest.raises(InvariantViolation) as excinfo:
        check_fusecache([[9.0, 5.0], [8.0]], 2)
    assert "selected" in excinfo.value.diff
