"""The runtime loop sanitizer: debug mode, blocking trap, reporting.

The trap is process-wide but thread-registered, so these tests also pin
the two properties that make it safe to ship: calls from *other*
threads fall through to the real functions, and stopping the last
sanitized loop restores the patched functions exactly.
"""

import asyncio
import time

import pytest

from repro.check.loopcheck import (
    LoopSanitizer,
    create_sanitizer,
)
from repro.errors import BlockingCallError, InvariantViolation
from repro.net.runtime import EventLoopThread


def test_create_sanitizer_gates_on_enabled():
    assert create_sanitizer(False) is None
    sanitizer = create_sanitizer(True, slow_callback_s=0.5)
    assert isinstance(sanitizer, LoopSanitizer)
    assert sanitizer.slow_callback_s == 0.5


def test_blocking_call_on_sanitized_loop_is_trapped():
    sanitizer = LoopSanitizer()
    loop = EventLoopThread(name="sanitized", sanitizer=sanitizer)

    async def blocks():
        time.sleep(0.01)

    with loop:
        with pytest.raises(BlockingCallError):
            loop.call(blocks(), timeout=5.0)
        # The same call from the driving (non-loop) thread is untouched.
        time.sleep(0.001)
    report = sanitizer.report()
    assert not report["clean"]
    assert report["by_kind"] == {"blocking-call": 1}
    with pytest.raises(InvariantViolation):
        sanitizer.check("sanitized loop")


def test_asyncio_sleep_passes_clean():
    sanitizer = LoopSanitizer()
    loop = EventLoopThread(name="clean-loop", sanitizer=sanitizer)

    async def cooperative():
        await asyncio.sleep(0)
        return "ok"

    with loop:
        assert loop.call(cooperative(), timeout=5.0) == "ok"
    assert sanitizer.report()["clean"]
    sanitizer.check("clean loop")  # must not raise


def test_traps_are_restored_after_the_last_loop_stops():
    original_sleep = time.sleep
    sanitizer = LoopSanitizer()
    loop = EventLoopThread(name="restore", sanitizer=sanitizer)
    with loop:
        assert time.sleep is not original_sleep
    assert time.sleep is original_sleep


def test_audit_mode_records_without_raising():
    sanitizer = LoopSanitizer(raise_on_block=False)
    loop = EventLoopThread(name="audit", sanitizer=sanitizer)

    async def blocks():
        time.sleep(0.01)
        return "survived"

    with loop:
        assert loop.call(blocks(), timeout=5.0) == "survived"
    assert sanitizer.report()["by_kind"] == {"blocking-call": 1}


def test_slow_callback_becomes_a_finding():
    # Audit mode with a tiny threshold: the blocked callback is both
    # recorded by the trap and reported slow by asyncio debug mode.
    sanitizer = LoopSanitizer(slow_callback_s=0.005, raise_on_block=False)
    loop = EventLoopThread(name="slow", sanitizer=sanitizer)

    async def hog():
        time.sleep(0.02)

    with loop:
        loop.call(hog(), timeout=5.0)
    report = sanitizer.report()
    assert report["by_kind"].get("slow-callback", 0) >= 1


def test_sanitizer_installs_debug_mode():
    sanitizer = LoopSanitizer(slow_callback_s=0.125)
    loop = EventLoopThread(name="debug", sanitizer=sanitizer)

    async def introspect():
        running = asyncio.get_running_loop()
        return running.get_debug(), running.slow_callback_duration

    with loop:
        debug, threshold = loop.call(introspect(), timeout=5.0)
    assert debug is True
    assert threshold == 0.125
