"""Tests for the temporal popularity churn extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.churn import ChurningPopularity, hot_set_overlap
from repro.workloads.popularity import ZipfPopularity


def make_churn(num_keys=2000, swaps=200, hot_bias=0.5, seed=5):
    base = ZipfPopularity(num_keys, alpha=1.0, seed=seed)
    return ChurningPopularity(
        base, swaps_per_step=swaps, hot_bias=hot_bias, seed=seed
    )


class TestChurn:
    def test_validation(self):
        base = ZipfPopularity(10, seed=1)
        with pytest.raises(ConfigurationError):
            ChurningPopularity(base, swaps_per_step=-1)
        with pytest.raises(ConfigurationError):
            ChurningPopularity(base, hot_bias=1.5)
        with pytest.raises(ConfigurationError):
            make_churn().advance(-1)

    def test_probabilities_stay_normalised(self):
        churn = make_churn()
        churn.advance(10)
        assert churn.probabilities.sum() == pytest.approx(1.0)

    def test_skew_is_preserved(self):
        """Churn permutes probabilities; the sorted curve is invariant."""
        churn = make_churn()
        before = np.sort(churn.probabilities)
        churn.advance(20)
        after = np.sort(churn.probabilities)
        assert np.allclose(before, after)

    def test_hot_set_drifts(self):
        churn = make_churn(swaps=300, hot_bias=0.8)
        before = churn.hot_set(50)
        churn.advance(30)
        after = churn.hot_set(50)
        overlap = hot_set_overlap(before, after)
        assert overlap < 0.9  # the hot set moved...
        assert churn.steps_advanced == 30

    def test_no_swaps_means_no_drift(self):
        churn = make_churn(swaps=0)
        before = churn.hot_set(50)
        churn.advance(50)
        assert hot_set_overlap(before, churn.hot_set(50)) == 1.0

    def test_sampling_follows_drifted_distribution(self):
        churn = make_churn(num_keys=500, swaps=500, hot_bias=1.0)
        churn.advance(20)
        samples = churn.sample(20_000)
        counts = np.bincount(samples, minlength=500)
        # The most sampled keys should come from the *current* hot set.
        top_sampled = set(np.argsort(-counts)[:10])
        current_hot = churn.hot_set(25)
        assert len(top_sampled & current_hot) >= 5

    def test_hot_set_helpers(self):
        churn = make_churn(num_keys=100)
        assert churn.hot_set(0) == set()
        assert len(churn.hot_set(10)) == 10
        assert len(churn.hot_set(1000)) == 100
        assert hot_set_overlap(set(), set()) == 1.0
        assert hot_set_overlap({1, 2}, {2, 3}) == pytest.approx(1 / 3)


class TestChurnWithMigration:
    def test_fusecache_keys_off_recency_not_popularity(self):
        """After the hot set drifts, migration still saves the items
        that are *currently* hot, because hotness = MRU timestamps."""
        from repro.core.master import Master
        from repro.memcached.cluster import MemcachedCluster
        from repro.memcached.slab import PAGE_SIZE

        churn = make_churn(num_keys=2000, swaps=400, hot_bias=0.9)
        cluster = MemcachedCluster(
            [f"n{i}" for i in range(3)], 4 * PAGE_SIZE
        )
        keyspace = [f"key-{i:05d}" for i in range(2000)]
        # Warm with the ORIGINAL popularity (older timestamps)...
        for t, index in enumerate(churn.sample(4000)):
            cluster.set(keyspace[index], index, 150, float(t))
        # ...then drift and keep accessing with the NEW popularity.
        churn.advance(30)
        recent = churn.sample(4000)
        for t, index in enumerate(recent):
            cluster.set(keyspace[index], index, 150, 10_000.0 + t)

        master = Master(cluster)
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        master.execute(plan)
        # Currently-hot keys that lived on the retired node must survive.
        survivors = 0
        current_hot = [keyspace[i] for i in churn.hot_set(30)]
        for key in current_hot:
            if cluster.get(key, 1e9) is not None:
                survivors += 1
        assert survivors >= len(current_hot) * 0.6
