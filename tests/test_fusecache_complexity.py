"""FuseCache comparison-count complexity as a tier-1 property test.

Section IV-B claims FuseCache selects the global top-R from k sorted
lists in O(k (log n)^2) comparisons.  The ``bench_fusecache_complexity``
benchmark plots this; these tests *enforce* it with a generous constant,
so a regression that silently degrades the recursion to O(n) fails the
suite rather than just bending a benchmark curve.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusecache import (
    fuse_cache_detailed,
    lower_bound_comparisons,
    sort_merge_top_n,
)

# Envelope constant: comparisons <= ENVELOPE_C * k * (log2 N)^2.  The
# measured fit constant sits near 0.5 (see benchmarks/bench_baseline.json);
# 16 leaves a wide margin for unlucky pivots while still catching any
# linear-in-n regression (at n = 2^16 per list the envelope is ~100x
# below the k-way merge's pop count).
ENVELOPE_C = 16.0


def envelope(k: int, total: int) -> float:
    return ENVELOPE_C * k * max(2.0, math.log2(max(total, 4))) ** 2


def interleaved_lists(n: int, k: int) -> list[list[float]]:
    return [
        [float(n * k - (j * k + i)) for j in range(n)] for i in range(k)
    ]


@pytest.mark.parametrize("exponent", [8, 10, 12, 14, 16])
@pytest.mark.parametrize("k", [2, 8])
def test_comparisons_within_polylog_envelope(exponent, k):
    n = 2**exponent
    lists = interleaved_lists(n, k)
    result = fuse_cache_detailed(lists, (n * k) // 2)
    assert sum(result.topick) == (n * k) // 2
    assert result.comparisons <= envelope(k, n * k), (
        f"n={n} k={k}: {result.comparisons} comparisons exceed "
        f"{envelope(k, n * k):.0f}"
    )


def test_comparisons_grow_polylog_not_linear():
    """Quadrupling n must not quadruple the comparison count."""
    k = 8
    counts = []
    for exponent in (10, 12, 14, 16):
        n = 2**exponent
        result = fuse_cache_detailed(interleaved_lists(n, k), (n * k) // 2)
        counts.append(result.comparisons)
    for smaller, larger in zip(counts, counts[1:]):
        assert larger < 3.0 * smaller, counts
    # And the whole sweep stays far below one pass over the data.
    assert counts[-1] * 50 < (2**16) * k // 2


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2_000),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_random_inputs_stay_in_envelope_and_correct(k, pick_seed, rng):
    """Random ragged, tie-heavy inputs: exact top-R picks, bounded cost."""
    lists = []
    for _ in range(k):
        length = rng.randint(0, 400)
        values = sorted(
            (float(rng.randint(0, 50)) for _ in range(length)), reverse=True
        )
        lists.append(values)
    total = sum(len(lst) for lst in lists)
    pick = min(pick_seed, total)
    result = fuse_cache_detailed(lists, pick)
    assert sum(result.topick) == pick
    assert result.comparisons <= envelope(k, total)
    # Correctness oracle: the picked prefix multiset equals the true
    # global top-``pick`` (ties may split differently across lists).
    expected = sort_merge_top_n(lists, pick)
    chosen = sorted(
        (
            value
            for lst, count in zip(lists, result.topick)
            for value in lst[:count]
        ),
        reverse=True,
    )
    reference = sorted(
        (
            value
            for lst, count in zip(lists, expected)
            for value in lst[:count]
        ),
        reverse=True,
    )
    assert chosen == reference


def test_lower_bound_is_respected_but_not_absurd():
    """Sanity-pin the theoretical bound the benchmark normalizes by."""
    n, k = 2**12, 8
    result = fuse_cache_detailed(interleaved_lists(n, k), (n * k) // 2)
    bound = lower_bound_comparisons((n * k) // 2, k)
    assert bound > 0
    assert result.comparisons < 1_000 * bound


def test_single_list_shortcut_costs_nothing():
    """With k=1 the answer is a prefix; no comparison rounds needed."""
    values = [float(v) for v in range(1_000, 0, -1)]
    result = fuse_cache_detailed([values], 400)
    assert result.topick == [400]
    assert result.comparisons <= envelope(1, 1_000)


def test_worst_case_all_ties():
    """Every timestamp equal: ties must not blow up the round count."""
    k = 8
    lists = [[5.0] * 2_048 for _ in range(k)]
    rng = random.Random(7)
    for pick in (0, 1, 1_000, rng.randint(0, k * 2_048), k * 2_048):
        result = fuse_cache_detailed(lists, pick)
        assert sum(result.topick) == pick
        assert result.comparisons <= envelope(k, k * 2_048)
