"""Tests for the Memcached cluster and membership operations."""

import pytest

from repro.errors import MembershipError
from repro.memcached.slab import PAGE_SIZE


class TestMembership:
    def test_initial_membership(self, small_cluster):
        assert len(small_cluster.active_members) == 4
        assert len(small_cluster.nodes) == 4

    def test_provision_duplicate_rejected(self, small_cluster):
        with pytest.raises(MembershipError):
            small_cluster.provision("node-000")

    def test_activate_unprovisioned_rejected(self, small_cluster):
        with pytest.raises(MembershipError):
            small_cluster.activate("ghost")

    def test_provision_then_activate(self, small_cluster):
        small_cluster.provision("extra")
        assert "extra" not in small_cluster.active_members
        small_cluster.activate("extra")
        assert "extra" in small_cluster.active_members

    def test_deactivate_keeps_data(self, small_cluster):
        small_cluster.set("key", "v", 100, 1.0)
        owner = small_cluster.route("key")
        small_cluster.deactivate(owner)
        assert owner not in small_cluster.active_members
        assert small_cluster.nodes[owner].contains("key")

    def test_destroy_flushes_and_removes(self, small_cluster):
        small_cluster.destroy("node-001")
        assert "node-001" not in small_cluster.nodes
        assert "node-001" not in small_cluster.active_members

    def test_destroy_unknown_rejected(self, small_cluster):
        with pytest.raises(MembershipError):
            small_cluster.destroy("ghost")

    def test_set_membership_requires_provisioned(self, small_cluster):
        with pytest.raises(MembershipError):
            small_cluster.set_membership(["node-000", "ghost"])

    def test_set_membership(self, small_cluster):
        small_cluster.set_membership(["node-000", "node-002"])
        assert small_cluster.active_members == {"node-000", "node-002"}

    def test_ring_for_hypothetical_membership(self, small_cluster):
        ring = small_cluster.ring_for(["node-000", "node-001"])
        assert ring.members == {"node-000", "node-001"}
        # Building a hypothetical ring must not disturb the live one.
        assert len(small_cluster.active_members) == 4


class TestRouting:
    def test_route_is_stable(self, small_cluster):
        assert small_cluster.route("key1") == small_cluster.route("key1")

    def test_set_and_get_roundtrip(self, small_cluster):
        assert small_cluster.set("key1", "v1", 100, 1.0)
        assert small_cluster.get("key1", 2.0) == "v1"

    def test_data_lands_on_routed_node(self, small_cluster):
        small_cluster.set("key1", "v1", 100, 1.0)
        owner = small_cluster.route("key1")
        for name, node in small_cluster.nodes.items():
            assert node.contains("key1") == (name == owner)

    def test_delete_routes(self, small_cluster):
        small_cluster.set("key1", "v1", 100, 1.0)
        assert small_cluster.delete("key1")
        assert small_cluster.get("key1", 2.0) is None

    def test_multiget_partitions_hits_and_misses(self, small_cluster):
        small_cluster.set("a", 1, 100, 1.0)
        small_cluster.set("b", 2, 100, 1.0)
        hits, misses = small_cluster.multiget(["a", "b", "c"], 2.0)
        assert hits == {"a": 1, "b": 2}
        assert misses == ["c"]

    def test_keys_spread_across_nodes(self, small_cluster):
        for i in range(400):
            small_cluster.set(f"key{i}", i, 100, 1.0)
        populated = [
            node for node in small_cluster.active_nodes if node.curr_items
        ]
        assert len(populated) == 4


class TestAggregates:
    def test_total_items_and_bytes(self, small_cluster):
        for i in range(20):
            small_cluster.set(f"key{i}", i, 100, 1.0)
        assert small_cluster.total_items() == 20
        assert small_cluster.total_used_bytes() > 0
        assert (
            small_cluster.total_capacity_bytes()
            == 4 * 4 * PAGE_SIZE
        )

    def test_aggregate_stats(self, small_cluster):
        small_cluster.set("a", 1, 100, 1.0)
        small_cluster.get("a", 2.0)
        small_cluster.get("missing", 3.0)
        stats = small_cluster.aggregate_stats()
        assert stats.sets == 1
        assert stats.get_hits == 1
        assert stats.get_misses == 1
