"""The REP1xx concurrency rules: positives, sanctioned patterns, scope.

The seeded-violation corpus (:mod:`tests.test_check_corpus`) pins each
rule to exact lines; these tests cover the rule *semantics* -- the
sanctioned live-tier patterns each rule must NOT flag, suppression via
``repro: allow[...]``, and the package scoping of the bridge rule.
"""

from repro.check import ASYNC_RULES, async_rule_catalogue
from repro.check.lint import lint_source


def codes(source: str, module: str = "repro.net.fake") -> list[str]:
    return [
        violation.code
        for violation in lint_source(source, module, rules=ASYNC_RULES)
    ]


# ----------------------------------------------------------------------
# Positives (one canonical shape per rule)
# ----------------------------------------------------------------------


def test_rep101_time_sleep_in_coroutine():
    source = (
        "import time\n"
        "async def poll():\n"
        "    time.sleep(0.1)\n"
    )
    assert codes(source) == ["REP101"]


def test_rep101_bridge_future_result_on_loop():
    source = (
        "async def join(loop, coro):\n"
        "    future = loop.submit(coro)\n"
        "    return future.result()\n"
    )
    assert codes(source) == ["REP101"]


def test_rep102_dropped_coroutine_call():
    source = (
        "async def warm(node):\n"
        "    await node.ping()\n"
        "async def drive(node):\n"
        "    warm(node)\n"
    )
    assert codes(source) == ["REP102"]


def test_rep103_bare_create_task():
    source = (
        "import asyncio\n"
        "async def go(coro):\n"
        "    asyncio.create_task(coro)\n"
    )
    assert codes(source) == ["REP103"]


def test_rep104_await_under_threading_lock():
    source = (
        "import asyncio, threading\n"
        "async def hold():\n"
        "    with threading.Lock():\n"
        "        await asyncio.sleep(0)\n"
    )
    assert codes(source) == ["REP104"]


def test_rep105_call_soon_from_sync_code():
    source = (
        "def kick(loop, cb):\n"
        "    loop.call_soon(cb)\n"
    )
    assert codes(source) == ["REP105"]


def test_rep105_get_event_loop_anywhere():
    source = (
        "import asyncio\n"
        "def grab():\n"
        "    return asyncio.get_event_loop()\n"
    )
    assert codes(source) == ["REP105"]


def test_rep106_ambient_contextvar_in_bridged_package():
    source = (
        "from repro.obs.livetrace import current_context\n"
        "async def send(conn):\n"
        "    return current_context()\n"
    )
    assert codes(source, "repro.net.fake") == ["REP106"]


# ----------------------------------------------------------------------
# Sanctioned live-tier patterns stay clean
# ----------------------------------------------------------------------


def test_spawn_retain_pattern_is_clean():
    source = (
        "import asyncio\n"
        "class Router:\n"
        "    def __init__(self):\n"
        "        self._tasks = set()\n"
        "    async def spawn(self, coro):\n"
        "        task = asyncio.create_task(coro)\n"
        "        self._tasks.add(task)\n"
        "        task.add_done_callback(self._tasks.discard)\n"
    )
    assert codes(source) == []


def test_async_lock_is_clean():
    source = (
        "import asyncio\n"
        "async def hold(lock):\n"
        "    async with lock:\n"
        "        await asyncio.sleep(0)\n"
    )
    assert codes(source) == []


def test_sync_bridge_result_is_clean():
    source = (
        "import asyncio\n"
        "def call(loop, coro, timeout):\n"
        "    future = asyncio.run_coroutine_threadsafe(coro, loop)\n"
        "    return future.result(timeout=timeout)\n"
    )
    assert codes(source) == []


def test_nested_sync_helper_is_its_own_scope():
    source = (
        "import time\n"
        "async def outer(executor, loop):\n"
        "    def block():\n"
        "        time.sleep(0.1)\n"
        "    await loop.run_in_executor(executor, block)\n"
    )
    assert codes(source) == []


def test_awaited_task_result_on_done_set_is_clean():
    source = (
        "import asyncio\n"
        "async def gather(tasks):\n"
        "    done, _ = await asyncio.wait(tasks)\n"
        "    return [task.result() for task in done]\n"
    )
    assert codes(source) == []


def test_get_running_loop_chain_is_clean():
    source = (
        "import asyncio\n"
        "async def spawn(coro):\n"
        "    task = asyncio.get_running_loop().create_task(coro)\n"
        "    return await task\n"
    )
    assert codes(source) == []


# ----------------------------------------------------------------------
# Scoping + suppression
# ----------------------------------------------------------------------


def test_rep106_only_applies_to_bridged_packages():
    source = (
        "from repro.obs.livetrace import current_context\n"
        "async def send(conn):\n"
        "    return current_context()\n"
    )
    assert codes(source, "repro.obs.fake") == []
    assert codes(source, "repro.proxy.fake") == ["REP106"]


def test_allow_marker_suppresses_async_rules():
    source = (
        "import time\n"
        "async def poll():\n"
        "    time.sleep(0.1)  # repro: allow[REP101]\n"
    )
    assert codes(source) == []


def test_catalogue_lists_all_six_async_rules():
    rows = async_rule_catalogue()
    assert [code for code, _, _ in rows] == [
        f"REP10{index}" for index in range(1, 7)
    ]
    assert len({name for _, name, _ in rows}) == 6
