"""Tests for the network transfer model."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.transfer import GBIT, Flow, NetworkModel


class TestFlow:
    def test_valid_flow(self):
        flow = Flow("a", "b", 1000)
        assert flow.size_bytes == 1000

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow("a", "b", -1)

    def test_self_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow("a", "a", 10)


class TestNetworkModel:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(nic_bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            NetworkModel(connection_setup_s=-1)

    def test_flow_time(self):
        net = NetworkModel(nic_bandwidth_bps=1000, connection_setup_s=0.5)
        assert net.flow_time(2000) == pytest.approx(2.5)

    def test_flow_time_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel().flow_time(-1)

    def test_phase_time_empty(self):
        assert NetworkModel().phase_time([]) == 0.0

    def test_phase_time_single_flow(self):
        net = NetworkModel(nic_bandwidth_bps=1000, connection_setup_s=0.0)
        assert net.phase_time([Flow("a", "b", 3000)]) == pytest.approx(3.0)

    def test_parallel_flows_from_distinct_sources_overlap(self):
        net = NetworkModel(nic_bandwidth_bps=1000, connection_setup_s=0.0)
        flows = [Flow("a", "x", 1000), Flow("b", "y", 1000)]
        assert net.phase_time(flows) == pytest.approx(1.0)

    def test_shared_source_serialises_bytes(self):
        net = NetworkModel(nic_bandwidth_bps=1000, connection_setup_s=0.0)
        flows = [Flow("a", "x", 1000), Flow("a", "y", 1000)]
        assert net.phase_time(flows) == pytest.approx(2.0)

    def test_shared_destination_serialises_bytes(self):
        net = NetworkModel(nic_bandwidth_bps=1000, connection_setup_s=0.0)
        flows = [Flow("a", "x", 1000), Flow("b", "x", 1000)]
        assert net.phase_time(flows) == pytest.approx(2.0)

    def test_setup_cost_paid_per_flow_on_source(self):
        net = NetworkModel(nic_bandwidth_bps=1e9, connection_setup_s=0.5)
        flows = [Flow("a", "x", 0), Flow("a", "y", 0)]
        assert net.phase_time(flows) == pytest.approx(1.0)

    def test_gbit_constant(self):
        assert GBIT == 125_000_000
