"""Tests for the terminal chart renderer."""


import pytest

from repro.analysis.asciiplot import BLOCKS, chart, sparkline, _downsample


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_nan(self):
        assert sparkline([float("nan")] * 5) == ""

    def test_flat_series(self):
        line = sparkline([5.0] * 10, width=10)
        assert len(line) == 10
        assert len(set(line)) == 1

    def test_rising_series_rises(self):
        line = sparkline(list(range(100)), width=10)
        levels = [BLOCKS.index(c) for c in line]
        assert levels == sorted(levels)
        assert levels[-1] > levels[0]

    def test_spike_is_visible(self):
        values = [1.0] * 50 + [100.0] + [1.0] * 49
        line = sparkline(values, width=20)
        assert BLOCKS[-1] in line

    def test_nan_gap_renders_blank(self):
        values = [1.0, float("nan"), 1.0]
        line = sparkline(values, width=3)
        assert line[1] == " "


class TestDownsample:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            _downsample([1.0], 0)

    def test_empty(self):
        assert _downsample([], 10) == []

    def test_max_pooling_preserves_spikes(self):
        values = [0.0] * 10 + [9.0] + [0.0] * 9
        buckets = _downsample(values, 4)
        assert max(b for b in buckets if b is not None) == 9.0

    def test_output_length_bounded(self):
        assert len(_downsample(list(range(1000)), 40)) <= 40


class TestChart:
    def test_no_data(self):
        assert "(no data)" in chart([], "t")

    def test_contains_title_and_range(self):
        out = chart([1.0, 2.0, 3.0], "latency", width=10, height=4)
        assert "latency" in out
        assert "max 3" in out
        assert "min 1" in out

    def test_height_rows(self):
        out = chart(list(range(50)), "t", width=20, height=6)
        # Title + height rows (no markers).
        assert len(out.splitlines()) == 7

    def test_log_scale_handles_spikes(self):
        values = [1.0] * 50 + [10_000.0] + [1.0] * 49
        out = chart(values, "rt", log_scale=True)
        assert "max 1e+04" in out or "max 10000" in out

    def test_markers_row(self):
        out = chart(
            list(range(100)), "t", width=20, height=4, markers=[0.5]
        )
        assert out.splitlines()[-1].count("^") == 1

    def test_nan_tolerated(self):
        values = [1.0, float("nan"), 5.0, float("nan")]
        out = chart(values, "t", width=4, height=3)
        assert "t" in out
