"""Live proxy-tier tests: real sockets end to end.

Clients speak the ordinary text protocol to the proxy listener; behind
it the router coalesces, replicates, and circuit-breaks against real
backend node servers.  These are the acceptance tests of the proxy PR:

- a client behind the proxy sees zero transport errors while a backend
  is killed and restarted mid-traffic (the chaos contract);
- a hot-key storm's concurrent same-key fetches collapse >= 90% onto
  in-flight leaders;
- a promoted hot key keeps serving (stale-serve) while its primary's
  breaker is open;
- writes invalidate replica copies before returning;
- the proxy ring follows the Master's post-switch membership.
"""

import asyncio

import pytest

from repro.core.master import Master
from repro.core.retry import RetryPolicy
from repro.faults.sockets import SocketFaultPolicy
from repro.faults.spec import FaultSchedule, FaultSpec
from repro.memcached.slab import PAGE_SIZE
from repro.net import LiveCluster, NodeClient
from repro.net.livemigrate import seed_records
from repro.net.runtime import EventLoopThread
from repro.proxy import (
    CLOSED,
    OPEN,
    ProxyConfig,
    ProxyHarness,
    run_proxy_chaos,
)
from repro.sim.scenarios import hot_key_storm

MEMORY = 8 * PAGE_SIZE
FAST_RETRY = RetryPolicy(
    max_attempts=2, base_backoff_s=0.01, max_backoff_s=0.05
)
FAST_BREAKER = dict(
    failure_threshold=2, open_duration_s=0.2, close_after=1
)


@pytest.fixture
def loop():
    with EventLoopThread(name="test-proxy-client") as thread:
        yield thread


def make_harness(names, config=None, fault_policy=None):
    return ProxyHarness(
        names,
        MEMORY,
        config=config,
        fault_policy=fault_policy,
        drain_grace_s=0.2,
    )


class TestProxyWire:
    def test_full_protocol_roundtrip_through_proxy(self, loop):
        with make_harness(["n0", "n1"]) as harness:
            host, port = harness.proxy_endpoint
            client = NodeClient("proxy", host, port)
            assert loop.call(client.set("k", b"hello", flags=3))
            assert loop.call(client.get("k")) == (3, b"hello")
            assert loop.call(client.get("ghost")) is None
            assert loop.call(client.set("n", b"41"))
            assert loop.call(client.incr("n", 1)) == 42
            assert loop.call(client.delete("k"))
            assert not loop.call(client.delete("k"))
            assert "proxy" in loop.call(client.version())
            stats = loop.call(client.stats())
            assert stats["active_backends"] == 2
            assert stats["proxy_gets"] >= 2
            assert stats["breaker_state_n0"] == 0
            loop.call(client.flush_all())
            assert loop.call(client.get("n")) is None
            loop.call(client.close())

    def test_keys_land_on_ring_owners(self, loop):
        """The proxy and a direct ketama client agree on placement."""
        with make_harness(["n0", "n1", "n2"]) as harness:
            host, port = harness.proxy_endpoint
            client = NodeClient("proxy", host, port)
            router = harness.router
            for i in range(30):
                key = f"place:{i}"
                assert loop.call(client.set(key, b"v"))
                owner = router.primary_for(key)
                direct = NodeClient(
                    owner, *harness.backends.endpoints[owner]
                )
                assert loop.call(direct.get(key)) == (0, b"v")
                loop.call(direct.close())
            loop.call(client.close())


class TestCoalescing:
    def test_hot_key_storm_collapses_90_percent(self):
        """Acceptance: >= 90% of a storm's concurrent same-key fetches
        ride an in-flight leader instead of hitting a backend."""
        # Every backend chunk is delayed ~50ms, so the whole storm is in
        # flight before the first leader resolves.
        stall = SocketFaultPolicy(
            FaultSchedule(
                [
                    FaultSpec(0.0, "node_stall", node=name, factor=0.5)
                    for name in ("n0", "n1", "n2", "n3")
                ]
            ),
            base_delay_s=0.05,
        )
        config = ProxyConfig(replication_factor=0)
        storm = hot_key_storm(
            requests=300, hot_keys=4, hot_fraction=1.0, seed=7
        )
        with make_harness(
            ["n0", "n1", "n2", "n3"], config=config, fault_policy=stall
        ) as harness:
            router = harness.router

            async def seed_and_storm():
                for key in storm.hot_keys:
                    await router.set(key, b"hot-value")
                return await asyncio.gather(
                    *(router.get(key) for key in storm.requests)
                )

            results = harness.loop.call(seed_and_storm(), timeout=30.0)
            assert all(value == (0, b"hot-value") for value in results)
            metrics = router.telemetry.metrics
            leaders = metrics.counter("proxy_coalesce_leaders_total").value
            followers = metrics.counter(
                "proxy_coalesce_followers_total"
            ).value
            assert leaders + followers == len(storm.requests)
            collapse = followers / (leaders + followers)
            assert collapse >= 0.90, (
                f"collapse ratio {collapse:.3f} "
                f"({leaders:.0f} leaders / {followers:.0f} followers)"
            )


class TestHotKeyReplication:
    def replication_config(self):
        return ProxyConfig(
            replication_factor=1,
            promote_threshold=4,
            max_hot_keys=4,
            timeout_s=0.5,
            retry=FAST_RETRY,
            backoff_scale=0.1,
            **FAST_BREAKER,
        )

    def drive_promotion(self, loop, client, router, key):
        """Read the key until the detector promotes it."""
        for _ in range(40):
            assert loop.call(client.get(key)) is not None
            if router.replicas.replicas_for(key):
                return router.replicas.replicas_for(key)
        raise AssertionError("key was never promoted")

    def test_hot_key_promoted_onto_replica(self, loop):
        with make_harness(
            ["n0", "n1", "n2"], config=self.replication_config()
        ) as harness:
            host, port = harness.proxy_endpoint
            client = NodeClient("proxy", host, port)
            key = "celebrity"
            assert loop.call(client.set(key, b"profile"))
            replicas = self.drive_promotion(
                loop, client, harness.router, key
            )
            primary = harness.router.primary_for(key)
            assert primary not in replicas
            # The replica backend physically holds a copy.
            replica = replicas[0]
            direct = NodeClient(
                replica, *harness.backends.endpoints[replica]
            )
            assert loop.call(direct.get(key)) == (0, b"profile")
            loop.call(direct.close())
            loop.call(client.close())

    def test_stale_serve_while_primary_breaker_open(self, loop):
        """A replicated hot key survives its primary's death: reads are
        served from the replica while the breaker is open."""
        with make_harness(
            ["n0", "n1", "n2"], config=self.replication_config()
        ) as harness:
            host, port = harness.proxy_endpoint
            client = NodeClient("proxy", host, port, timeout_s=5.0)
            router = harness.router
            key = "celebrity"
            assert loop.call(client.set(key, b"profile"))
            self.drive_promotion(loop, client, router, key)
            primary = router.primary_for(key)

            harness.kill_backend(primary)
            # Keep reading: every read must still return the value, and
            # after failure_threshold transport failures the primary's
            # breaker opens -- from then on reads are stale-serves.
            for _ in range(10):
                assert loop.call(client.get(key)) == (0, b"profile")
            assert router.breakers[primary].state != CLOSED
            metrics = router.telemetry.metrics
            assert metrics.counter("proxy_stale_serves_total").value >= 1
            assert metrics.counter("proxy_fanout_reads_total").value >= 1
            loop.call(client.close())

    def test_write_through_invalidation(self, loop):
        """A set drops every replica copy before acknowledging, so a
        following read can never observe the old replica value."""
        with make_harness(
            ["n0", "n1", "n2"], config=self.replication_config()
        ) as harness:
            host, port = harness.proxy_endpoint
            client = NodeClient("proxy", host, port)
            router = harness.router
            key = "celebrity"
            assert loop.call(client.set(key, b"old"))
            replicas = self.drive_promotion(loop, client, router, key)
            replica = replicas[0]

            assert loop.call(client.set(key, b"new"))
            # The replica's copy is gone the moment the set returned.
            direct = NodeClient(
                replica, *harness.backends.endpoints[replica]
            )
            assert loop.call(direct.get(key)) is None
            loop.call(direct.close())
            assert loop.call(client.get(key)) == (0, b"new")
            loop.call(client.close())


class TestFailoverChaos:
    def test_chaos_contract_zero_client_errors(self):
        """Acceptance: kill+restart a backend mid-traffic behind the
        proxy; the client stream stays error-free, the breaker cycle is
        observable, and the backend is re-admitted after restart."""
        result = run_proxy_chaos(
            nodes=3,
            memory_per_node=MEMORY,
            keys=32,
            healthy_ops=80,
            dead_ops=120,
            seed=5,
        )
        assert result.client_transport_errors == 0
        assert result.breaker_opened
        assert result.breaker_recovered
        assert result.victim_served_after_restart
        assert result.transitions["open"] >= 1
        assert result.transitions["half_open"] >= 1
        assert result.transitions["closed"] >= 1
        assert result.ok
        payload = result.to_dict()
        assert payload["ok"] is True
        assert payload["transitions"]["open"] >= 1

    def test_degraded_ops_fail_fast_once_breaker_open(self, loop):
        """With the breaker open, requests to the dead backend are
        rejected locally instead of eating a connect timeout."""
        config = ProxyConfig(
            timeout_s=0.5,
            retry=FAST_RETRY,
            backoff_scale=0.1,
            failure_threshold=2,
            open_duration_s=30.0,  # stays open for the whole test
        )
        with make_harness(["n0", "n1"], config=config) as harness:
            host, port = harness.proxy_endpoint
            client = NodeClient("proxy", host, port, timeout_s=5.0)
            router = harness.router
            victim = "n1"
            victim_key = next(
                f"k{i}"
                for i in range(1000)
                if router.primary_for(f"k{i}") == victim
            )
            harness.kill_backend(victim)
            # Trip the breaker.
            for _ in range(3):
                assert loop.call(client.get(victim_key)) is None
            assert router.breakers[victim].state == OPEN
            # Fail-fast: degraded get and set, no sockets touched.
            assert loop.call(client.get(victim_key)) is None
            assert not loop.call(client.set(victim_key, b"v"))
            metrics = router.telemetry.metrics
            assert (
                metrics.counter(
                    "proxy_breaker_rejections_total", backend=victim
                ).value
                >= 2
            )
            assert (
                metrics.counter("proxy_degraded_total", op="get").value
                >= 1
            )
            assert (
                metrics.counter("proxy_degraded_total", op="set").value
                >= 1
            )
            loop.call(client.close())


class TestMembershipIntegration:
    def test_proxy_follows_master_post_switch_ring(self, loop):
        """Subscribe the proxy to a Master driving the same backends;
        a scale-in switches the proxy ring the moment the Master's
        switch phase commits."""
        names = [f"live-{i:02d}" for i in range(4)]
        with make_harness(names) as harness:
            router = harness.router
            live = LiveCluster(
                harness.backends.endpoints,
                timeout_s=2.0,
                retry=FAST_RETRY,
                backoff_scale=0.05,
            )
            try:
                records = seed_records(200, value_bytes=24, seed=9)
                owners = live.route_many([r.key for r in records])
                groups = {}
                for record, owner in zip(records, owners):
                    groups.setdefault(owner, []).append(record)
                for name, group in groups.items():
                    live.nodes[name].batch_import(group, mode="merge")

                master = Master(live)
                master.subscribe_membership(router.membership_listener())
                plan = master.plan_scale_in(master.choose_retiring(1))
                report = master.execute(plan)

                assert sorted(router.active_members) == (
                    report.membership_after
                )
                retired = set(names) - set(report.membership_after)
                assert len(retired) == 1
                # The proxy no longer routes to the retired node, and
                # clients keep getting answered.
                host, port = harness.proxy_endpoint
                client = NodeClient("proxy", host, port)
                for record in records[:40]:
                    owner = router.primary_for(record.key)
                    assert owner in report.membership_after
                    loop.call(client.get(record.key))  # must not raise
                stats = loop.call(client.stats())
                assert stats["active_backends"] == 3
                assert stats["membership_switches"] == 1
                loop.call(client.close())
            finally:
                live.close()

    def test_update_membership_rejects_unknown_backend(self):
        with make_harness(["n0", "n1"]) as harness:
            from repro.errors import MembershipError

            with pytest.raises(MembershipError):
                harness.set_membership(["n0", "ghost"])
            assert sorted(harness.router.active_members) == ["n0", "n1"]
