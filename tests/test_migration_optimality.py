"""Optimality properties of the planned migration (paper Section III-D).

The paper's guarantee: "by design of our FuseCache algorithm, the items
being evicted are necessarily colder (in terms of MRU timestamp) than
the KV pairs being migrated."  These tests verify the per-(target, slab)
selection really is the hottest feasible set.
"""

import pytest

from repro.core.agent import Agent
from repro.core.master import Master
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE


def warmed_cluster(seed_offset=0, nodes=4, items=1200):
    cluster = MemcachedCluster(
        [f"n{i}" for i in range(nodes)], 2 * PAGE_SIZE
    )
    # Two value sizes -> two active slab classes.
    for i in range(items):
        size = 150 if i % 3 else 900
        cluster.set(
            f"key-{seed_offset}-{i:05d}", i, size, float(i)
        )
    return cluster


class TestSelectionOptimality:
    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_chosen_set_is_top_n_of_union(self, seed_offset):
        """For every (target, class): migrated + kept == the hottest
        ``capacity`` items of (incoming union own)."""
        cluster = warmed_cluster(seed_offset)
        master = Master(cluster)
        retiring = master.choose_retiring(1)
        target_ring = cluster.ring_for(
            sorted(set(cluster.active_members) - set(retiring))
        )
        agent = Agent(cluster.nodes[retiring[0]])
        grouped = agent.dump_and_hash(target_ring)
        plan = master.plan_scale_in(retiring)

        for dst, per_class in grouped.items():
            dst_agent = Agent(cluster.nodes[dst])
            chosen = {
                key for key in plan.transfers.get((retiring[0], dst), [])
            }
            for class_id, entries in per_class.items():
                capacity = dst_agent.slab_capacity_items(class_id)
                own = [
                    item.last_access
                    for item in cluster.nodes[dst].items_in_mru_order(
                        class_id
                    )
                ]
                incoming = [(key, ts) for key, ts in entries]
                union = sorted(
                    [ts for _, ts in incoming] + own, reverse=True
                )
                if len(union) <= capacity:
                    # Everything fits: every incoming key must migrate.
                    for key, _ in incoming:
                        assert key in chosen
                    continue
                cutoff = union[capacity - 1]
                migrated_ts = [
                    ts for key, ts in incoming if key in chosen
                ]
                skipped_ts = [
                    ts for key, ts in incoming if key not in chosen
                ]
                # Every migrated item is at least as hot as every
                # skipped one (ties may fall either way).
                if migrated_ts and skipped_ts:
                    assert min(migrated_ts) >= max(skipped_ts)
                # Nothing strictly hotter than the cutoff is skipped.
                for ts in skipped_ts:
                    assert ts <= cutoff

    def test_eviction_never_removes_hotter_than_migrated(self):
        """After executing, each retained node's coldest survivor is at
        least as hot as its coldest imported item would demand --
        i.e. imports never displaced something hotter than themselves."""
        cluster = warmed_cluster(9)
        master = Master(cluster, import_mode="merge")
        retiring = master.choose_retiring(1)

        # Record pre-migration content per retained node/class.
        before = {}
        for name in set(cluster.active_members) - set(retiring):
            node = cluster.nodes[name]
            before[name] = {
                class_id: {
                    item.key: item.last_access
                    for item in node.items_in_mru_order(class_id)
                }
                for class_id in node.active_class_ids()
            }

        plan = master.plan_scale_in(retiring)
        imported_keys = {
            key
            for (_, dst), keys in plan.transfers.items()
            for key in keys
        }
        master.execute(plan)

        for name, per_class in before.items():
            node = cluster.nodes[name]
            for class_id, original in per_class.items():
                surviving = {
                    item.key: item.last_access
                    for item in node.items_in_mru_order(class_id)
                }
                evicted = {
                    key: ts
                    for key, ts in original.items()
                    if key not in surviving
                }
                imported_ts = [
                    ts
                    for key, ts in surviving.items()
                    if key in imported_keys
                ]
                if not evicted or not imported_ts:
                    continue
                assert max(evicted.values()) <= max(imported_ts) or (
                    # Allow ties at the boundary.
                    max(evicted.values()) <= min(imported_ts) + 1e-9
                    or True
                )
                # The strong guarantee: nothing evicted beats the
                # hottest import.
                assert max(evicted.values()) <= max(imported_ts)
