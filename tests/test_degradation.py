"""Tests for post-scaling degradation metrics."""


import numpy as np
import pytest

from repro.analysis.degradation import (
    degradation_reduction,
    peak_reduction,
    stable_rt_ms,
    summarize_post_scaling,
)
from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsCollector, SecondRecord


def series_to_metrics(p95_values, start=0.0):
    metrics = MetricsCollector()
    for offset, value in enumerate(p95_values):
        metrics.add(
            SecondRecord(
                time=start + offset,
                requests=10,
                kv_gets=40,
                hits=36,
                misses=4,
                secondary_hits=0,
                p95_rt_ms=value,
                mean_rt_ms=value / 2,
                db_latency_ms=4.0,
                active_nodes=10,
            )
        )
    return metrics


def spike_series(stable=5.0, peak=100.0, spike_at=100, spike_len=50,
                 total=400):
    """Stable RT, then a decaying spike, then stable again."""
    values = np.full(total, stable)
    for i in range(spike_len):
        values[spike_at + i] = stable + (peak - stable) * (
            1 - i / spike_len
        )
    return values


class TestStableRT:
    def test_median_of_window(self):
        metrics = series_to_metrics([5.0] * 100)
        assert stable_rt_ms(metrics, before=100.0) == pytest.approx(5.0)

    def test_no_samples_raises(self):
        metrics = series_to_metrics([5.0] * 10)
        with pytest.raises(ConfigurationError):
            stable_rt_ms(metrics, before=0.0)

    def test_nan_samples_ignored(self):
        values = [5.0] * 50 + [float("nan")] * 10 + [5.0] * 40
        metrics = series_to_metrics(values)
        assert stable_rt_ms(metrics, before=100.0) == pytest.approx(5.0)


class TestSummary:
    def test_peak_detection(self):
        metrics = series_to_metrics(spike_series())
        summary = summarize_post_scaling(metrics, scale_time=100.0)
        assert summary.peak_rt_ms == pytest.approx(100.0)
        assert summary.stable_rt_ms == pytest.approx(5.0)

    def test_restoration_time(self):
        metrics = series_to_metrics(
            spike_series(spike_at=100, spike_len=50)
        )
        summary = summarize_post_scaling(
            metrics, scale_time=100.0, restoration_factor=1.5
        )
        assert summary.restoration_time_s is not None
        # The spike decays linearly over 50 s; RT falls below 7.5 ms at
        # ~48 s after the scaling action.
        assert 40 <= summary.restoration_time_s <= 55

    def test_never_restored(self):
        values = np.full(300, 5.0)
        values[100:] = 50.0  # permanently degraded
        metrics = series_to_metrics(values)
        summary = summarize_post_scaling(
            metrics, scale_time=100.0, horizon_s=200.0
        )
        assert summary.restoration_time_s is None

    def test_average_excess(self):
        values = np.full(300, 5.0)
        values[100:200] = 15.0
        metrics = series_to_metrics(values)
        summary = summarize_post_scaling(
            metrics, scale_time=100.0, horizon_s=200.0
        )
        # 100 s at +10 ms over a 200 s window -> mean excess 5 ms.
        assert summary.average_excess_rt_ms == pytest.approx(5.0)

    def test_no_post_samples_raises(self):
        metrics = series_to_metrics([5.0] * 100)
        with pytest.raises(ConfigurationError):
            summarize_post_scaling(metrics, scale_time=100.0)

    def test_as_row(self):
        metrics = series_to_metrics(spike_series())
        row = summarize_post_scaling(metrics, scale_time=100.0).as_row()
        assert set(row) == {
            "stable_rt_ms",
            "peak_rt_ms",
            "restoration_time_s",
            "average_post_rt_ms",
            "average_excess_rt_ms",
        }


class TestReductions:
    def make_pair(self):
        baseline = summarize_post_scaling(
            series_to_metrics(spike_series(peak=105.0)), 100.0
        )
        improved = summarize_post_scaling(
            series_to_metrics(spike_series(peak=15.0)), 100.0
        )
        return baseline, improved

    def test_degradation_reduction(self):
        baseline, improved = self.make_pair()
        reduction = degradation_reduction(baseline, improved)
        assert reduction == pytest.approx(0.9, abs=0.02)

    def test_peak_reduction(self):
        baseline, improved = self.make_pair()
        assert peak_reduction(baseline, improved) == pytest.approx(
            1 - 15.0 / 105.0, abs=0.01
        )

    def test_zero_baseline_degradation(self):
        flat = summarize_post_scaling(
            series_to_metrics(np.full(300, 5.0)), 100.0
        )
        assert degradation_reduction(flat, flat) == 0.0

    def test_worse_policy_gives_negative_reduction(self):
        baseline, improved = self.make_pair()
        assert degradation_reduction(improved, baseline) < 0
