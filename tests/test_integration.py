"""Cross-module integration tests.

These exercise whole scaling stories -- multi-action sequences, failure
injection between planning and execution, policy orderings -- at small
scale so they stay fast.
"""

import numpy as np
import pytest

from repro.core.master import Master
from repro.core.policies import ElMemPolicy
from repro.errors import MigrationError
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import NetworkModel
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.traces import RateTrace


def warmed_cluster(nodes=4, items=500, memory_pages=6):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, memory_pages * PAGE_SIZE)
    for i in range(items):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    return cluster


def small_experiment(**overrides):
    defaults = dict(
        trace=RateTrace("flat", np.full(80, 1.0)),
        num_keys=4000,
        initial_nodes=4,
        memory_per_node=4 * (1 << 20),
        peak_request_rate=50.0,
        items_per_request=3,
        db_capacity_rps=30.0,
        warmup_seconds=5,
        max_value_size=1200,
        seed=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestScaleSequences:
    def test_scale_in_then_out_roundtrip(self):
        """10 -> 8 -> 10-style in/out sequence keeps the tier serving."""
        cluster = warmed_cluster(nodes=4)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e7))
        plan_in = master.plan_scale_in(master.choose_retiring(1))
        master.execute(plan_in)
        assert len(cluster.active_members) == 3
        plan_out = master.plan_scale_out(["node-new"])
        master.execute(plan_out)
        assert len(cluster.active_members) == 4
        # The tier still serves a healthy share of the original keys.
        hits = sum(
            1
            for i in range(500)
            if cluster.get(f"key-{i:05d}", 1e6) is not None
        )
        assert hits > 250

    def test_repeated_scale_in_to_single_node(self):
        cluster = warmed_cluster(nodes=4)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e7))
        for _ in range(3):
            plan = master.plan_scale_in(master.choose_retiring(1))
            master.execute(plan)
        assert len(cluster.active_members) == 1
        survivor = next(iter(cluster.active_members))
        assert cluster.nodes[survivor].curr_items > 0

    def test_multi_action_experiment(self):
        """An experiment with a scale-in followed by a scale-out."""
        config = small_experiment(
            trace=RateTrace("flat", np.full(120, 1.0)),
            schedule=[(20.0, 3), (70.0, 4)],
            policy="elmem",
        )
        result = run_experiment(config)
        nodes = result.metrics.series("active_nodes")
        assert nodes[0] == 4
        assert nodes[60] == 3
        assert nodes[-1] == 4


class TestFailureInjection:
    def test_retiring_node_dies_before_execution(self):
        cluster = warmed_cluster(nodes=4)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e7))
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        cluster.destroy(retiring[0])  # crash before phase 3
        report = master.execute(plan)
        assert report.skipped_pairs
        assert report.items_imported == 0
        assert set(report.membership_after) == set(plan.retained)

    def test_one_retained_node_dies_before_execution(self):
        cluster = warmed_cluster(nodes=4)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e7))
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        victim = plan.retained[0]
        cluster.destroy(victim)
        report = master.execute(plan)
        assert victim not in report.membership_after
        assert len(report.membership_after) == 2
        # Pairs toward the dead node were skipped; others went through.
        assert all(dst == victim for _, dst in report.skipped_pairs)

    def test_all_retained_dead_raises(self):
        cluster = warmed_cluster(nodes=2)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e7))
        retiring = master.choose_retiring(1)
        plan = master.plan_scale_in(retiring)
        cluster.destroy(plan.retained[0])
        with pytest.raises(MigrationError):
            master.execute(plan)

    def test_policy_survives_mid_migration_crash(self):
        policy = ElMemPolicy()
        cluster = warmed_cluster(nodes=4)
        master = Master(cluster, network=NetworkModel(nic_bandwidth_bps=1e5))
        policy.bind(cluster, master)
        policy.on_scale_decision(3, now=0.0)
        assert policy.pending
        _, plan = policy._pending
        cluster.destroy(plan.retiring[0])
        policy.tick(1e9)  # must not raise
        assert not policy.pending
        assert len(cluster.active_members) == 3


class TestPolicyOrdering:
    @pytest.mark.slow
    def test_elmem_beats_baseline_on_hit_rate(self):
        """End-to-end: after a scale-in, ElMem's post-scaling hit rate
        dominates the baseline's."""
        results = {}
        for policy in ("baseline", "elmem"):
            config = small_experiment(
                schedule=[(20.0, 3)], policy=policy
            )
            results[policy] = run_experiment(config)
        window = slice(22, 50)
        base_hr = results["baseline"].metrics.hit_rates()[window].mean()
        elmem_hr = results["elmem"].metrics.hit_rates()[window].mean()
        assert elmem_hr >= base_hr

    @pytest.mark.slow
    def test_percentiles_are_ordered(self):
        result = run_experiment(small_experiment())
        p50 = result.metrics.series("p50_rt_ms")
        p95 = result.metrics.series("p95_rt_ms")
        p99 = result.metrics.series("p99_rt_ms")
        mask = np.isfinite(p50)
        assert (p50[mask] <= p95[mask] + 1e-9).all()
        assert (p95[mask] <= p99[mask] + 1e-9).all()
