"""Tests for the AutoScaler (Q1) and the scheduled scaling policy."""

import pytest

from repro.core.autoscaler import (
    AutoScaler,
    AutoScalerConfig,
    ScheduledScalingPolicy,
    min_hit_rate,
)
from repro.errors import ConfigurationError

MIB = 1 << 20


def make_config(**overrides) -> AutoScalerConfig:
    defaults = dict(
        db_capacity_rps=100.0,
        node_memory_bytes=MIB,
        bytes_per_item=100.0,
        max_nodes=32,
        hit_rate_margin=0.0,
        profiler="exact",
        window_requests=10_000,
    )
    defaults.update(overrides)
    return AutoScalerConfig(**defaults)


class TestEquationOne:
    def test_low_rate_needs_no_cache(self):
        assert min_hit_rate(50.0, 100.0) == 0.0
        assert min_hit_rate(100.0, 100.0) == 0.0

    def test_formula_above_capacity(self):
        assert min_hit_rate(200.0, 100.0) == pytest.approx(0.5)
        assert min_hit_rate(1000.0, 100.0) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            min_hit_rate(100.0, 0.0)
        with pytest.raises(ConfigurationError):
            min_hit_rate(-1.0, 100.0)


class TestConfigValidation:
    def test_node_bounds(self):
        with pytest.raises(ConfigurationError):
            make_config(min_nodes=0)
        with pytest.raises(ConfigurationError):
            make_config(min_nodes=5, max_nodes=2)

    def test_profiler_name(self):
        with pytest.raises(ConfigurationError):
            make_config(profiler="bogus")

    def test_margin_range(self):
        with pytest.raises(ConfigurationError):
            make_config(hit_rate_margin=1.0)


class TestDecisions:
    def feed_cyclic(self, scaler: AutoScaler, keys: int, repeats: int):
        for _ in range(repeats):
            for i in range(keys):
                scaler.observe(f"k{i}")

    def test_low_rate_scales_to_minimum(self):
        scaler = AutoScaler(make_config())
        self.feed_cyclic(scaler, keys=50, repeats=10)
        decision = scaler.decide(request_rate=50.0, current_nodes=4)
        assert decision.target_nodes == 1
        assert decision.is_scale_in
        assert decision.delta == -3

    def test_high_rate_scales_out(self):
        # 1000 distinct keys at 100 B each = ~100 KB working set; with
        # 4 nodes of 1 MiB this stays at min, but a tiny node forces more.
        scaler = AutoScaler(
            make_config(node_memory_bytes=10_000, db_capacity_rps=10.0)
        )
        self.feed_cyclic(scaler, keys=1000, repeats=5)
        decision = scaler.decide(request_rate=1000.0, current_nodes=1)
        assert decision.is_scale_out
        assert decision.target_nodes > 1

    def test_target_capped_at_max_nodes(self):
        scaler = AutoScaler(
            make_config(node_memory_bytes=1 * MIB, max_nodes=2,
                        db_capacity_rps=1.0)
        )
        self.feed_cyclic(scaler, keys=5000, repeats=3)
        decision = scaler.decide(request_rate=10_000.0, current_nodes=2)
        assert decision.target_nodes <= 2

    def test_unreachable_hit_rate_sizes_for_working_set(self):
        """All-cold traffic (no reuse) cannot reach p_min; the scaler
        must still produce a bounded decision."""
        scaler = AutoScaler(make_config(db_capacity_rps=1.0, max_nodes=8))
        for i in range(2000):
            scaler.observe(f"unique-{i}")
        decision = scaler.decide(request_rate=1000.0, current_nodes=4)
        assert 1 <= decision.target_nodes <= 8

    def test_margin_increases_target(self):
        plain = AutoScaler(make_config(hit_rate_margin=0.0))
        padded = AutoScaler(make_config(hit_rate_margin=0.05))
        self.feed_cyclic(plain, 500, 5)
        self.feed_cyclic(padded, 500, 5)
        d_plain = plain.decide(400.0, 4)
        d_padded = padded.decide(400.0, 4)
        assert d_padded.p_min > d_plain.p_min

    def test_window_reset(self):
        scaler = AutoScaler(make_config())
        scaler.observe("a")
        assert scaler.window_fill == 1
        scaler.reset_window()
        assert scaler.window_fill == 0

    def test_exact_window_rolls_over(self):
        scaler = AutoScaler(make_config(window_requests=10))
        for i in range(25):
            scaler.observe(f"k{i % 3}")
        assert scaler.window_fill <= 10

    def test_mimir_profiler_works_too(self):
        scaler = AutoScaler(make_config(profiler="mimir"))
        self.feed_cyclic(scaler, 100, 5)
        decision = scaler.decide(50.0, 2)
        assert decision.target_nodes >= 1

    def test_decision_properties(self):
        scaler = AutoScaler(make_config())
        self.feed_cyclic(scaler, 50, 4)
        decision = scaler.decide(50.0, 1)
        assert not decision.is_scale_in
        assert not decision.is_scale_out
        assert decision.delta == 0


class TestScheduledPolicy:
    def test_fires_once_at_time(self):
        policy = ScheduledScalingPolicy([(100.0, 7)])
        assert policy.pending_action(50.0, 10) is None
        decision = policy.pending_action(100.0, 10)
        assert decision is not None
        assert decision.target_nodes == 7
        assert decision.delta == -3
        assert policy.pending_action(101.0, 10) is None

    def test_noop_action_returns_none(self):
        policy = ScheduledScalingPolicy([(10.0, 5)])
        assert policy.pending_action(10.0, 5) is None
        # The action is consumed even when it is a no-op.
        assert policy.pending_action(11.0, 6) is None

    def test_actions_fire_in_order(self):
        policy = ScheduledScalingPolicy([(200.0, 8), (100.0, 9)])
        first = policy.pending_action(150.0, 10)
        assert first.target_nodes == 9
        second = policy.pending_action(250.0, 9)
        assert second.target_nodes == 8
