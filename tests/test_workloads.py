"""Tests for popularity, value sizes, key space, traces, and generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import RequestGenerator
from repro.workloads.keyspace import KeySpace, build_dataset
from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.workloads.traces import RateTrace, TRACE_FACTORIES, make_trace
from repro.workloads.valuesize import (
    FACEBOOK_ETC_SCALE,
    FACEBOOK_ETC_SHAPE,
    KEY_LENGTH,
    GeneralizedParetoSizes,
)


class TestPopularity:
    def test_samples_in_range(self):
        pop = ZipfPopularity(100, seed=1)
        samples = pop.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_probabilities_normalised(self):
        pop = ZipfPopularity(50, alpha=1.2)
        assert pop.probabilities.sum() == pytest.approx(1.0)

    def test_zipf_is_skewed(self):
        pop = ZipfPopularity(1000, alpha=1.0, seed=3)
        samples = pop.sample(20_000)
        counts = np.bincount(samples, minlength=1000)
        top_share = np.sort(counts)[::-1][:100].sum() / counts.sum()
        assert top_share > 0.5  # top 10% of keys draw most traffic

    def test_uniform_is_flat(self):
        pop = UniformPopularity(10, seed=2)
        samples = pop.sample(20_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 0.7 * counts.mean()

    def test_shuffle_decorrelates_index_and_rank(self):
        pop = ZipfPopularity(1000, alpha=1.0, seed=5, shuffle=True)
        # Without shuffling, probability would be monotone in index.
        probabilities = pop.probabilities
        assert not np.all(np.diff(probabilities) <= 0)

    def test_rank_order(self):
        pop = ZipfPopularity(100, seed=7)
        ranked = pop.rank_order()
        probs = pop.probabilities[ranked]
        assert np.all(np.diff(probs) <= 0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(0)
        with pytest.raises(ConfigurationError):
            ZipfPopularity(10, alpha=0.0)
        with pytest.raises(ConfigurationError):
            ZipfPopularity(10).sample(-1)

    def test_reseed_reproduces_stream(self):
        pop = ZipfPopularity(100, seed=9)
        first = pop.sample(50)
        pop.reseed(9)
        second = pop.sample(50)
        assert np.array_equal(first, second)


class TestValueSizes:
    def test_paper_parameters(self):
        assert FACEBOOK_ETC_SCALE == pytest.approx(214.476)
        assert FACEBOOK_ETC_SHAPE == pytest.approx(0.348148)
        assert KEY_LENGTH == 11

    def test_truncation_bounds(self):
        sampler = GeneralizedParetoSizes(min_size=10, max_size=500, seed=1)
        sizes = sampler.sample(5000)
        assert sizes.min() >= 10
        assert sizes.max() <= 500

    def test_theoretical_mean(self):
        sampler = GeneralizedParetoSizes()
        expected = FACEBOOK_ETC_SCALE / (1 - FACEBOOK_ETC_SHAPE)
        assert sampler.theoretical_mean() == pytest.approx(expected)

    def test_sample_mean_near_theory(self):
        sampler = GeneralizedParetoSizes(seed=2)
        sizes = sampler.sample(50_000)
        # Truncation at 1 MB barely matters; allow generous tolerance.
        assert sizes.mean() == pytest.approx(
            sampler.theoretical_mean(), rel=0.25
        )

    def test_quantile_monotone(self):
        sampler = GeneralizedParetoSizes()
        assert sampler.quantile(0.9) > sampler.quantile(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GeneralizedParetoSizes(scale=0.0)
        with pytest.raises(ConfigurationError):
            GeneralizedParetoSizes(min_size=0)
        with pytest.raises(ConfigurationError):
            GeneralizedParetoSizes().quantile(1.5)


class TestKeySpace:
    def test_keys_are_fixed_width(self):
        keyspace = KeySpace(1000)
        assert len(keyspace.key(0)) == KEY_LENGTH
        assert len(keyspace.key(999)) == KEY_LENGTH

    def test_roundtrip(self):
        keyspace = KeySpace(500)
        for index in (0, 17, 499):
            assert keyspace.index(keyspace.key(index)) == index

    def test_out_of_range(self):
        keyspace = KeySpace(10)
        with pytest.raises(IndexError):
            keyspace.key(10)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            KeySpace(0)


class TestDataset:
    def test_build_dataset(self):
        dataset = build_dataset(200, seed=1)
        assert dataset.num_keys == 200
        assert len(dataset.store) == 200
        assert dataset.value_size(0) >= 1

    def test_average_item_bytes_includes_overhead(self):
        dataset = build_dataset(100, seed=1)
        assert (
            dataset.average_item_bytes()
            > dataset.average_value_bytes() + KEY_LENGTH
        )

    def test_max_value_size_cap(self):
        dataset = build_dataset(500, seed=1, max_value_size=256)
        assert dataset.value_sizes.max() <= 256

    def test_total_bytes(self):
        dataset = build_dataset(50, seed=1)
        expected = int(dataset.value_sizes.sum()) + 50 * KEY_LENGTH
        assert dataset.total_bytes() == expected


class TestTraces:
    def test_registry_has_all_five(self):
        assert set(TRACE_FACTORIES) == {
            "sys",
            "etc",
            "sap",
            "nlanr",
            "microsoft",
        }

    @pytest.mark.parametrize("name", sorted(TRACE_FACTORIES))
    def test_trace_shape(self, name):
        trace = make_trace(name, duration_s=600)
        assert trace.duration_s == 600
        normalised = trace.normalised()
        assert normalised.values.max() == pytest.approx(1.0)
        assert normalised.values.min() >= 0.0

    def test_sys_has_sharp_drop(self):
        trace = make_trace("sys", duration_s=1000).normalised()
        early = trace.values[:300].mean()
        late = trace.values[500:].mean()
        assert late < 0.55 * early

    def test_etc_recovers(self):
        trace = make_trace("etc", duration_s=1000).normalised()
        middle = trace.values[400:550].mean()
        late = trace.values[850:].mean()
        assert middle < 0.7
        assert late > 0.85

    def test_nlanr_peaks_in_middle(self):
        trace = make_trace("nlanr", duration_s=1000).normalised()
        assert trace.values[450:550].mean() > trace.values[:100].mean()
        assert trace.values[450:550].mean() > trace.values[-100:].mean()

    def test_unknown_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("bogus")

    def test_scaled_peak(self):
        trace = make_trace("etc", duration_s=300)
        scaled = trace.scaled(500.0)
        assert scaled.max() == pytest.approx(500.0)

    def test_rate_at_clamps(self):
        trace = RateTrace("t", np.array([1.0, 2.0]))
        assert trace.rate_at(-5) == 1.0
        assert trace.rate_at(99) == 2.0

    def test_invalid_trace(self):
        with pytest.raises(ConfigurationError):
            RateTrace("t", np.array([]))
        with pytest.raises(ConfigurationError):
            RateTrace("t", np.array([-1.0]))


class TestRequestGenerator:
    def make_generator(self, items_per_request=3):
        dataset = build_dataset(100, seed=1)
        popularity = ZipfPopularity(100, seed=2)
        return RequestGenerator(
            dataset, popularity, items_per_request=items_per_request, seed=3
        )

    def test_request_batch_shape(self):
        generator = self.make_generator(items_per_request=3)
        batches = generator.requests_for_second(50.0)
        assert all(len(batch) == 3 for batch in batches)

    def test_poisson_mean(self):
        generator = self.make_generator()
        counts = [
            len(generator.requests_for_second(40.0)) for _ in range(200)
        ]
        assert np.mean(counts) == pytest.approx(40.0, rel=0.1)

    def test_zero_rate(self):
        generator = self.make_generator()
        assert generator.requests_for_second(0.0) == []

    def test_negative_rate_rejected(self):
        generator = self.make_generator()
        with pytest.raises(ConfigurationError):
            generator.requests_for_second(-1.0)

    def test_keys_exist_in_dataset(self):
        generator = self.make_generator()
        for batch in generator.requests_for_second(30.0):
            for key in batch:
                assert key in generator.dataset.store

    def test_key_stream_length(self):
        generator = self.make_generator()
        assert len(generator.key_stream(123)) == 123

    def test_mismatched_popularity_rejected(self):
        dataset = build_dataset(100, seed=1)
        popularity = ZipfPopularity(50, seed=2)
        with pytest.raises(ConfigurationError):
            RequestGenerator(dataset, popularity)

    def test_invalid_items_per_request(self):
        dataset = build_dataset(10, seed=1)
        popularity = ZipfPopularity(10, seed=2)
        with pytest.raises(ConfigurationError):
            RequestGenerator(dataset, popularity, items_per_request=0)
