"""Tests for the public API surface and small value types."""

import pytest

import repro
from repro.core.master import MigrationPlan, PhaseTimings
from repro.errors import (
    CapacityError,
    ConfigurationError,
    FaultError,
    FlowTimeoutError,
    MembershipError,
    MigrationAbortedError,
    MigrationError,
    ReproError,
)
from repro.memcached.items import ITEM_OVERHEAD, Item
from repro.memcached.node import MigratedItem, NodeStats


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in (
            "ElMemController",
            "FaultError",
            "FaultInjector",
            "FaultSchedule",
            "FaultSpec",
            "FlowTimeoutError",
            "MemcachedCluster",
            "MemcachedNode",
            "MigrationAbortedError",
            "RetryPolicy",
            "fuse_cache",
        ):
            assert hasattr(repro, name)

    def test_error_hierarchy(self):
        for error in (
            ConfigurationError,
            CapacityError,
            FaultError,
            MembershipError,
            MigrationError,
        ):
            assert issubclass(error, ReproError)
            assert issubclass(error, Exception)
        assert issubclass(MigrationAbortedError, MigrationError)
        assert issubclass(FlowTimeoutError, FaultError)


class TestItem:
    def test_total_size(self):
        item = Item("abc", None, 100, 0.0)
        assert item.total_size == ITEM_OVERHEAD + 3 + 100

    def test_touch_updates_only_last_access(self):
        item = Item("k", None, 10, 5.0)
        item.touch(9.0)
        assert item.last_access == 9.0
        assert item.created_at == 5.0

    def test_expiry_flags(self):
        eternal = Item("k", None, 10, 0.0)
        assert not eternal.is_expired(1e12)
        mortal = Item("k", None, 10, 0.0, exptime=10.0)
        assert not mortal.is_expired(9.9)
        assert mortal.is_expired(10.0)


class TestNodeStats:
    def test_hit_rate_empty(self):
        assert NodeStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = NodeStats(get_hits=3, get_misses=1)
        assert stats.gets == 4
        assert stats.hit_rate == pytest.approx(0.75)


class TestMigratedItem:
    def test_transfer_bytes(self):
        record = MigratedItem("abcd", None, 96, 1.0)
        assert record.transfer_bytes == 100


class TestPhaseTimings:
    def test_total_is_sum(self):
        timings = PhaseTimings(
            scoring_s=1.0,
            dump_s=2.0,
            metadata_transfer_s=3.0,
            fusecache_s=4.0,
            data_transfer_s=5.0,
            import_s=6.0,
        )
        assert timings.total_s == pytest.approx(21.0)
        breakdown = timings.breakdown()
        assert breakdown["total"] == pytest.approx(21.0)
        assert set(breakdown) == {
            "scoring",
            "hash_and_dump",
            "metadata_transfer",
            "fusecache",
            "data_migration",
            "import",
            "retries",
            "total",
        }

    def test_retry_time_counts_toward_total(self):
        timings = PhaseTimings(data_transfer_s=5.0, retry_s=2.5)
        assert timings.total_s == pytest.approx(7.5)
        assert timings.breakdown()["retries"] == pytest.approx(2.5)

    def test_plan_duration_delegates(self):
        plan = MigrationPlan(
            kind="scale_in",
            retiring=["a"],
            retained=["b"],
            new_nodes=[],
            transfers={},
            timings=PhaseTimings(scoring_s=1.5),
        )
        assert plan.duration_s == pytest.approx(1.5)
