"""Tests for the fault-injection subsystem (specs, schedules, injector,
and the network model's per-flow failure semantics)."""

import pytest

from repro.errors import ConfigurationError, FaultError, FlowTimeoutError
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import Flow, NetworkModel


def small_cluster(nodes=4):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, 4 * PAGE_SIZE)
    for i in range(200):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    return cluster


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(0.0, "disk_full", node="n0")

    def test_crash_requires_node(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(0.0, "node_crash")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(-1.0, "flow_fail")

    def test_activity_window(self):
        spec = FaultSpec(10.0, "node_stall", node="n0", duration_s=5.0)
        assert not spec.active(9.9)
        assert spec.active(10.0)
        assert spec.active(14.9)
        assert not spec.active(15.0)

    def test_crash_is_permanent(self):
        spec = FaultSpec(10.0, "node_crash", node="n0")
        assert spec.expires_at == float("inf")

    def test_flow_matching_with_wildcards(self):
        spec = FaultSpec(0.0, "flow_fail", src="a")
        assert spec.matches_flow("a", "b")
        assert spec.matches_flow("a", "c")
        assert not spec.matches_flow("b", "a")
        both = FaultSpec(0.0, "flow_fail", src="a", dst="b")
        assert both.matches_flow("a", "b")
        assert not both.matches_flow("a", "c")


class TestFaultSchedule:
    def test_specs_sorted_by_time(self):
        schedule = FaultSchedule(
            [
                FaultSpec(30.0, "flow_fail"),
                FaultSpec(10.0, "node_crash", node="n0"),
            ]
        )
        assert [spec.at_s for spec in schedule] == [10.0, 30.0]

    def test_add_keeps_order(self):
        schedule = FaultSchedule([FaultSpec(20.0, "flow_fail")])
        schedule.add(FaultSpec(5.0, "node_crash", node="n0"))
        assert schedule.specs[0].at_s == 5.0

    def test_random_is_deterministic_per_seed(self):
        nodes = [f"node-{i:03d}" for i in range(6)]
        one = FaultSchedule.random(nodes, 600.0, seed=7, intensity=1.0)
        two = FaultSchedule.random(nodes, 600.0, seed=7, intensity=1.0)
        assert one.specs == two.specs
        other = FaultSchedule.random(nodes, 600.0, seed=8, intensity=1.0)
        assert one.specs != other.specs

    def test_random_zero_intensity_is_empty(self):
        assert len(FaultSchedule.random(["a"], 100.0, intensity=0.0)) == 0

    def test_random_caps_crashes(self):
        nodes = [f"node-{i:03d}" for i in range(4)]
        schedule = FaultSchedule.random(
            nodes, 600.0, seed=1, intensity=5.0, max_crash_fraction=0.5
        )
        crashed = {
            spec.node for spec in schedule if spec.kind == "node_crash"
        }
        assert len(crashed) <= 2


class TestFaultInjector:
    def test_crash_applies_once_at_due_time(self):
        cluster = small_cluster()
        schedule = FaultSchedule(
            [FaultSpec(10.0, "node_crash", node="node-001")]
        )
        injector = FaultInjector(cluster, schedule)
        assert injector.advance(9.0) == []
        fired = injector.advance(10.0)
        assert len(fired) == 1
        assert "node-001" not in cluster.nodes
        assert injector.killed == ["node-001"]
        # Re-advancing does not re-fire.
        assert injector.advance(11.0) == []

    def test_never_kills_last_active_node(self):
        cluster = small_cluster(nodes=2)
        schedule = FaultSchedule(
            [
                FaultSpec(1.0, "node_crash", node="node-000"),
                FaultSpec(2.0, "node_crash", node="node-001"),
            ]
        )
        injector = FaultInjector(cluster, schedule)
        injector.advance(5.0)
        assert len(cluster.active_members) == 1
        assert "suppressed" in injector.applied[-1].detail

    def test_stall_factor_window(self):
        cluster = small_cluster()
        schedule = FaultSchedule(
            [
                FaultSpec(
                    10.0,
                    "node_stall",
                    node="node-002",
                    factor=0.25,
                    duration_s=20.0,
                )
            ]
        )
        injector = FaultInjector(cluster, schedule)
        injector.advance(10.0)
        assert injector.rate_factor("node-002", 15.0) == pytest.approx(0.25)
        assert injector.rate_factor("node-002", 31.0) == pytest.approx(1.0)
        assert injector.rate_factor("node-000", 15.0) == pytest.approx(1.0)

    def test_overlapping_stalls_multiply(self):
        cluster = small_cluster()
        schedule = FaultSchedule(
            [
                FaultSpec(0.0, "node_stall", node="n", factor=0.5),
                FaultSpec(0.0, "node_stall", node="n", factor=0.5),
            ]
        )
        injector = FaultInjector(cluster, schedule)
        injector.advance(0.0)
        assert injector.rate_factor("n", 1.0) == pytest.approx(0.25)

    def test_flow_disposition_fail_beats_throttle(self):
        cluster = small_cluster()
        schedule = FaultSchedule(
            [
                FaultSpec(0.0, "flow_throttle", src="a", factor=0.5),
                FaultSpec(0.0, "flow_fail", src="a", dst="b"),
            ]
        )
        injector = FaultInjector(cluster, schedule)
        injector.advance(0.0)
        assert injector.flow_disposition("a", "b", 1.0) == "fail"
        assert injector.flow_disposition("a", "c", 1.0) == pytest.approx(0.5)
        assert injector.flow_disposition("x", "y", 1.0) == pytest.approx(1.0)

    def test_summary_counts(self):
        cluster = small_cluster()
        schedule = FaultSchedule(
            [
                FaultSpec(1.0, "node_crash", node="node-003"),
                FaultSpec(2.0, "flow_fail", src="node-000"),
            ]
        )
        injector = FaultInjector(cluster, schedule)
        injector.advance(10.0)
        summary = injector.summary()
        assert summary["node_crash"] == 1
        assert summary["flow_fail"] == 1
        assert summary["crashed_nodes"] == 1


class TestNetworkFlowFaults:
    def test_attempt_flow_clean(self):
        network = NetworkModel(nic_bandwidth_bps=1000.0, connection_setup_s=1.0)
        result = network.attempt_flow(Flow("a", "b", 2000))
        assert result.ok
        assert result.duration_s == pytest.approx(3.0)

    def test_attempt_flow_refused(self):
        network = NetworkModel(
            nic_bandwidth_bps=1000.0,
            connection_setup_s=1.0,
            fault_hook=lambda src, dst, now: "fail",
        )
        result = network.attempt_flow(Flow("a", "b", 2000))
        assert not result.ok
        assert result.error == "failed"
        assert result.duration_s == pytest.approx(1.0)

    def test_attempt_flow_throttled_past_timeout(self):
        network = NetworkModel(
            nic_bandwidth_bps=1000.0,
            connection_setup_s=0.0,
            flow_timeout_s=5.0,
            fault_hook=lambda src, dst, now: 0.1,
        )
        result = network.attempt_flow(Flow("a", "b", 2000))
        assert not result.ok
        assert result.error == "timeout"
        assert result.duration_s == pytest.approx(5.0)

    def test_attempt_flow_dead_stop_times_out(self):
        network = NetworkModel(
            nic_bandwidth_bps=1000.0,
            flow_timeout_s=7.0,
            fault_hook=lambda src, dst, now: 0.0,
        )
        result = network.attempt_flow(Flow("a", "b", 10))
        assert not result.ok
        assert result.error == "timeout"
        assert result.duration_s == pytest.approx(7.0)

    def test_transfer_raises_typed_errors(self):
        refused = NetworkModel(fault_hook=lambda *a: "fail")
        with pytest.raises(FaultError):
            refused.transfer(Flow("a", "b", 10))
        stalled = NetworkModel(
            nic_bandwidth_bps=1.0, flow_timeout_s=1.0, connection_setup_s=0.0
        )
        with pytest.raises(FlowTimeoutError):
            stalled.transfer(Flow("a", "b", 1_000_000))

    def test_transfer_clean_returns_duration(self):
        network = NetworkModel(
            nic_bandwidth_bps=1000.0, connection_setup_s=0.5
        )
        assert network.transfer(Flow("a", "b", 500)) == pytest.approx(1.0)

    def test_flow_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(flow_timeout_s=0.0)
