"""Runtime invariant validators: healthy state passes, corruption raises.

Each validator gets a healthy fixture it must accept silently, plus a
deliberately corrupted variant it must reject with
:class:`~repro.errors.InvariantViolation` carrying a structured diff --
the acceptance bar for strict mode being able to catch real accounting
bugs rather than just re-deriving tautologies.
"""

import random

import pytest

from repro.check import (
    check_lru,
    check_ring,
    check_ring_remap,
    check_slabs,
)
from repro.check.strict import StrictChecker
from repro.errors import InvariantViolation
from repro.hashing.ketama import ConsistentHashRing
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MemcachedNode


def make_node(items: int = 60, seed: int = 7) -> MemcachedNode:
    node = MemcachedNode("n0", 8 * (1 << 20))
    rng = random.Random(seed)
    for index in range(items):
        node.set(
            f"key-{index:04d}",
            index,
            rng.randrange(64, 900),
            float(index),
        )
    return node


def busiest_class_id(node: MemcachedNode) -> int:
    return max(
        node.active_class_ids(),
        key=lambda cid: len(node.items_in_mru_order(cid)),
    )


# ----------------------------------------------------------------------
# LRU list integrity
# ----------------------------------------------------------------------


def test_healthy_node_passes_lru_check():
    node = make_node()
    assert check_lru(node) == node.curr_items


def test_truncated_next_pointer_is_caught():
    node = make_node()
    items = node.items_in_mru_order(busiest_class_id(node))
    assert len(items) >= 3
    items[1].next = None
    with pytest.raises(InvariantViolation) as excinfo:
        check_lru(node)
    assert excinfo.value.invariant == "lru"


def test_cycle_in_mru_list_is_caught():
    node = make_node()
    items = node.items_in_mru_order(busiest_class_id(node))
    items[-1].next = items[0]
    with pytest.raises(InvariantViolation):
        check_lru(node)


def test_broken_prev_pointer_is_caught():
    node = make_node()
    items = node.items_in_mru_order(busiest_class_id(node))
    items[2].prev = items[0]
    with pytest.raises(InvariantViolation) as excinfo:
        check_lru(node)
    assert "prev" in str(excinfo.value)


def test_unlinked_hash_table_entry_is_caught():
    node = make_node()
    items = node.items_in_mru_order(busiest_class_id(node))
    # Drop one linked item from the hash table without unlinking it.
    node._table.pop(items[0].key)
    with pytest.raises(InvariantViolation):
        check_lru(node)


def test_non_monotone_timestamps_caught_only_when_required():
    node = make_node()
    items = node.items_in_mru_order(busiest_class_id(node))
    items[-1].last_access = 1e9
    with pytest.raises(InvariantViolation) as excinfo:
        check_lru(node)
    assert excinfo.value.diff  # structured expected/actual payload
    assert check_lru(node, require_sorted_timestamps=False) > 0


# ----------------------------------------------------------------------
# Slab accounting
# ----------------------------------------------------------------------


def test_healthy_node_passes_slab_check():
    node = make_node()
    assert check_slabs(node) == node.curr_items


def test_leaked_page_is_caught():
    node = make_node()
    node.slabs.classes[busiest_class_id(node)].pages += 1
    with pytest.raises(InvariantViolation) as excinfo:
        check_slabs(node)
    assert excinfo.value.invariant == "slabs"


def test_used_chunk_drift_is_caught():
    node = make_node()
    node.slabs.classes[busiest_class_id(node)].used_chunks += 1
    with pytest.raises(InvariantViolation) as excinfo:
        check_slabs(node)
    assert "used_chunks" in excinfo.value.diff


def test_item_in_wrong_size_class_is_caught():
    node = make_node()
    class_ids = node.active_class_ids()
    assert len(class_ids) >= 2
    source, target = class_ids[0], class_ids[-1]
    item = node.items_in_mru_order(source)[0]
    node.slabs.classes[source].mru.remove(item)
    item.slab_class_id = target
    node.slabs.classes[target].mru.push_front(item)
    with pytest.raises(InvariantViolation):
        check_slabs(node)


def test_accounting_snapshot_is_consistent():
    node = make_node()
    snapshot = node.slabs.accounting()
    assert snapshot["summed_class_pages"] == snapshot["assigned_pages"]
    assert snapshot["items"] == snapshot["used_chunks"] == node.curr_items


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


def test_healthy_ring_passes():
    ring = ConsistentHashRing(["a", "b", "c"])
    check_ring(ring)
    check_ring(ring, nodes=["a", "b", "c", "spare"])


def test_ring_with_dead_member_is_caught():
    ring = ConsistentHashRing(["a", "b", "c"])
    with pytest.raises(InvariantViolation) as excinfo:
        check_ring(ring, nodes=["a", "b"])
    assert excinfo.value.diff["dead_members"]["actual"] == ["c"]


def test_empty_ring_is_caught():
    ring = ConsistentHashRing(["a"])
    ring.remove_node("a")
    with pytest.raises(InvariantViolation):
        check_ring(ring)


def test_warm_lookup_cache_passes_audit():
    ring = ConsistentHashRing(["a", "b", "c"])
    ring.lookup_many([f"key-{i}" for i in range(500)])
    check_ring(ring)


def test_stale_cache_entry_is_caught():
    """A cache entry that survived a membership change must be flagged."""
    ring = ConsistentHashRing(["a", "b", "c"])
    keys = [f"key-{i}" for i in range(200)]
    ring.lookup_many(keys)
    victim = next(
        key for key in keys if ring.node_for_key(key) != "a"
    )
    ring._cache[victim] = "a"  # simulate a missed invalidation
    with pytest.raises(InvariantViolation) as excinfo:
        check_ring(ring)
    assert "stale" in str(excinfo.value)
    assert excinfo.value.diff["owner"]["actual"] == "a"


def test_overfull_lookup_cache_is_caught():
    ring = ConsistentHashRing(["a", "b"], lookup_cache_size=4)
    for index in range(20):
        key = f"key-{index}"
        ring._cache[key] = ring.uncached_lookup(key)
    with pytest.raises(InvariantViolation) as excinfo:
        check_ring(ring)
    assert "capacity" in str(excinfo.value)


def test_cache_audit_limit_bounds_the_scan():
    """The audit must stop at ``cache_audit_limit`` entries."""
    ring = ConsistentHashRing(["a", "b", "c"])
    keys = [f"key-{i}" for i in range(100)]
    ring.lookup_many(keys)
    # Poison one entry; with a zero audit budget the check cannot see it.
    ring._cache[keys[0]] = (
        "b" if ring.uncached_lookup(keys[0]) != "b" else "c"
    )
    check_ring(ring, cache_audit_limit=0)
    with pytest.raises(InvariantViolation):
        check_ring(ring, cache_audit_limit=len(keys))


def test_remap_fraction_on_removal():
    members = [f"node-{i:03d}" for i in range(5)]
    fraction = check_ring_remap(members, remove=members[2])
    assert 0.0 < fraction < 0.5  # ideal 1/5 within tolerance


def test_remap_fraction_on_addition():
    members = [f"node-{i:03d}" for i in range(5)]
    fraction = check_ring_remap(members, add="node-005")
    assert 0.0 < fraction < 0.4  # ideal 1/6 within tolerance


def test_remap_requires_exactly_one_change():
    with pytest.raises(InvariantViolation):
        check_ring_remap(["a", "b"])
    with pytest.raises(InvariantViolation):
        check_ring_remap(["a", "b"], add="c", remove="a")


# ----------------------------------------------------------------------
# StrictChecker plumbing
# ----------------------------------------------------------------------


def test_strict_checker_counts_and_skips_dead_nodes():
    cluster = MemcachedCluster(["n0", "n1"], 8 * (1 << 20))
    cluster.nodes["n0"].set("k", 1, 100, 1.0)
    checker = StrictChecker(cluster)
    checked = checker.check_nodes("plan", ["n0", "n1", "long-gone"])
    assert checked == 2
    assert checker.checks_run == 4  # lru + slabs per live node
    checker.check_cluster_ring("switch")
    assert checker.checks_run == 5


def test_strict_checker_surfaces_corruption():
    cluster = MemcachedCluster(["n0", "n1"], 8 * (1 << 20))
    node = cluster.nodes["n0"]
    node.set("k", 1, 100, 1.0)
    node.slabs.classes[node.active_class_ids()[0]].used_chunks += 3
    checker = StrictChecker(cluster)
    with pytest.raises(InvariantViolation):
        checker.check_nodes("import", ["n0"])
