"""Tests for trace CSV I/O and resampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import RateTrace, make_trace


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = make_trace("sys", duration_s=120)
        path = tmp_path / "sys.csv"
        trace.to_csv(path)
        loaded = RateTrace.from_csv(path)
        assert loaded.name == "sys"
        assert np.allclose(loaded.values, trace.values, atol=1e-9)

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("second,rate\n0,1.5\n1,2.5\n")
        loaded = RateTrace.from_csv(path, name="custom")
        assert loaded.name == "custom"
        assert list(loaded.values) == [1.5, 2.5]

    def test_single_column(self, tmp_path):
        path = tmp_path / "flat.csv"
        path.write_text("1.0\n2.0\n3.0\n")
        loaded = RateTrace.from_csv(path)
        assert list(loaded.values) == [1.0, 2.0, 3.0]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("rate\n")
        with pytest.raises(ConfigurationError):
            RateTrace.from_csv(path)


class TestResampling:
    def test_upsample_preserves_endpoints(self):
        trace = RateTrace("t", np.array([1.0, 3.0]))
        resampled = trace.resampled(5)
        assert resampled.duration_s == 5
        assert resampled.values[0] == pytest.approx(1.0)
        assert resampled.values[-1] == pytest.approx(3.0)

    def test_downsample(self):
        trace = make_trace("etc", duration_s=1000)
        short = trace.resampled(100)
        assert short.duration_s == 100
        # The overall shape (mean) is preserved.
        assert short.values.mean() == pytest.approx(
            trace.values.mean(), rel=0.05
        )

    def test_invalid_duration(self):
        trace = RateTrace("t", np.array([1.0]))
        with pytest.raises(ConfigurationError):
            trace.resampled(0)

    def test_loaded_trace_drives_experiment(self, tmp_path):
        """End to end: a user-provided CSV trace runs the simulator."""
        from repro.sim.experiment import ExperimentConfig, run_experiment

        path = tmp_path / "mine.csv"
        RateTrace("mine", np.full(30, 1.0)).to_csv(path)
        config = ExperimentConfig(
            trace=RateTrace.from_csv(path),
            policy="baseline",
            num_keys=2000,
            initial_nodes=2,
            memory_per_node=4 * (1 << 20),
            peak_request_rate=20.0,
            max_value_size=800,
            warmup_seconds=2,
            seed=1,
        )
        result = run_experiment(config)
        assert len(result.metrics) == 30
