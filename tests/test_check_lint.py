"""The REPnnn lint rules each fire on a minimal bad fixture.

One synthetic fixture per rule, plus the scoping and suppression
behaviour the framework promises: rules stay inside their packages, the
``repro: allow[CODE]`` marker silences a single line, and the real tree
under ``src/repro`` is clean.
"""

from pathlib import Path

import pytest

from repro.check import lint_paths, lint_source, rule_catalogue

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(violations):
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# One bad fixture per rule
# ----------------------------------------------------------------------


def test_rep001_wall_clock_in_sim_code():
    source = (
        "import time\n"
        "def measure():\n"
        "    return time.perf_counter()\n"
    )
    assert "REP001" in codes(lint_source(source, "repro.sim.fake"))


def test_rep001_wall_clock_import_from():
    source = "from time import perf_counter\n"
    assert "REP001" in codes(lint_source(source, "repro.core.fake"))


def test_rep001_datetime_now():
    source = (
        "import datetime\n"
        "def stamp():\n"
        "    return datetime.datetime.now()\n"
    )
    assert "REP001" in codes(lint_source(source, "repro.workloads.fake"))


def test_rep002_module_global_rng():
    source = "import random\nx = random.random()\n"
    assert "REP002" in codes(lint_source(source, "repro.sim.fake"))


def test_rep002_unseeded_random_instance():
    source = "import random\nrng = random.Random()\n"
    assert "REP002" in codes(lint_source(source, "repro.sim.fake"))


def test_rep002_unseeded_numpy_default_rng():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert "REP002" in codes(lint_source(source, "repro.sim.fake"))


def test_rep003_mutable_default_argument():
    source = "def collect(into=[]):\n    return into\n"
    assert "REP003" in codes(lint_source(source, "repro.analysis.fake"))


def test_rep004_bare_except():
    source = (
        "def swallow():\n"
        "    try:\n"
        "        pass\n"
        "    except:\n"
        "        pass\n"
    )
    assert "REP004" in codes(lint_source(source, "repro.faults.fake"))


def test_rep005_float_equality_on_sim_time():
    source = (
        "def same(a, b):\n"
        "    return a.last_access == b.last_access\n"
    )
    assert "REP005" in codes(lint_source(source, "repro.sim.fake"))


def test_rep005_suffix_match():
    source = "def check(created_at, x):\n    return created_at != x\n"
    assert "REP005" in codes(lint_source(source, "repro.core.fake"))


def test_rep006_private_cache_state_outside_memcached():
    source = (
        "def poke(node):\n"
        "    return node._table\n"
    )
    assert "REP006" in codes(lint_source(source, "repro.core.fake"))


def test_rep007_missing_annotations_on_public_function():
    source = "def route(key):\n    return key\n"
    found = codes(lint_source(source, "repro.core.fake"))
    # Both the unannotated parameter and the missing return fire.
    assert found.count("REP007") == 2


def test_rep008_print_in_library_code():
    source = "def report():\n    print('done')\n"
    assert "REP008" in codes(lint_source(source, "repro.obs.fake"))


# ----------------------------------------------------------------------
# Scoping, clean code, suppression
# ----------------------------------------------------------------------


def test_wall_clock_allowed_outside_simulated_packages():
    source = "import time\nstart = time.perf_counter()\n"
    assert lint_source(source, "repro.obs.fake") == []
    assert lint_source(source, "repro.cli") == []


def test_private_state_allowed_inside_memcached_and_on_self():
    source = "def poke(node):\n    return node._table\n"
    # (REP007 still applies inside repro.memcached; only REP006 is off.)
    assert "REP006" not in codes(lint_source(source, "repro.memcached.fake"))
    on_self = (
        "class Node:\n"
        "    def size(self) -> int:\n"
        "        return len(self._table)\n"
    )
    assert lint_source(on_self, "repro.core.fake") == []


def test_seeded_rng_and_sentinel_comparisons_are_clean():
    source = (
        "import random\n"
        "import numpy as np\n"
        "rng = random.Random(3)\n"
        "gen = np.random.default_rng(3)\n"
        "def never_expires(expires_at):\n"
        "    return expires_at == 0.0\n"
        "def unset(deadline):\n"
        "    return deadline == None\n"
    )
    assert lint_source(source, "repro.sim.fake") == []


def test_print_allowed_in_cli_and_analysis():
    source = "def report():\n    print('done')\n"
    assert lint_source(source, "repro.cli") == []
    assert lint_source(source, "repro.analysis.fake") == []


def test_annotated_and_private_functions_pass_rep007():
    source = (
        "def route(key: str) -> str:\n"
        "    return key\n"
        "def _helper(key):\n"
        "    return key\n"
    )
    assert lint_source(source, "repro.core.fake") == []


def test_allow_marker_suppresses_a_single_line():
    flagged = "def report():\n    print('done')\n"
    allowed = (
        "def report():\n"
        "    print('done')  # repro: allow[REP008]\n"
    )
    assert codes(lint_source(flagged, "repro.obs.fake")) == ["REP008"]
    assert lint_source(allowed, "repro.obs.fake") == []


def test_allow_marker_is_code_specific():
    source = (
        "def report():\n"
        "    print('done')  # repro: allow[REP001]\n"
    )
    assert "REP008" in codes(lint_source(source, "repro.obs.fake"))


# ----------------------------------------------------------------------
# The catalogue and the real tree
# ----------------------------------------------------------------------


def test_catalogue_lists_all_eight_rules():
    entries = rule_catalogue()
    assert [code for code, _, _ in entries] == [
        f"REP00{i}" for i in range(1, 9)
    ]


def test_source_tree_is_clean():
    violations = lint_paths([SRC])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_violation_render_format():
    violations = lint_source(
        "def report():\n    print('x')\n", "repro.obs.fake"
    )
    assert len(violations) == 1
    rendered = violations[0].render()
    assert "REP008" in rendered and "no-print-in-library" in rendered
    assert rendered.startswith("<repro.obs.fake>:2:")


@pytest.mark.parametrize("bad_path", ["src/repro/sim", "src/repro/core"])
def test_lint_paths_accepts_subdirectories(bad_path):
    root = SRC.parent.parent / bad_path
    assert lint_paths([root]) == []
