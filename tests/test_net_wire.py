"""Wire-layer tests for the live tier's protocol framing.

The asyncio server hands the incremental parser whatever chunks the
socket delivers, so correctness hinges on two properties exercised
here: (1) byte-at-a-time and mid-payload fragmentation produce exactly
the same responses as one big write, and (2) pipelined bursts answer
every command in order.  The migration commands (``ts_dump``,
``mig_export``, ``batch_import``) get the same treatment, plus a
flags round-trip across an export/import hop.
"""

import pytest

from repro.memcached.node import MemcachedNode
from repro.memcached.protocol import TextProtocolServer
from repro.memcached.slab import PAGE_SIZE


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def node() -> MemcachedNode:
    return MemcachedNode("n0", 8 * PAGE_SIZE)


@pytest.fixture
def server(node, clock) -> TextProtocolServer:
    return TextProtocolServer(node, clock)


def storage_wire(key: str, payload: bytes, flags: int = 0) -> bytes:
    return (
        f"set {key} {flags} 0 {len(payload)}".encode()
        + b"\r\n"
        + payload
        + b"\r\n"
    )


def feed_in_chunks(server, wire: bytes, chunk_size: int) -> bytes:
    out = []
    for start in range(0, len(wire), chunk_size):
        out.append(server.feed(wire[start : start + chunk_size]))
    return b"".join(out)


class TestFragmentation:
    """Responses must not depend on where the stream is split."""

    WIRE = (
        storage_wire("greeting", b"Hello, world!", flags=7)
        + b"get greeting\r\n"
        + b"delete greeting\r\n"
        + b"get greeting\r\n"
    )

    def expected(self, clock) -> bytes:
        reference = TextProtocolServer(
            MemcachedNode("ref", 8 * PAGE_SIZE), clock
        )
        return reference.feed(self.WIRE)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 7, 64])
    def test_chunked_equals_whole(self, server, clock, chunk_size):
        assert (
            feed_in_chunks(server, self.WIRE, chunk_size)
            == self.expected(clock)
        )

    def test_split_mid_payload(self, server):
        wire = storage_wire("k", b"0123456789")
        head, tail = wire[:20], wire[20:]
        assert server.feed(head) == b""
        assert server.feed(tail) == b"STORED\r\n"

    def test_split_mid_command_line(self, server):
        assert server.feed(b"ver") == b""
        assert server.feed(b"sion\r\n").startswith(b"VERSION")

    def test_split_between_payload_and_crlf(self, server):
        wire = storage_wire("k", b"abc")
        assert server.feed(wire[:-2]) == b""
        assert server.feed(wire[-2:]) == b"STORED\r\n"


class TestPipelining:
    def test_burst_answers_in_order(self, server):
        wire = (
            storage_wire("a", b"1")
            + storage_wire("b", b"22")
            + b"get a\r\n"
            + b"get b\r\n"
            + b"get ghost\r\n"
        )
        assert server.feed(wire) == (
            b"STORED\r\nSTORED\r\n"
            b"VALUE a 0 1\r\n1\r\nEND\r\n"
            b"VALUE b 0 2\r\n22\r\nEND\r\n"
            b"END\r\n"
        )

    def test_error_does_not_derail_pipeline(self, server):
        wire = b"bogus_command\r\n" + storage_wire("k", b"v") + b"get k\r\n"
        assert server.feed(wire) == (
            b"ERROR\r\nSTORED\r\nVALUE k 0 1\r\nv\r\nEND\r\n"
        )


class TestMigrationFraming:
    def seed(self, server, clock):
        for i in range(4):
            clock.now = float(i)
            assert (
                server.feed(storage_wire(f"key-{i}", b"x" * 16, flags=i))
                == b"STORED\r\n"
            )

    def test_ts_dump_fragmented(self, server, clock):
        self.seed(server, clock)
        out = feed_in_chunks(server, b"ts_dump 0\r\n", 1)
        lines = out.splitlines()
        assert lines[-1] == b"END"
        keys = [line.split()[1] for line in lines[:-1]]
        assert keys == [b"key-3", b"key-2", b"key-1", b"key-0"]

    def test_mig_export_fragmented_keys(self, server, clock):
        """Key lines of an in-flight mig_export may arrive split."""
        self.seed(server, clock)
        wire = b"mig_export 2\r\nkey-1\r\nkey-3\r\n"
        out = feed_in_chunks(server, wire, 3)
        assert out == (
            b"ITEM key-1 1 1.0 16\r\n" + b"x" * 16 + b"\r\n"
            b"ITEM key-3 3 3.0 16\r\n" + b"x" * 16 + b"\r\n"
            b"END\r\n"
        )

    def test_mig_export_skips_missing_keys(self, server, clock):
        self.seed(server, clock)
        out = server.feed(b"mig_export 2\r\nghost\r\nkey-0\r\n")
        assert out.startswith(b"ITEM key-0 ")
        assert b"ghost" not in out

    def test_batch_import_fragmented_payload(self, server, clock):
        clock.now = 9.0
        wire = (
            b"batch_import merge 2\r\n"
            b"alpha 1.5 4 11\r\nAAAA\r\n"
            b"beta 2.5 4 0\r\nBBBB\r\n"
        )
        out = feed_in_chunks(server, wire, 5)
        assert out == b"IMPORTED 2\r\n"
        assert server.feed(b"get alpha\r\n") == (
            b"VALUE alpha 11 4\r\nAAAA\r\nEND\r\n"
        )

    def test_flags_survive_export_import_hop(self, node, server, clock):
        """flags set on the source come back out of the destination."""
        self.seed(server, clock)
        exported = server.feed(b"mig_export 1\r\nkey-2\r\n")
        assert exported.startswith(b"ITEM key-2 2 2.0 16\r\n")
        dst = TextProtocolServer(
            MemcachedNode("dst", 8 * PAGE_SIZE), clock
        )
        # Re-frame the export as a batch_import, as LiveCluster does.
        header = exported.splitlines()[0].split()
        _, key, flags, last_access, size = header
        import_wire = (
            b"batch_import merge 1\r\n"
            + b" ".join([key, last_access, size, flags])
            + b"\r\n"
            + b"x" * 16
            + b"\r\n"
        )
        assert dst.feed(import_wire) == b"IMPORTED 1\r\n"
        assert dst.feed(b"get key-2\r\n") == (
            b"VALUE key-2 2 16\r\n" + b"x" * 16 + b"\r\nEND\r\n"
        )

    def test_import_timestamps_ignore_server_clock(self, server, clock):
        """merge-mode installs keep the shipped last_access, which is
        what makes socket and in-process migrations byte-identical."""
        clock.now = 500.0
        server.feed(
            b"batch_import merge 1\r\nold 12.25 3 0\r\nabc\r\n"
        )
        assert server.feed(b"ts_dump 0\r\n") == (
            b"TS old 12.25 3\r\nEND\r\n"
        )

    def test_duplicate_import_keys_rejected(self, server):
        out = server.feed(
            b"batch_import merge 2\r\n"
            b"dup 1.0 1 0\r\nA\r\n"
            b"dup 2.0 1 0\r\nB\r\n"
        )
        assert out.startswith(b"CLIENT_ERROR duplicate key")
