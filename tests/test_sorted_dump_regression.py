"""Regression tests: FuseCache inputs must survive MRU-order drift.

The paper's batch import prepends migrated items at the MRU head, which
breaks the "MRU order == timestamp order" identity FuseCache's binary
searches rely on.  An early version of this code fed the drifted lists
straight into FuseCache and span forever; these tests pin the two-part
fix: Agents re-sort their dumps, and FuseCache fails loudly (instead of
hanging) if handed unsorted data anyway.
"""

import pytest

from repro.core.agent import Agent
from repro.core.fusecache import fuse_cache
from repro.core.master import Master
from repro.errors import ConfigurationError
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MemcachedNode, MigratedItem
from repro.memcached.slab import PAGE_SIZE


def drifted_node(name="drifted") -> MemcachedNode:
    """A node whose MRU lists are NOT in timestamp order."""
    node = MemcachedNode(name, 4 * PAGE_SIZE)
    for i in range(50):
        node.set(f"new-{i:03d}", i, 150, 1000.0 + i)
    # Prepend-mode import of *older* items: they land at the head.
    old_items = [
        MigratedItem(f"old-{i:03d}", i, 150, float(i)) for i in range(50)
    ]
    node.batch_import(old_items, mode="prepend")
    # Sanity: the drift is real.
    class_id = node.active_class_ids()[0]
    timestamps = [ts for _, ts in node.dump_timestamps(class_id)]
    assert timestamps != sorted(timestamps, reverse=True)
    return node


class TestAgentSortsDumps:
    def test_dump_and_hash_lists_sorted_despite_drift(self):
        cluster = MemcachedCluster(["a", "b", "c"], 4 * PAGE_SIZE)
        node = cluster.nodes["a"]
        for i in range(50):
            node.set(f"new-{i:03d}", i, 150, 1000.0 + i)
        node.batch_import(
            [
                MigratedItem(f"old-{i:03d}", i, 150, float(i))
                for i in range(50)
            ],
            mode="prepend",
        )
        ring = cluster.ring_for(["b", "c"])
        grouped = Agent(node).dump_and_hash(ring)
        for per_class in grouped.values():
            for entries in per_class.values():
                timestamps = [ts for _, ts in entries]
                assert timestamps == sorted(timestamps, reverse=True)

    def test_sorted_timestamps_helper(self):
        node = drifted_node()
        agent = Agent(node)
        for class_id in node.active_class_ids():
            timestamps = agent.sorted_timestamps(class_id)
            assert timestamps == sorted(timestamps, reverse=True)


class TestFuseCacheFailsLoudOnUnsorted:
    def test_unsorted_input_raises_instead_of_hanging(self):
        # Found by random search: unsorted inputs on which the pruning
        # loop makes no progress.  The convergence cap must fire.
        lists = [
            [100.0, 50.0, 1.0, 100.0, 50.0, 50.0, 100.0],
            [
                2.0, 50.0, 50.0, 1.0, 100.0, 100.0, 1.0, 0.0, 2.0, 2.0,
                2.0, 0.0, 100.0, 1.0, 2.0, 100.0, 1.0, 50.0, 100.0, 2.0,
                50.0, 0.0, 0.0, 100.0, 0.0, 0.0, 1.0, 1.0, 0.0, 2.0,
                0.0, 50.0,
            ],
        ]
        with pytest.raises(ConfigurationError):
            fuse_cache(lists, 22)

    def test_sorted_input_still_fine(self):
        lists = [[float(x) for x in range(200, 0, -1)] for _ in range(3)]
        assert sum(fuse_cache(lists, 100)) == 100


class TestSecondScalingAfterPrependImport:
    def test_two_scale_ins_with_prepend_mode(self):
        """The exact scenario that used to hang: scale in twice with the
        paper's prepend import in between."""
        cluster = MemcachedCluster(
            [f"n{i}" for i in range(4)], 4 * PAGE_SIZE
        )
        for i in range(2000):
            cluster.set(f"key-{i:05d}", i, 150, float(i))
        master = Master(cluster, import_mode="prepend")
        for _ in range(2):
            plan = master.plan_scale_in(master.choose_retiring(1))
            master.execute(plan)
        assert len(cluster.active_members) == 2
