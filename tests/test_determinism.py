"""Determinism regression: one seed, two runs, identical results.

Runs the same strict-mode experiment twice and asserts the headline
metrics, the per-second series, the migration outcomes, and the exported
telemetry JSONL are bit-identical -- modulo the wall-clock span fields
(``start_wall_s``/``end_wall_s``/``wall_s``), which measure the host
machine and are the only sanctioned nondeterminism.
"""

import json

from repro.loadgen import build_schedule, run_load, tape_rows
from repro.memcached.slab import PAGE_SIZE
from repro.net.server import LiveClusterHarness
from repro.obs import create_telemetry
from repro.obs.export import write_jsonl
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.traces import make_trace

WALL_FIELDS = {"start_wall_s", "end_wall_s", "wall_s"}

# Load-report fields that measure the host machine rather than the
# tape: everything else must be bit-identical across same-seed runs.
LOADGEN_WALL_FIELDS = {
    "wall_seconds",
    "achieved_rate",
    "late_sends",
    "response_ms",
    "service_ms",
    "lateness_ms",
    # Per-second curve rows: the op *counts* follow the tape (ops are
    # charged to their scheduled second), but the latency quantiles
    # inside each bucket measure the host.
    "p50_ms",
    "p99_ms",
}


def scrub_loadgen(value):
    """Recursively drop wall-clock fields from a load-report value."""
    if isinstance(value, dict):
        return {
            key: scrub_loadgen(item)
            for key, item in value.items()
            if key not in LOADGEN_WALL_FIELDS
        }
    if isinstance(value, list):
        return [scrub_loadgen(item) for item in value]
    return value


def scrub(value):
    """Recursively drop wall-clock fields from a decoded JSON value."""
    if isinstance(value, dict):
        return {
            key: scrub(item)
            for key, item in value.items()
            if key not in WALL_FIELDS
        }
    if isinstance(value, list):
        return [scrub(item) for item in value]
    return value


def run_once(tmp_path, tag):
    telemetry = create_telemetry()
    config = ExperimentConfig(
        trace=make_trace("sys", duration_s=150),
        policy="elmem",
        duration_s=150,
        num_keys=20_000,
        initial_nodes=5,
        schedule=[(60.0, 4)],
        seed=11,
        strict_checks=True,
        telemetry=telemetry,
    )
    result = run_experiment(config)
    path = write_jsonl(
        tmp_path / f"{tag}.jsonl",
        tracer=telemetry.tracer,
        metrics=telemetry.metrics,
        meta={"seed": config.seed},
    )
    return result, path


def test_same_seed_reproduces_everything(tmp_path):
    first, first_path = run_once(tmp_path, "first")
    second, second_path = run_once(tmp_path, "second")

    assert first.summary() == second.summary()
    assert list(first.metrics.hit_rates()) == list(
        second.metrics.hit_rates()
    )
    assert list(first.metrics.p95_series_ms()) == list(
        second.metrics.p95_series_ms()
    )
    assert first.scaling_times == second.scaling_times
    assert [r.outcome for r in first.reports] == [
        r.outcome for r in second.reports
    ]

    first_lines = first_path.read_text().splitlines()
    second_lines = second_path.read_text().splitlines()
    assert len(first_lines) == len(second_lines)
    for left, right in zip(first_lines, second_lines):
        assert scrub(json.loads(left)) == scrub(json.loads(right))


def test_loadgen_same_seed_same_tape_across_runs():
    """Two same-seed load runs replay the identical request tape.

    Everything the tape determines -- op mix, keys, deadlines, outcome
    counters against a seeded cluster -- must match bit for bit; only
    the wall-clock measurements (latency quantiles, achieved rate,
    lateness) are allowed to differ between runs.
    """
    reports = []
    for _ in range(2):
        with LiveClusterHarness(["d0", "d1"], 8 * PAGE_SIZE) as harness:
            reports.append(
                run_load(
                    150.0,
                    0.4,
                    seed=21,
                    endpoints=harness.endpoints,
                    num_keys=100,
                    set_fraction=0.2,
                )
            )
    first, second = (report.to_dict() for report in reports)
    scrubbed = [scrub_loadgen(report) for report in (first, second)]
    assert scrubbed[0] == scrubbed[1]
    assert first["tape_sha256"] == second["tape_sha256"]
    # Sanity: the scrub left the load-bearing fields in place.
    assert scrubbed[0]["ops_total"] > 0
    assert scrubbed[0]["ops_ok"] == scrubbed[0]["ops_total"]
    assert scrubbed[0]["misses"] == 0  # seeded cluster: every get hits


def test_loadgen_different_seeds_diverge():
    first = tape_rows(build_schedule(150.0, 0.4, seed=21, num_keys=100))
    second = tape_rows(build_schedule(150.0, 0.4, seed=22, num_keys=100))
    assert first != second


def test_different_seeds_actually_diverge(tmp_path):
    """Guard against the scrubber (or the sim) flattening everything."""
    telemetry = None
    results = []
    for seed in (11, 12):
        config = ExperimentConfig(
            trace=make_trace("sys", duration_s=120),
            policy="elmem",
            duration_s=120,
            num_keys=20_000,
            initial_nodes=5,
            schedule=[(50.0, 4)],
            seed=seed,
            telemetry=telemetry,
        )
        results.append(run_experiment(config).summary())
    assert results[0] != results[1]
