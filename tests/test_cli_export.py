"""Tests for the CLI and the metrics exporters."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.export import metrics_to_rows, read_csv, write_csv, write_json
from repro.sim.metrics import MetricsCollector, SecondRecord


def make_metrics(seconds=5):
    metrics = MetricsCollector()
    for t in range(seconds):
        metrics.add(
            SecondRecord(
                time=float(t),
                requests=10,
                kv_gets=40,
                hits=36,
                misses=4,
                secondary_hits=1,
                p95_rt_ms=5.0 + t,
                mean_rt_ms=2.0,
                db_latency_ms=4.0,
                active_nodes=3,
                db_backlog=0.0,
            )
        )
    return metrics


class TestExport:
    def test_rows_have_all_fields(self):
        rows = metrics_to_rows(make_metrics())
        assert len(rows) == 5
        assert rows[0]["hit_rate"] == pytest.approx(0.9)
        assert rows[3]["p95_rt_ms"] == pytest.approx(8.0)

    def test_csv_roundtrip(self, tmp_path):
        metrics = make_metrics()
        path = write_csv(metrics, tmp_path / "metrics.csv")
        rows = read_csv(path)
        assert len(rows) == 5
        assert rows[0]["active_nodes"] == 3.0

    def test_json_export(self, tmp_path):
        path = write_json(make_metrics(), tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert len(payload["records"]) == 5
        assert "summary" in payload


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_traces_command(self, capsys):
        assert main(["traces", "--duration", "600"]) == 0
        out = capsys.readouterr().out
        for name in ("sys", "etc", "sap", "nlanr", "microsoft"):
            assert name in out

    def test_cost_command(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "204.0 W" in out
        assert "+47%" in out

    def test_fusecache_command(self, capsys):
        assert main(["fusecache", "--items", "1024", "--lists", "4"]) == 0
        out = capsys.readouterr().out
        assert "FuseCache" in out
        assert "k-way merge" in out

    def test_mrc_command(self, capsys):
        assert (
            main(
                [
                    "mrc",
                    "--requests",
                    "3000",
                    "--profiler",
                    "exact",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hit rate" in out

    @pytest.mark.slow
    def test_run_command_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "run",
                "--trace",
                "sys",
                "--policy",
                "baseline",
                "--duration",
                "30",
                "--scale",
                "10:9",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        rows = read_csv(csv_path)
        assert len(rows) == 30
