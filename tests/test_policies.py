"""Tests for the four migration policies."""

import random

import pytest

from repro.core.master import Master
from repro.core.policies import (
    BaselinePolicy,
    CacheScalePolicy,
    ElMemPolicy,
    NaivePolicy,
    make_policy,
)
from repro.errors import MigrationError
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE
from repro.netsim.transfer import NetworkModel


def bound_policy(policy, nodes=4, items=400, memory_pages=4):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, memory_pages * PAGE_SIZE)
    for i in range(items):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    master = Master(
        cluster,
        network=NetworkModel(nic_bandwidth_bps=1e6, connection_setup_s=0.1),
    )
    policy.bind(cluster, master, random.Random(1))
    return cluster, master


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in ("baseline", "elmem", "naive", "cachescale"):
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(MigrationError):
            make_policy("bogus")


class TestBaselinePolicy:
    def test_scale_in_is_immediate_and_cold(self):
        policy = BaselinePolicy()
        cluster, _ = bound_policy(policy)
        before = cluster.total_items()
        policy.on_scale_decision(3, now=10.0)
        assert len(cluster.active_members) == 3
        assert not policy.pending
        # Items on the retired node are simply lost.
        assert cluster.total_items() < before

    def test_scale_out_adds_cold_nodes(self):
        policy = BaselinePolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(6, now=10.0)
        assert len(cluster.active_members) == 6
        new_nodes = [
            node
            for name, node in cluster.nodes.items()
            if name.startswith("node-0") and node.curr_items == 0
        ]
        assert len(new_nodes) >= 2

    def test_noop_decision(self):
        policy = BaselinePolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(4, now=1.0)
        assert len(cluster.active_members) == 4
        assert policy.events == []

    def test_invalid_target(self):
        policy = BaselinePolicy()
        bound_policy(policy)
        with pytest.raises(MigrationError):
            policy.on_scale_decision(0, now=1.0)


class TestElMemPolicy:
    def test_membership_switch_is_deferred(self):
        policy = ElMemPolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        assert policy.pending
        assert len(cluster.active_members) == 4  # not yet switched
        policy.tick(10.5)  # before the migration completes
        assert len(cluster.active_members) == 4

    def test_tick_executes_when_due(self):
        policy = ElMemPolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        policy.tick(10.0 + 10_000.0)
        assert not policy.pending
        assert len(cluster.active_members) == 3
        assert policy.reports
        assert policy.reports[0].items_imported > 0

    def test_concurrent_decision_skipped(self):
        policy = ElMemPolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        policy.on_scale_decision(2, now=11.0)
        policy.tick(10.0 + 10_000.0)
        assert len(cluster.active_members) == 3  # second decision ignored

    def test_scale_out_warms_new_node(self):
        policy = ElMemPolicy()
        cluster, _ = bound_policy(policy, memory_pages=8)
        policy.on_scale_decision(5, now=10.0)
        assert policy.pending
        policy.tick(10.0 + 10_000.0)
        assert len(cluster.active_members) == 5
        new_name = (set(cluster.active_members) - {
            "node-000", "node-001", "node-002", "node-003"
        }).pop()
        assert cluster.nodes[new_name].curr_items > 0

    def test_hot_items_survive_scale_in(self):
        policy = ElMemPolicy()
        cluster, master = bound_policy(policy, memory_pages=8)
        retiring = master.choose_retiring(1)[0]
        hot_keys = [
            item.key
            for class_id in cluster.nodes[retiring].active_class_ids()
            for item in cluster.nodes[retiring].items_in_mru_order(class_id)[:5]
        ]
        policy.on_scale_decision(3, now=10.0)
        policy.tick(10.0 + 10_000.0)
        for key in hot_keys:
            assert cluster.get(key, 20_000.0) is not None


class TestNaivePolicy:
    def test_scale_in_deferred_then_executed(self):
        policy = NaivePolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        assert policy.pending
        policy.tick(10.0 + 10_000.0)
        assert len(cluster.active_members) == 3
        assert policy.reports

    def test_migrates_fraction_of_victim(self):
        policy = NaivePolicy()
        cluster, _ = bound_policy(policy)
        counts = {
            name: node.curr_items for name, node in cluster.nodes.items()
        }
        policy.on_scale_decision(3, now=10.0)
        _, plan = policy._pending
        victim = plan.retiring[0]
        assert plan.items_to_migrate <= counts[victim]
        assert plan.items_to_migrate >= int(counts[victim] * 0.7) - len(
            cluster.nodes[victim].active_class_ids()
        )

    def test_scale_out_is_cold(self):
        policy = NaivePolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(5, now=10.0)
        assert not policy.pending
        assert len(cluster.active_members) == 5


class TestCacheScalePolicy:
    def test_membership_switches_immediately(self):
        policy = CacheScalePolicy(discard_after_s=100.0)
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        assert len(cluster.active_members) == 3
        assert policy.pending  # secondary still alive

    def test_secondary_hit_migrates_item(self):
        policy = CacheScalePolicy(discard_after_s=100.0)
        cluster, master = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        retired = (set(policy._secondary_only)).pop()
        node = cluster.nodes[retired]
        key = next(iter(node.keys()))
        result = policy.multiget([key], 20.0)
        assert key in result.hits
        assert result.secondary_hits == 1
        # The item moved to its new primary owner.
        primary = cluster.route(key)
        assert cluster.nodes[primary].contains(key)
        assert not node.contains(key)

    def test_secondary_discarded_after_deadline(self):
        policy = CacheScalePolicy(discard_after_s=50.0)
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        retired = set(policy._secondary_only).pop()
        policy.tick(59.0)
        assert retired in cluster.nodes
        policy.tick(60.0)
        assert retired not in cluster.nodes
        assert not policy.pending

    def test_miss_everywhere_is_a_miss(self):
        policy = CacheScalePolicy()
        cluster, _ = bound_policy(policy)
        policy.on_scale_decision(3, now=10.0)
        result = policy.multiget(["never-cached"], 20.0)
        assert result.misses == ["never-cached"]
        assert result.hit_count == 0

    def test_scale_out_uses_old_ring_as_secondary(self):
        policy = CacheScalePolicy(discard_after_s=100.0)
        cluster, _ = bound_policy(policy, memory_pages=8)
        # Find a key that will move to the new node.
        policy.on_scale_decision(5, now=10.0)
        moved = [
            key
            for key in [f"key-{i:05d}" for i in range(400)]
            if cluster.route(key) not in policy._secondary_ring.members
            or cluster.route(key)
            != policy._secondary_ring.node_for_key(key)
        ]
        assert moved, "ketama should remap some keys to the new node"
        result = policy.multiget(moved[:10], 20.0)
        # Old owners are warm, so these resolve via the secondary path.
        assert result.hit_count == 10
        assert result.secondary_hits > 0

    def test_fill_goes_to_primary(self):
        policy = CacheScalePolicy()
        cluster, _ = bound_policy(policy)
        policy.fill("fresh", "v", 100, 5.0)
        assert cluster.nodes[cluster.route("fresh")].contains("fresh")
