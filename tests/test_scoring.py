"""Tests for median-hotness node scoring (Q2)."""

import pytest

from repro.core.scoring import (
    COLD_TIMESTAMP,
    choose_nodes_to_retire,
    node_score,
    rank_nodes_by_score,
    score_nodes,
)
from repro.errors import ConfigurationError
from repro.memcached.node import MemcachedNode
from repro.memcached.slab import PAGE_SIZE

from tests.conftest import fill_node


def make_node(name: str, start_time: float, count: int = 50) -> MemcachedNode:
    node = MemcachedNode(name, 4 * PAGE_SIZE)
    fill_node(node, count, start_time=start_time, prefix=f"{name}-")
    return node


class TestNodeScore:
    def test_empty_node_is_coldest(self):
        node = MemcachedNode("empty", PAGE_SIZE)
        assert node_score(node) == COLD_TIMESTAMP

    def test_hotter_node_scores_higher(self):
        cold = make_node("cold", start_time=0.0)
        hot = make_node("hot", start_time=1000.0)
        assert node_score(hot) > node_score(cold)

    def test_unknown_method_rejected(self):
        node = make_node("n", 0.0)
        with pytest.raises(ConfigurationError):
            node_score(node, method="bogus")

    def test_score_weighted_by_page_fractions(self):
        """A node whose dominant slab is cold scores colder than one whose
        dominant slab is hot, even with one hot outlier slab."""
        mixed = MemcachedNode("mixed", 8 * PAGE_SIZE)
        # Dominant class: many cold small items (several pages).
        for i in range(3000):
            mixed.set(f"small-{i}", 1, 300, float(i))
        # Outlier: one recent large item (one page, tiny weight).
        mixed.set("big", 1, 500_000, 1_000_000.0)

        hot = MemcachedNode("hot", 8 * PAGE_SIZE)
        for i in range(3000):
            hot.set(f"small-{i}", 1, 300, 500_000.0 + i)
        assert node_score(mixed) < node_score(hot)


class TestChooseNodes:
    def test_chooses_coldest(self):
        nodes = [
            make_node("a", 3000.0),
            make_node("b", 0.0),
            make_node("c", 6000.0),
        ]
        assert choose_nodes_to_retire(nodes, 1) == ["b"]
        assert choose_nodes_to_retire(nodes, 2) == ["b", "a"]

    def test_zero_count(self):
        nodes = [make_node("a", 0.0)]
        assert choose_nodes_to_retire(nodes, 0) == []

    def test_count_validation(self):
        nodes = [make_node("a", 0.0)]
        with pytest.raises(ConfigurationError):
            choose_nodes_to_retire(nodes, 2)
        with pytest.raises(ConfigurationError):
            choose_nodes_to_retire(nodes, -1)

    def test_deterministic_tie_break(self):
        nodes = [
            MemcachedNode("b", PAGE_SIZE),
            MemcachedNode("a", PAGE_SIZE),
        ]
        assert choose_nodes_to_retire(nodes, 1) == ["a"]

    def test_score_nodes_returns_all(self):
        nodes = [make_node("a", 0.0), make_node("b", 10.0)]
        scores = score_nodes(nodes)
        assert set(scores) == {"a", "b"}

    def test_rank_order_is_coldest_first(self):
        nodes = [
            make_node("a", 5000.0),
            make_node("b", 0.0),
            make_node("c", 9000.0),
        ]
        ranked = rank_nodes_by_score(nodes)
        assert [name for name, _ in ranked] == ["b", "a", "c"]
        scores = [score for _, score in ranked]
        assert scores == sorted(scores)
