"""Tests for the cost/energy model and the elasticity-potential analysis."""

import numpy as np
import pytest

from repro.analysis.cost import (
    MEMCACHED_NODE,
    WEB_NODE,
    ServerSpec,
    cost_premium,
    energy_kwh,
    power_premium,
    power_watts,
    rental_cost_usd,
    savings_vs_static,
)
from repro.analysis.elasticity import elastic_node_series, node_savings
from repro.cache_analysis.mrc import HitRateCurve
from repro.errors import ConfigurationError
from repro.workloads.traces import RateTrace, make_trace


class TestPowerModel:
    def test_paper_web_node_power(self):
        # Section II-B: ~204 W for a 2-socket, 12 GB web node.
        assert power_watts(WEB_NODE) == pytest.approx(204.0, abs=1.0)

    def test_paper_memcached_node_power(self):
        # Section II-B: ~299 W for a 1-socket, 72 GB cache node.
        assert power_watts(MEMCACHED_NODE) == pytest.approx(299.0, abs=1.0)

    def test_power_premium_is_47_percent(self):
        assert power_premium() == pytest.approx(0.47, abs=0.01)

    def test_cost_premium_is_66_percent(self):
        assert cost_premium() == pytest.approx(0.66, abs=0.01)

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(cpu_sockets=0, memory_gb=12)
        with pytest.raises(ConfigurationError):
            ServerSpec(cpu_sockets=1, memory_gb=0)

    def test_power_monotone_in_memory(self):
        small = ServerSpec(1, 16)
        large = ServerSpec(1, 64)
        assert power_watts(large) > power_watts(small)


class TestEnergyAndCost:
    def test_energy_of_constant_tier(self):
        # 10 nodes for 3600 s at ~299 W = ~2.99 kWh.
        series = np.full(3600, 10)
        assert energy_kwh(series) == pytest.approx(2.99, abs=0.05)

    def test_energy_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            energy_kwh(np.array([-1.0]))

    def test_rental_cost(self):
        series = np.full(3600, 10)  # 10 node-hours
        assert rental_cost_usd(series) == pytest.approx(1.66)

    def test_savings_vs_static(self):
        series = np.array([10, 10, 5, 5])
        assert savings_vs_static(series) == pytest.approx(0.25)

    def test_savings_with_explicit_static(self):
        series = np.array([5, 5])
        assert savings_vs_static(series, static_nodes=10) == pytest.approx(
            0.5
        )

    def test_savings_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            savings_vs_static(np.array([]))


class TestElasticity:
    def make_curve(self):
        # 1000 requests: distances uniform in [0, 100), no cold misses ->
        # hit rate grows linearly with capacity up to 100 items.
        histogram = [10] * 100
        return HitRateCurve(histogram, cold_misses=0)

    def test_elastic_series_tracks_rate(self):
        trace = RateTrace("t", np.array([100.0, 1000.0, 100.0]))
        series = elastic_node_series(
            trace,
            peak_kv_rate=1000.0,
            db_capacity_rps=100.0,
            curve=self.make_curve(),
            bytes_per_item=1000.0,
            node_memory_bytes=10_000,
        )
        assert len(series) == 3
        assert series[1] > series[0]
        assert series[0] == series[2]

    def test_low_rate_needs_min_nodes(self):
        trace = RateTrace("t", np.array([1.0]))
        series = elastic_node_series(
            trace,
            peak_kv_rate=10.0,
            db_capacity_rps=100.0,
            curve=self.make_curve(),
            bytes_per_item=1000.0,
            node_memory_bytes=10_000,
            min_nodes=2,
        )
        assert series[0] == 2

    def test_savings_on_diurnal_trace(self):
        """A trace with a big swing should show substantial savings
        (the paper's Section II-C claim is 30-70%)."""
        # A skewed (Zipf-like) reuse curve: most hits need few items.
        histogram = [int(1000 * 0.95**d) + 1 for d in range(100)]
        curve = HitRateCurve(histogram, cold_misses=0)
        trace = make_trace("sys", duration_s=1200)
        series = elastic_node_series(
            trace,
            peak_kv_rate=2000.0,
            db_capacity_rps=150.0,
            curve=curve,
            bytes_per_item=1000.0,
            node_memory_bytes=12_000,
        )
        savings = node_savings(series)
        assert 0.15 < savings < 0.8

    def test_node_savings_validation(self):
        with pytest.raises(ConfigurationError):
            node_savings(np.array([]))

    def test_invalid_node_memory(self):
        trace = RateTrace("t", np.array([1.0]))
        with pytest.raises(ConfigurationError):
            elastic_node_series(
                trace,
                peak_kv_rate=10.0,
                db_capacity_rps=100.0,
                curve=self.make_curve(),
                bytes_per_item=1000.0,
                node_memory_bytes=0,
            )
