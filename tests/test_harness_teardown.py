"""Teardown hygiene: repeated harness cycles leak nothing.

Every live harness (backend fleet, proxy tier) owns sockets and event
loop threads.  A long test session -- or any embedding process -- sets
them up and tears them down many times, so ``stop()`` must actually
return the process to its prior state: every listener closed, every
pooled client connection closed *while its loop still runs* (a loop
stopped first strands its sockets until garbage collection), and every
loop thread joined.

Each cycle pushes real traffic through the harness first, because the
expensive state (the router's pooled backend connections, the cluster's
client pools) is dialed lazily on first use -- an idle setup/teardown
cycle has nothing to leak.  The fd assertions then keep every stopped
harness referenced and do **not** run the garbage collector before
counting: a leak that only a finalizer would clean up is still a leak.

The regression this file pins: proxy teardown used to stop the proxy
loop without closing the router, stranding the router's pooled backend
connections (one fd per touched backend per cycle).
"""

import os
import threading

import pytest

from repro.memcached.slab import PAGE_SIZE
from repro.net import LiveCluster, NodeClient
from repro.net.runtime import EventLoopThread
from repro.net.server import LiveClusterHarness
from repro.proxy import ProxyHarness

MEMORY = 8 * PAGE_SIZE
CYCLES = 3

# A couple of fds of slack for one-off lazily-created state; a
# per-cycle leak of even one socket per backend blows through this.
FD_SLACK = 2


@pytest.fixture
def loop():
    with EventLoopThread(name="teardown-test-client") as thread:
        yield thread


def open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def live_threads() -> set[str]:
    return {thread.name for thread in threading.enumerate()}


def exercise_cluster(harness: LiveClusterHarness) -> None:
    """Touch every backend so client pools actually dial."""
    with LiveCluster(harness.endpoints) as live:
        stored = live.set_many(
            [(f"cyc-{i:03d}", (0, b"x" * 16), 16) for i in range(32)]
        )
        assert stored == 32


def exercise_proxy(harness: ProxyHarness, loop: EventLoopThread) -> None:
    """Spread keys through the proxy so it dials every backend."""
    host, port = harness.proxy_endpoint
    client = NodeClient("via-proxy", host, port)
    try:
        stored = loop.call(
            client.set_many(
                (f"cyc-{i:03d}", 0, b"x" * 16) for i in range(32)
            )
        )
        assert stored == 32
        assert loop.call(client.get("cyc-000")) is not None
    finally:
        loop.call(client.close())


class TestLiveClusterHarnessTeardown:
    def test_repeated_cycles_leak_no_fds_or_threads(self):
        # Warm up once so lazily-created module state (loggers, caches)
        # does not count against the measured cycles.
        with LiveClusterHarness(["n0", "n1"], MEMORY) as harness:
            exercise_cluster(harness)
        fd_baseline = open_fds()
        thread_baseline = live_threads()
        stopped = []
        for _ in range(CYCLES):
            harness = LiveClusterHarness(["n0", "n1"], MEMORY)
            with harness:
                exercise_cluster(harness)
            stopped.append(harness)  # keep referenced: no gc rescue
        assert open_fds() <= fd_baseline + FD_SLACK
        assert live_threads() == thread_baseline


class TestProxyHarnessTeardown:
    def test_repeated_cycles_leak_no_fds_or_threads(self, loop):
        with ProxyHarness(["b0", "b1"], MEMORY) as harness:
            exercise_proxy(harness, loop)
        fd_baseline = open_fds()
        thread_baseline = live_threads()
        stopped = []
        for _ in range(CYCLES):
            harness = ProxyHarness(["b0", "b1"], MEMORY)
            with harness:
                exercise_proxy(harness, loop)
            stopped.append(harness)  # keep referenced: no gc rescue
        assert open_fds() <= fd_baseline + FD_SLACK
        assert live_threads() == thread_baseline

    def test_stop_is_idempotent(self):
        harness = ProxyHarness(["b0"], MEMORY)
        harness.start()
        harness.stop()
        harness.stop()
