"""Tests for consistent and rendezvous hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MembershipError
from repro.hashing.hashutil import hash32, hash64, points_for_vnode
from repro.hashing.ketama import ConsistentHashRing
from repro.hashing.rendezvous import RendezvousHash


class TestHashUtil:
    def test_hash64_is_stable(self):
        assert hash64("alpha") == hash64("alpha")
        assert hash64(b"alpha") == hash64("alpha")

    def test_hash64_differs_across_keys(self):
        assert hash64("alpha") != hash64("beta")

    def test_hash64_range(self):
        value = hash64("key")
        assert 0 <= value < 2**64

    def test_hash32_range(self):
        assert 0 <= hash32("key") < 2**32

    def test_points_for_vnode_count(self):
        assert len(points_for_vnode("node", 7)) == 7
        assert len(points_for_vnode("node", 8)) == 8

    def test_points_for_vnode_deterministic(self):
        assert points_for_vnode("n1", 12) == points_for_vnode("n1", 12)

    def test_points_differ_per_label(self):
        assert points_for_vnode("n1", 4) != points_for_vnode("n2", 4)


class TestConsistentHashRing:
    def test_empty_ring_rejects_lookup(self):
        ring = ConsistentHashRing()
        with pytest.raises(MembershipError):
            ring.node_for_key("k")

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        for i in range(50):
            assert ring.node_for_key(f"key{i}") == "only"

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(MembershipError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(MembershipError):
            ring.remove_node("b")

    def test_members_tracking(self):
        ring = ConsistentHashRing(["a", "b"])
        assert ring.members == {"a", "b"}
        ring.remove_node("a")
        assert ring.members == {"b"}
        assert len(ring) == 1
        assert "b" in ring and "a" not in ring

    def test_vnodes_must_be_positive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ConsistentHashRing(vnodes=0)

    def test_routing_deterministic(self):
        ring1 = ConsistentHashRing(["a", "b", "c"])
        ring2 = ConsistentHashRing(["c", "a", "b"])
        for i in range(200):
            key = f"key{i}"
            assert ring1.node_for_key(key) == ring2.node_for_key(key)

    def test_balance_is_reasonable(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(5)])
        counts = {name: 0 for name in ring.members}
        total = 5000
        for i in range(total):
            counts[ring.node_for_key(f"key{i}")] += 1
        for count in counts.values():
            assert 0.5 * total / 5 < count < 1.8 * total / 5

    def test_remap_fraction_on_removal(self):
        nodes = [f"n{i}" for i in range(10)]
        ring = ConsistentHashRing(nodes)
        before = {f"key{i}": ring.node_for_key(f"key{i}") for i in range(3000)}
        ring.remove_node("n3")
        moved = 0
        for key, owner in before.items():
            after = ring.node_for_key(key)
            if owner == "n3":
                assert after != "n3"
            elif after != owner:
                moved += 1
        # Keys not owned by the removed node must not move at all.
        assert moved == 0

    def test_addition_only_steals_keys(self):
        nodes = [f"n{i}" for i in range(9)]
        ring = ConsistentHashRing(nodes)
        before = {f"key{i}": ring.node_for_key(f"key{i}") for i in range(3000)}
        ring.add_node("new")
        stolen = 0
        for key, owner in before.items():
            after = ring.node_for_key(key)
            if after != owner:
                assert after == "new"
                stolen += 1
        # Roughly 1/(k+1) = 10% of keys move to the new node.
        assert 0.03 * len(before) < stolen < 0.25 * len(before)

    def test_set_members_converges(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        ring.set_members(["b", "c", "d", "e"])
        assert ring.members == {"b", "c", "d", "e"}

    def test_nodes_for_keys_partition(self):
        ring = ConsistentHashRing(["a", "b"])
        keys = [f"key{i}" for i in range(100)]
        grouped = ring.nodes_for_keys(keys)
        flattened = [key for bucket in grouped.values() for key in bucket]
        assert sorted(flattened) == sorted(keys)
        for node, bucket in grouped.items():
            for key in bucket:
                assert ring.node_for_key(key) == node

    def test_weighted_node_gets_more_keys(self):
        ring = ConsistentHashRing(["a", "b"], weights={"a": 3.0})
        counts = {"a": 0, "b": 0}
        for i in range(4000):
            counts[ring.node_for_key(f"key{i}")] += 1
        assert counts["a"] > counts["b"]

    @given(st.integers(min_value=2, max_value=8), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_lookup_always_returns_member(self, node_count, key_seed):
        ring = ConsistentHashRing([f"n{i}" for i in range(node_count)])
        assert ring.node_for_key(f"key{key_seed}") in ring.members


class TestRendezvousHash:
    def test_empty_rejects_lookup(self):
        with pytest.raises(MembershipError):
            RendezvousHash().node_for_key("k")

    def test_duplicate_add_rejected(self):
        hrw = RendezvousHash(["a"])
        with pytest.raises(MembershipError):
            hrw.add_node("a")

    def test_minimal_remap_on_removal(self):
        hrw = RendezvousHash([f"n{i}" for i in range(6)])
        before = {f"key{i}": hrw.node_for_key(f"key{i}") for i in range(2000)}
        hrw.remove_node("n2")
        for key, owner in before.items():
            if owner != "n2":
                assert hrw.node_for_key(key) == owner

    def test_minimal_remap_on_addition(self):
        hrw = RendezvousHash([f"n{i}" for i in range(5)])
        before = {f"key{i}": hrw.node_for_key(f"key{i}") for i in range(2000)}
        hrw.add_node("new")
        for key, owner in before.items():
            after = hrw.node_for_key(key)
            assert after in (owner, "new")

    def test_set_members(self):
        hrw = RendezvousHash(["a"])
        hrw.set_members(["x", "y"])
        assert hrw.members == {"x", "y"}

    def test_balance(self):
        hrw = RendezvousHash([f"n{i}" for i in range(4)])
        counts = {name: 0 for name in hrw.members}
        total = 4000
        for i in range(total):
            counts[hrw.node_for_key(f"key{i}")] += 1
        for count in counts.values():
            assert 0.6 * total / 4 < count < 1.5 * total / 4
