"""Smoke tests: the fast example scripts run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "OK -- scale-in without losing hot data." in out

    def test_fusecache_demo(self):
        out = run_example("fusecache_demo.py")
        assert "FuseCache" in out
        assert "polylog" in out

    def test_protocol_server(self):
        out = run_example("protocol_server.py")
        assert "VALUE greeting" in out
        assert "done." in out

    def test_rebalance_hotspot(self):
        out = run_example("rebalance_hotspot.py")
        assert "moved" in out
        assert "total rebalancing actions:" in out
