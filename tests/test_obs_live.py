"""Unit tests for the live-observability layer.

Covers the satellite checklist of the observability PR:

- bucket-interpolated :meth:`Histogram.quantile` (empty / single-bucket /
  overflow edge cases),
- Prometheus label-value escaping regression (backslash, quote, newline
  roundtrip through export -> parse),
- :mod:`repro.obs.livetrace` (frame validation, seeded determinism,
  sampling, JSONL roundtrip, stitching),
- :mod:`repro.obs.scrape` parse-back and quantile estimation,
- the ``repro top`` renderer as a pure function of canned samples.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import to_prometheus
from repro.obs.livetrace import (
    LiveTracer,
    NULL_LIVE_TRACER,
    TraceContext,
    parse_trace_args,
    read_live_spans,
    stitch_spans,
    trace_to_span_tree,
    write_live_jsonl,
)
from repro.obs.metrics import (
    LATENCY_SECONDS_BUCKETS,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.scrape import (
    MetricsScraper,
    Sample,
    histogram_quantile,
    parse_prometheus,
)
from repro.obs.top import FleetSample, TopDashboard


class TestHistogramQuantile:
    def make(self, bounds=(1.0, 2.0, 4.0)):
        registry = MetricsRegistry()
        return registry.histogram("q_seconds", buckets=bounds)

    def test_empty_histogram_returns_none(self):
        assert self.make().quantile(0.5) is None

    def test_q_out_of_range_rejected(self):
        hist = self.make()
        hist.observe(1.0)
        with pytest.raises(ConfigurationError):
            hist.quantile(-0.1)
        with pytest.raises(ConfigurationError):
            hist.quantile(1.1)

    def test_single_bucket_interpolates_from_zero(self):
        hist = self.make()
        hist.observe(0.5)  # lands in the first (0, 1.0] bucket
        # Linear interpolation within [0, 1.0]; any q stays in-bucket.
        assert 0.0 <= hist.quantile(0.5) <= 1.0
        assert hist.quantile(1.0) == pytest.approx(1.0)

    def test_interpolation_across_buckets(self):
        hist = self.make()
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        # rank 2 of 4 at q=0.5 -> inside the (1.0, 2.0] bucket.
        q50 = hist.quantile(0.5)
        assert 1.0 <= q50 <= 2.0
        assert hist.quantile(0.0) == pytest.approx(0.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        hist = self.make()
        hist.observe(100.0)  # beyond every bound -> +Inf bucket
        assert hist.quantile(0.99) == pytest.approx(4.0)

    def test_module_level_bucket_quantile_edges(self):
        bounds = (1.0, 2.0)
        assert bucket_quantile(bounds, [0, 0, 0], 0, 0.5) is None
        # All mass in the overflow bucket clamps to bounds[-1].
        assert bucket_quantile(bounds, [0, 0, 5], 5, 0.5) == 2.0

    def test_disabled_registry_quantile_is_none(self):
        from repro.obs.metrics import NULL_METRICS

        hist = NULL_METRICS.histogram("off_seconds", buckets=(1.0,))
        hist.observe(0.5)
        assert hist.quantile(0.5) is None


class TestExportEscapingRegression:
    def test_label_values_roundtrip_through_parse(self):
        """Backslash, quote, and newline in label values must survive an
        export -> scrape-parse roundtrip byte for byte."""
        registry = MetricsRegistry()
        hostile = 'a"b\\c\nnl'
        registry.counter("esc_total", node=hostile).inc(3)
        text = to_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        samples = parse_prometheus(text)
        row = next(s for s in samples if s.name == "esc_total")
        assert row.labels_dict["node"] == hostile
        assert row.value == 3.0

    def test_help_newline_escaped(self):
        registry = MetricsRegistry()
        registry.counter("h_total", "line one\nline two").inc()
        text = to_prometheus(registry)
        assert "# HELP h_total line one\\nline two" in text
        # A raw newline inside HELP would produce a non-comment line
        # that is not a sample; the parse must see exactly one sample.
        assert len(parse_prometheus(text)) == 1


class TestTraceFrameValidation:
    def test_valid_frames(self):
        ctx = parse_trace_args(["abcdef0123456789", "cafe"])
        assert ctx == TraceContext("abcdef0123456789", "cafe")
        assert ctx.wire_prefix() == b"trace abcdef0123456789 cafe\r\n"

    @pytest.mark.parametrize(
        "args",
        [
            [],
            ["abc"],
            ["abc", "def", "extra"],
            ["xyz", "ab"],  # non-hex
            ["ABC", "ab"],  # uppercase rejected
            ["a" * 33, "ab"],  # trace id over cap
            ["ab", "b" * 17],  # span id over cap
            ["", "ab"],
            ["ab", ""],
        ],
    )
    def test_malformed_frames_rejected(self, args):
        assert parse_trace_args(args) is None


class TestLiveTracer:
    def test_fixed_seed_is_deterministic(self):
        ids_a = [LiveTracer(seed=42).start_trace("t").trace_id]
        ids_b = [LiveTracer(seed=42).start_trace("t").trace_id]
        assert ids_a == ids_b

    def test_sampling_extremes(self):
        never = LiveTracer(sample_rate=0.0, seed=1)
        assert all(never.start_trace("t") is None for _ in range(20))
        always = LiveTracer(sample_rate=1.0, seed=1)
        assert all(
            always.start_trace("t") is not None for _ in range(20)
        )

    def test_fractional_sampling_is_seeded(self):
        def decisions(seed):
            tracer = LiveTracer(sample_rate=0.3, seed=seed)
            return [
                tracer.start_trace("t") is not None for _ in range(50)
            ]

        first = decisions(9)
        assert first == decisions(9)
        assert any(first) and not all(first)

    def test_span_recorded_only_on_end(self):
        tracer = LiveTracer("p")
        root = tracer.start_trace("root")
        assert tracer.spans == []
        root.end()
        root.end()  # idempotent
        assert [s.name for s in tracer.spans] == ["root"]

    def test_null_tracer_preserves_foreign_chain(self):
        ctx = TraceContext("aaaa", "bbbb")
        span = NULL_LIVE_TRACER.start_span("x", ctx)
        assert span.trace_id == "aaaa"
        span.end()
        assert NULL_LIVE_TRACER.spans == []


class TestJsonlRoundtripAndStitch:
    def _spans(self, tmp_path):
        proxy = LiveTracer("proxy", seed=3)
        backend = LiveTracer("backend", seed=4)
        root = proxy.start_trace("proxy.get", key="k")
        rpc = proxy.start_span("client.rpc", root.context, node="n0")
        remote = backend.start_span("server.get", rpc.context)
        remote.end()
        rpc.end()
        root.end()
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        proxy_path = tmp_path / "proxy.jsonl"
        backend_path = tmp_path / "backend.jsonl"
        assert write_live_jsonl(proxy_path, proxy, metrics=registry) == 2
        assert write_live_jsonl(backend_path, backend) == 1
        return [proxy_path, backend_path], root

    def test_two_files_stitch_into_one_trace(self, tmp_path):
        paths, root = self._spans(tmp_path)
        spans = read_live_spans(paths)
        assert len(spans) == 3  # live_meta/live_metric lines skipped
        traces = stitch_spans(spans)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.trace_id == root.trace_id
        assert trace.processes == ["proxy", "backend"]
        assert {s.name for s in trace.spans} == {
            "proxy.get",
            "client.rpc",
            "server.get",
        }

    def test_span_tree_renders_nested(self, tmp_path):
        paths, _ = self._spans(tmp_path)
        trace = stitch_spans(read_live_spans(paths))[0]
        tree = trace_to_span_tree(trace)
        assert tree.name == "proxy:proxy.get"
        assert tree.children[0].name == "proxy:client.rpc"
        assert tree.children[0].children[0].name == "backend:server.get"

    def test_orphan_spans_get_synthetic_root(self):
        a = LiveTracer("a", seed=1)
        ctx = TraceContext("feed", "01")
        first = a.start_span("one", ctx)
        second = a.start_span("two", ctx)
        first.end()
        second.end()
        trace = stitch_spans(a.spans)[0]
        tree = trace_to_span_tree(trace)
        assert tree.name == "trace feed"
        assert len(tree.children) == 2


class TestScrapeParsing:
    def test_histogram_quantile_from_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rt_seconds", buckets=LATENCY_SECONDS_BUCKETS, node="n0"
        )
        for value in (0.0002, 0.0004, 0.002, 0.02):
            hist.observe(value)
        samples = parse_prometheus(to_prometheus(registry))
        p50 = histogram_quantile(samples, "rt_seconds", 0.5, node="n0")
        direct = hist.quantile(0.5)
        assert p50 == pytest.approx(direct)
        # Label mismatch -> no buckets -> None.
        assert (
            histogram_quantile(samples, "rt_seconds", 0.5, node="zz")
            is None
        )

    def test_inf_bucket_parsed(self):
        samples = parse_prometheus(
            'x_bucket{le="1"} 2\nx_bucket{le="+Inf"} 5\n'
        )
        les = {s.labels_dict["le"]: s.value for s in samples}
        assert les == {"1": 2.0, "+Inf": 5.0}

    def test_aggregate_sums_matching_series(self):
        scraper = MetricsScraper(endpoints={})
        scraped = {
            "a": [Sample("ops_total", (("node", "n0"),), 3.0)],
            "b": [
                Sample("ops_total", (("node", "n0"),), 4.0),
                Sample("ops_total", (("node", "n1"),), 1.0),
            ],
        }
        merged = {
            (s.name, s.labels): s.value
            for s in scraper.aggregate(scraped)
        }
        assert merged[("ops_total", (("node", "n0"),))] == 7.0
        assert merged[("ops_total", (("node", "n1"),))] == 1.0


def _prom_samples() -> list[Sample]:
    registry = MetricsRegistry()
    registry.counter("proxy_requests_total").inc(100)
    route = registry.histogram(
        "proxy_route_seconds", buckets=LATENCY_SECONDS_BUCKETS
    )
    rt = registry.histogram(
        "net_client_roundtrip_seconds",
        buckets=LATENCY_SECONDS_BUCKETS,
        node="live-00",
    )
    for value in (0.001, 0.002, 0.004):
        route.observe(value)
        rt.observe(value)
    registry.counter("net_client_requests_total", node="live-00").inc(42)
    registry.gauge("proxy_breaker_state", backend="live-00").set(1.0)
    return parse_prometheus(to_prometheus(registry))


class TestTopDashboard:
    def test_render_is_pure_over_canned_samples(self):
        dashboard = TopDashboard(("127.0.0.1", 11311))
        first = FleetSample(at_s=10.0, prom=_prom_samples())
        second = FleetSample(
            at_s=12.0,
            prom=[
                Sample(s.name, s.labels, s.value * 2)
                if s.name == "proxy_requests_total"
                else s
                for s in _prom_samples()
            ],
            proxy_stats={
                "proxy_gets": 60,
                "degraded_gets": 2,
                "active_backends": 1,
                "breaker_state_live-00": 1,
            },
            node_stats={
                "live-00": {
                    "get_hits": 30,
                    "get_misses": 10,
                    "curr_items": 7,
                }
            },
        )
        dashboard.ingest(first)
        dashboard.ingest(second)
        # 100 more requests over 2s -> 50 ops/s.
        assert dashboard.ops_history[-1] == pytest.approx(50.0)
        frame = dashboard.render(second)
        assert "50.0 ops/s" in frame
        assert "live-00" in frame
        assert "open" in frame  # breaker state code 1 renders by name
        assert " 75.0" in frame  # 30 hits / 40 lookups
        assert "degraded 2" in frame

    def test_render_reports_scrape_errors(self):
        dashboard = TopDashboard(("127.0.0.1", 1))
        sample = FleetSample(
            at_s=1.0, errors={"proxy obs": "connection refused"}
        )
        dashboard.ingest(sample)
        frame = dashboard.render(sample)
        assert "! proxy obs: connection refused" in frame

    def test_backend_names_merge_prom_labels_and_flags(self):
        dashboard = TopDashboard(
            ("127.0.0.1", 11311), nodes={"extra": ("127.0.0.1", 1)}
        )
        sample = FleetSample(at_s=1.0, prom=_prom_samples())
        assert dashboard._backend_names(sample) == ["extra", "live-00"]


def test_latency_buckets_are_sorted_and_subsecond_heavy():
    assert list(LATENCY_SECONDS_BUCKETS) == sorted(LATENCY_SECONDS_BUCKETS)
    assert LATENCY_SECONDS_BUCKETS[0] <= 0.0005
    assert sum(1 for b in LATENCY_SECONDS_BUCKETS if b < 0.1) >= 8
    assert not math.isinf(LATENCY_SECONDS_BUCKETS[-1])
