"""Tests for the ElMemController facade."""


from repro.core.autoscaler import AutoScalerConfig
from repro.core.elmem import ElMemController
from repro.core.policies import BaselinePolicy
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.slab import PAGE_SIZE

MIB = 1 << 20


def make_controller(nodes=4, **config_overrides):
    names = [f"node-{i:03d}" for i in range(nodes)]
    cluster = MemcachedCluster(names, 4 * PAGE_SIZE)
    for i in range(500):
        cluster.set(f"key-{i:05d}", f"v{i}", 150, float(i))
    config = AutoScalerConfig(
        db_capacity_rps=100.0,
        node_memory_bytes=4 * MIB,
        bytes_per_item=250.0,
        profiler="exact",
        hit_rate_margin=0.0,
        **config_overrides,
    )
    return ElMemController(cluster, config, evaluation_interval_s=60.0)


class TestControlLoop:
    def test_multiget_and_fill(self):
        controller = make_controller()
        result = controller.multiget(["key-00001", "ghost"], 1000.0)
        assert "key-00001" in result.hits
        assert result.misses == ["ghost"]
        controller.fill("ghost", "v", 100, 1001.0)
        assert controller.multiget(["ghost"], 1002.0).hit_count == 1

    def test_evaluate_throttled_by_interval(self):
        controller = make_controller()
        controller.observe_keys(["key-00001"] * 10, 0.0)
        first = controller.evaluate(50.0, now=0.0)
        assert first is not None
        controller.tick(1e6)  # finish any migration the decision started
        assert controller.evaluate(50.0, now=30.0) is None
        assert controller.evaluate(50.0, now=60.0) is not None

    def test_low_rate_triggers_scale_in(self):
        controller = make_controller()
        # Small, highly reusable working set at a rate under r_DB.
        for _ in range(20):
            controller.observe_keys(
                [f"key-{i:05d}" for i in range(50)], 0.0
            )
        decision = controller.evaluate(50.0, now=0.0)
        assert decision is not None
        assert decision.is_scale_in
        assert controller.policy.pending
        controller.tick(1e6)
        assert len(controller.cluster.active_members) < 4

    def test_evaluate_skipped_while_migrating(self):
        controller = make_controller()
        for _ in range(20):
            controller.observe_keys(
                [f"key-{i:05d}" for i in range(50)], 0.0
            )
        controller.evaluate(50.0, now=0.0)
        assert controller.policy.pending
        assert controller.evaluate(50.0, now=120.0) is None

    def test_custom_policy_injection(self):
        names = [f"node-{i:03d}" for i in range(3)]
        cluster = MemcachedCluster(names, 4 * PAGE_SIZE)
        config = AutoScalerConfig(
            db_capacity_rps=100.0,
            node_memory_bytes=4 * MIB,
            bytes_per_item=250.0,
        )
        controller = ElMemController(
            cluster, config, policy=BaselinePolicy()
        )
        assert controller.policy.name == "baseline"
        assert controller.policy.cluster is cluster

    def test_window_resets_after_evaluation(self):
        controller = make_controller()
        controller.observe_keys(["a", "b", "a"], 0.0)
        assert controller.autoscaler.window_fill == 3
        controller.evaluate(10.0, now=0.0)
        assert controller.autoscaler.window_fill == 0

    def test_decisions_recorded(self):
        controller = make_controller()
        controller.observe_keys(["key-00001"] * 5, 0.0)
        controller.evaluate(10.0, now=0.0)
        assert len(controller.decisions) == 1
