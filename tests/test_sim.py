"""Tests for the clock, metrics, web application, and experiment runner."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import SimulationClock
from repro.sim.experiment import (
    ExperimentConfig,
    build_stack,
    prefill_cluster,
    run_experiment,
)
from repro.sim.metrics import MetricsCollector, SecondRecord
from repro.sim.webapp import LatencyModel, WebApplication
from repro.workloads.traces import RateTrace


def flat_trace(duration=60, level=1.0):
    return RateTrace("flat", np.full(duration, level))


def tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        trace=flat_trace(),
        num_keys=3000,
        initial_nodes=3,
        memory_per_node=4 * (1 << 20),
        peak_request_rate=40.0,
        items_per_request=3,
        db_capacity_rps=40.0,
        warmup_seconds=5,
        max_value_size=1200,
        growth_factor=3.0,
        seed=1,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_rejects_negative_advance(self):
        with pytest.raises(ConfigurationError):
            SimulationClock().advance(-1.0)

    def test_at_jumps_forward_only(self):
        clock = SimulationClock(5.0)
        clock.at(7.0)
        with pytest.raises(ConfigurationError):
            clock.at(6.0)


class TestMetricsCollector:
    def make_record(self, t, p95=10.0, hits=8, misses=2):
        return SecondRecord(
            time=t,
            requests=5,
            kv_gets=hits + misses,
            hits=hits,
            misses=misses,
            secondary_hits=0,
            p95_rt_ms=p95,
            mean_rt_ms=p95 / 2,
            db_latency_ms=4.0,
            active_nodes=3,
        )

    def test_series_extraction(self):
        metrics = MetricsCollector()
        for t in range(5):
            metrics.add(self.make_record(float(t), p95=float(t)))
        assert len(metrics) == 5
        assert list(metrics.times()) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(metrics.p95_series_ms()) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_hit_rate_property(self):
        record = self.make_record(0.0, hits=9, misses=1)
        assert record.hit_rate == pytest.approx(0.9)
        idle = self.make_record(0.0, hits=0, misses=0)
        idle.kv_gets = 0
        assert idle.hit_rate == 1.0

    def test_between(self):
        metrics = MetricsCollector()
        for t in range(10):
            metrics.add(self.make_record(float(t)))
        window = metrics.between(3.0, 6.0)
        assert list(window.times()) == [3.0, 4.0, 5.0]

    def test_summary(self):
        metrics = MetricsCollector()
        metrics.add(self.make_record(0.0, p95=10.0))
        metrics.add(self.make_record(1.0, p95=30.0))
        summary = metrics.summary()
        assert summary["mean_p95_rt_ms"] == pytest.approx(20.0)
        assert summary["max_p95_rt_ms"] == pytest.approx(30.0)

    def test_empty_summary(self):
        assert MetricsCollector().summary() == {}


class TestWebApplication:
    def test_one_second_accounting(self):
        config = tiny_config()
        dataset, generator, cluster, database, master, policy = build_stack(
            config
        )
        prefill_cluster(cluster, dataset, generator.popularity)
        app = WebApplication(generator, policy, database, seed=1)
        record = app.run_second(0.0, 50.0)
        assert record.requests > 0
        assert record.kv_gets == record.requests * 3
        assert record.hits + record.misses == record.kv_gets
        assert record.active_nodes == 3
        assert math.isfinite(record.p95_rt_ms)
        assert record.p95_rt_ms > 0

    def test_zero_rate_second(self):
        config = tiny_config()
        dataset, generator, cluster, database, master, policy = build_stack(
            config
        )
        app = WebApplication(generator, policy, database, seed=1)
        record = app.run_second(0.0, 0.0)
        assert record.requests == 0
        assert math.isnan(record.p95_rt_ms)

    def test_misses_fill_cache(self):
        config = tiny_config()
        dataset, generator, cluster, database, master, policy = build_stack(
            config
        )
        app = WebApplication(generator, policy, database, seed=1)
        app.run_second(0.0, 50.0)
        assert cluster.total_items() > 0

    def test_key_observer_sees_all_keys(self):
        config = tiny_config()
        dataset, generator, cluster, database, master, policy = build_stack(
            config
        )
        seen = []
        app = WebApplication(
            generator,
            policy,
            database,
            seed=1,
            key_observer=seen.extend,
        )
        record = app.run_second(0.0, 30.0)
        assert len(seen) == record.kv_gets

    def test_latency_model_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(cache_hit_ms=0.0)


class TestPrefill:
    def test_prefill_orders_by_popularity(self):
        config = tiny_config()
        dataset, generator, cluster, database, master, policy = build_stack(
            config
        )
        prefill_cluster(cluster, dataset, generator.popularity)
        assert cluster.total_items() > 0
        # The most popular resident key must be hotter than the least
        # popular resident key on every node.
        ranked = generator.popularity.rank_order()
        hottest = dataset.keyspace.key(int(ranked[0]))
        coldest = dataset.keyspace.key(int(ranked[-1]))
        hot_node = cluster.nodes[cluster.route(hottest)]
        if hot_node.contains(hottest) and hot_node.contains(coldest):
            assert (
                hot_node.peek(hottest).last_access
                > hot_node.peek(coldest).last_access
            )

    def test_prefill_timestamps_before_end_time(self):
        config = tiny_config()
        dataset, generator, cluster, database, master, policy = build_stack(
            config
        )
        prefill_cluster(
            cluster, dataset, generator.popularity, end_time=-10.0
        )
        for node in cluster.active_nodes:
            for class_id in node.active_class_ids():
                for _, ts in node.dump_timestamps(class_id):
                    assert ts <= -10.0


class TestRunExperiment:
    def test_flat_run_produces_metrics(self):
        result = run_experiment(tiny_config())
        assert len(result.metrics) == 60
        summary = result.summary()
        assert summary["mean_hit_rate"] > 0.3
        assert summary["total_requests"] > 0

    def test_scheduled_scale_in_fires(self):
        config = tiny_config(
            trace=flat_trace(duration=90),
            schedule=[(30.0, 2)],
            policy="baseline",
        )
        result = run_experiment(config)
        assert result.scaling_times == [30.0]
        nodes = result.metrics.series("active_nodes")
        assert nodes[0] == 3
        assert nodes[-1] == 2

    def test_elmem_switch_happens_after_migration(self):
        config = tiny_config(
            trace=flat_trace(duration=90),
            schedule=[(20.0, 2)],
            policy="elmem",
            nic_bandwidth_bps=5e5,
        )
        result = run_experiment(config)
        nodes = result.metrics.series("active_nodes")
        assert nodes[-1] == 2
        switch_at = np.argmax(nodes < 3)
        assert switch_at > 20  # deferred past the decision time

    def test_all_policies_run(self):
        for name in ("baseline", "elmem", "naive", "cachescale"):
            config = tiny_config(
                trace=flat_trace(duration=40),
                schedule=[(10.0, 2)],
                policy=name,
            )
            result = run_experiment(config)
            assert len(result.metrics) == 40, name

    def test_autoscale_mode_runs(self):
        config = tiny_config(
            trace=flat_trace(duration=130, level=1.0),
            autoscale=True,
            autoscale_interval_s=30.0,
            autoscale_min_window=1_000,
        )
        result = run_experiment(config)
        assert result.decisions  # the autoscaler evaluated at least once

    def test_baseline_hit_rate_drops_after_scale_in(self):
        config = tiny_config(
            trace=flat_trace(duration=60),
            schedule=[(20.0, 2)],
            policy="baseline",
        )
        result = run_experiment(config)
        rates = result.metrics.hit_rates()
        before = rates[10:20].mean()
        after = rates[21:31].mean()
        assert after < before
