"""Tests for write traffic in the web application."""

import pytest

from repro.sim.experiment import (
    ExperimentConfig,
    build_stack,
    prefill_cluster,
)
from repro.sim.webapp import WebApplication


def make_app(write_fraction: float):
    config = ExperimentConfig(
        policy="baseline",
        num_keys=3000,
        initial_nodes=3,
        memory_per_node=4 * (1 << 20),
        max_value_size=1200,
        seed=4,
    )
    dataset, generator, cluster, database, master, policy = build_stack(
        config
    )
    prefill_cluster(cluster, dataset, generator.popularity)
    app = WebApplication(
        generator,
        policy,
        database,
        seed=4,
        write_fraction=write_fraction,
    )
    return app, cluster, database


class TestWrites:
    def test_invalid_fraction_rejected(self):
        app, *_ = make_app(0.0)
        with pytest.raises(ValueError):
            WebApplication(
                app.generator,
                app.policy,
                app.database,
                write_fraction=1.5,
            )

    def test_read_only_by_default(self):
        app, _, database = make_app(0.0)
        record = app.run_second(0.0, 50.0)
        assert record.writes == 0
        assert database.store.writes == 0

    def test_writes_happen_at_requested_rate(self):
        app, _, database = make_app(0.3)
        total_writes = 0
        total_ops = 0
        for t in range(20):
            record = app.run_second(float(t), 50.0)
            total_writes += record.writes
            total_ops += record.kv_gets + record.writes
        assert total_writes > 0
        assert total_writes / total_ops == pytest.approx(0.3, abs=0.08)
        assert database.store.writes == total_writes

    def test_written_value_lands_in_cache_and_store(self):
        app, cluster, database = make_app(1.0)
        app.run_second(5.0, 30.0)
        # All operations were writes; pick any written key and check.
        written_keys = [
            key
            for key in database.store.keys()
            if str(database.store.get(key)[0]).startswith("w@")
        ]
        assert written_keys
        key = written_keys[0]
        assert cluster.get(key, 6.0) == database.store.get(key)[0]

    def test_writes_load_the_database(self):
        app, _, database = make_app(1.0)
        record = app.run_second(0.0, 100.0)
        # 100 req/s x 4 keys, all writes, capacity 45/s -> overload.
        assert record.writes > 100
        assert database.backlog_requests > 0

    def test_kv_gets_exclude_writes(self):
        app, *_ = make_app(0.5)
        record = app.run_second(0.0, 50.0)
        assert record.kv_gets + record.writes == pytest.approx(
            record.requests * app.generator.items_per_request, abs=0
        )
