#!/usr/bin/env python3
"""Quickstart: an elastic Memcached tier in ~60 lines.

Builds a 4-node Memcached cluster, caches some data, then retires one
node the ElMem way: score the nodes by median hotness, run the
three-phase FuseCache migration, and switch membership -- verifying that
the hot data survived the scale-in.

Run with:  python examples/quickstart.py
"""

from repro.core.master import Master
from repro.memcached.cluster import MemcachedCluster

MIB = 1 << 20


def main() -> None:
    # A pool of four 8 MiB Memcached nodes behind a ketama hash ring.
    cluster = MemcachedCluster(
        [f"cache-{i}" for i in range(4)], memory_per_node=8 * MIB
    )

    # Cache 20,000 items; later items are "hotter" (higher timestamps).
    print("Populating the cluster...")
    for i in range(20_000):
        cluster.set(f"user:{i:06d}", {"id": i}, value_size=200, now=float(i))
    for name, node in sorted(cluster.nodes.items()):
        print(f"  {name}: {node.curr_items:,} items")

    # The Master orchestrates scaling.  Q2: which node is cheapest to
    # retire?  The one whose slab medians are coldest.
    master = Master(cluster)
    retiring = master.choose_retiring(1)
    print(f"\nRetiring {retiring[0]} (coldest median-hotness score)")

    # Q3: plan the three-phase migration.  FuseCache picks, per retained
    # node and slab class, exactly the hottest items that fit.
    plan = master.plan_scale_in(retiring)
    print(
        f"Migration plan: {plan.items_to_migrate:,} items, "
        f"{plan.bytes_to_migrate / MIB:.1f} MiB over the network, "
        f"~{plan.duration_s:.1f}s modeled duration"
    )
    for phase, seconds in plan.timings.breakdown().items():
        print(f"  {phase:18s} {seconds:8.3f}s")

    # Execute: ship the data, import it hot-end first, switch membership.
    hot_keys = [
        item.key
        for class_id in cluster.nodes[retiring[0]].active_class_ids()
        for item in cluster.nodes[retiring[0]].items_in_mru_order(class_id)[:5]
    ]
    report = master.execute(plan)
    print(
        f"\nExecuted: imported {report.items_imported:,} items; "
        f"membership is now {report.membership_after}"
    )

    # The retired node's hottest items are still served by the tier.
    survivors = sum(
        1 for key in hot_keys if cluster.get(key, now=1e9) is not None
    )
    print(
        f"Hottest items of the retired node still cached: "
        f"{survivors}/{len(hot_keys)}"
    )
    assert survivors == len(hot_keys)
    print("OK -- scale-in without losing hot data.")


if __name__ == "__main__":
    main()
