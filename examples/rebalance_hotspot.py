#!/usr/bin/env python3
"""Hot-spot load rebalancing (the paper's future-work extension).

Creates a cluster whose traffic concentrates on one node (a hot spot),
lets the LoadRebalancer watch per-node load, and shows it migrating hot
batches -- with client routing overrides -- until the tier balances.

Run with:  python examples/rebalance_hotspot.py
"""

import numpy as np

from repro.core.rebalance import LoadRebalancer
from repro.memcached.cluster import MemcachedCluster
from repro.netsim.transfer import NetworkModel
from repro.workloads.popularity import NodeBiasedPopularity, ZipfPopularity


def main() -> None:
    nodes = [f"cache-{i}" for i in range(4)]
    cluster = MemcachedCluster(nodes, memory_per_node=8 << 20)
    keys = [f"key-{i:05d}" for i in range(8000)]
    for t, key in enumerate(keys):
        cluster.set(key, t, 200, float(t))

    # Popularity heavily biased toward one node's keys: a hot spot.
    owners = [cluster.route(key) for key in keys]
    hot_node = owners[0]
    popularity = NodeBiasedPopularity(
        ZipfPopularity(len(keys), alpha=0.9, seed=1),
        owners,
        {hot_node: 8.0},
        seed=2,
    )
    print(f"hot spot: traffic biased 8x toward {hot_node}'s keys\n")

    rebalancer = LoadRebalancer(
        cluster,
        network=NetworkModel(),
        imbalance_threshold=1.4,
        batch_items=400,
        min_window_requests=3_000,
    )

    rng = np.random.default_rng(3)
    for step in range(8):
        sampled = popularity.sample(4000)
        for index in sampled:
            rebalancer.observe(keys[int(index)])
        imbalance = rebalancer.imbalance()
        action = rebalancer.maybe_rebalance(now=float(step))
        if action is None:
            print(
                f"step {step}: imbalance {imbalance:.2f} -- balanced "
                f"(threshold {rebalancer.imbalance_threshold})"
            )
        else:
            print(
                f"step {step}: imbalance {imbalance:.2f} -> moved "
                f"{action.items_moved} hot items {action.source} -> "
                f"{action.target} ({action.bytes_moved / 1024:.0f} KiB, "
                f"{action.duration_s:.2f}s); "
                f"{cluster.remap_count} routing overrides"
            )

    print(
        f"\ntotal rebalancing actions: {len(rebalancer.actions)}; "
        f"final routing overrides: {cluster.remap_count}"
    )


if __name__ == "__main__":
    main()
