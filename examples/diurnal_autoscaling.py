#!/usr/bin/env python3
"""Autoscaling a Memcached tier through a diurnal demand trace.

Runs the full multi-tier simulation on the ETC-shaped trace with the
stack-distance AutoScaler enabled (Eq. 1 + MIMIR hit-rate curves) and
the ElMem migration policy, then reports the scaling decisions it took
and the cost/energy saved versus static peak provisioning.

Run with:  python examples/diurnal_autoscaling.py
"""

import numpy as np

from repro.analysis.cost import energy_kwh, rental_cost_usd, savings_vs_static
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.traces import make_trace


def main() -> None:
    config = ExperimentConfig(
        trace=make_trace("etc", duration_s=900),
        policy="elmem",
        autoscale=True,
        autoscale_interval_s=60.0,
        seed=7,
    )
    print(
        "Simulating 900s of the ETC trace with the AutoScaler "
        f"(evaluates every {config.autoscale_interval_s:.0f}s)..."
    )
    result = run_experiment(config)

    print("\nScaling decisions:")
    for decision in result.decisions:
        action = (
            "scale in"
            if decision.is_scale_in
            else "scale out" if decision.is_scale_out else "hold"
        )
        print(
            f"  rate={decision.request_rate:7.0f} kv/s  p_min="
            f"{decision.p_min:.3f}  {decision.current_nodes} -> "
            f"{decision.target_nodes} nodes ({action})"
        )

    nodes = result.metrics.series("active_nodes")
    p95 = result.metrics.p95_series_ms()
    finite = p95[np.isfinite(p95)]
    print("\nOutcome:")
    print(f"  node count range: {int(nodes.min())} .. {int(nodes.max())}")
    print(f"  mean hit rate:    {result.metrics.hit_rates().mean():.3f}")
    print(f"  mean p95 RT:      {finite.mean():.1f} ms")

    static = np.full_like(nodes, nodes.max())
    print(
        f"  energy: {energy_kwh(nodes):.3f} kWh elastic vs "
        f"{energy_kwh(static):.3f} kWh static"
    )
    print(
        f"  rental: ${rental_cost_usd(nodes):.3f} elastic vs "
        f"${rental_cost_usd(static):.3f} static"
    )
    print(f"  savings vs static peak: {savings_vs_static(nodes):.1%}")


if __name__ == "__main__":
    main()
