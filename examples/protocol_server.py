#!/usr/bin/env python3
"""Serving the Memcached text protocol over a real TCP socket.

Boots one simulated Memcached node behind an asyncio server
(:mod:`repro.net`) on a local port, then talks to it with the pooled,
pipelining :class:`~repro.net.client.NodeClient` -- the same stack the
``repro serve`` / ``repro live-migrate`` commands and the live socket
migration use.  Raw exchanges are shown with ``NodeClient.execute`` so
the wire bytes stay visible, then the typed API pipelines a small batch
and peeks at the ElMem migration commands.

Run with:  python examples/protocol_server.py
(``--smoke`` runs the same exchange with tight timeouts so CI and
`make examples` can never hang on it.)
"""

import sys

from repro.net import LiveClusterHarness, NodeClient
from repro.net.runtime import EventLoopThread

SMOKE = "--smoke" in sys.argv
TIMEOUT_S = 5.0 if SMOKE else 30.0


def main() -> None:
    with LiveClusterHarness(["tcp-node"], 16 << 20) as harness:
        host, port = harness.endpoints["tcp-node"]
        print(f"memcached-model listening on {host}:{port}")
        with EventLoopThread(name="example-client") as loop:
            client = NodeClient(
                "tcp-node", host, port, timeout_s=TIMEOUT_S
            )

            def raw(command: str, payload: bytes | None = None) -> bytes:
                return loop.call(
                    client.execute(command, payload), timeout=TIMEOUT_S
                )

            print(">> set greeting 0 0 13 / 'Hello, world!'")
            print("<<", raw("set greeting 0 0 13", b"Hello, world!"))
            print(">> get greeting")
            print("<<", raw("get greeting"))
            print(">> incr is rejected on text")
            print("<<", raw("incr greeting 1"))
            print(">> set counter 0 0 2 / '41'")
            print("<<", raw("set counter 0 0 2", b"41"))
            print(">> incr counter 1")
            print("<<", raw("incr counter 1"))

            print(">> pipelined set_many of 8 keys (one write, one read)")
            stored = loop.call(
                client.set_many(
                    (f"bulk-{i}", i, b"x" * 32) for i in range(8)
                ),
                timeout=TIMEOUT_S,
            )
            print(f"<< STORED x{stored}")

            print(">> ts_dump 0 (migration metadata, excerpt)")
            rows = loop.call(client.ts_dump(0), timeout=TIMEOUT_S)
            for key, last_access, size in rows[:3]:
                print(f"<< TS {key} {last_access} {size}")

            print(">> stats (excerpt)")
            stats = raw("stats").decode()
            for line in stats.splitlines()[:6]:
                print("<<", line)
            loop.call(client.close(), timeout=TIMEOUT_S)
    print("done.")


if __name__ == "__main__":
    main()
