#!/usr/bin/env python3
"""Serving the Memcached text protocol over a real TCP socket.

Starts one simulated Memcached node behind the ASCII protocol on a local
port, then talks to it with a raw socket client -- the same bytes
``telnet`` or ``libmemcached`` would exchange with real Memcached.

Run with:  python examples/protocol_server.py
(``--smoke`` runs the same exchange with tight socket timeouts and no
inter-command sleeps, so CI and `make examples` can never hang on it.)
"""

import socket
import sys
import threading
import time

from repro.memcached.node import MemcachedNode
from repro.memcached.protocol import TextProtocolServer

SMOKE = "--smoke" in sys.argv
SOCKET_TIMEOUT_S = 5.0
COMMAND_PAUSE_S = 0.001 if SMOKE else 0.02


def serve_one_connection(listener: socket.socket) -> None:
    """Accept a single client and pump it through the protocol handler."""
    node = MemcachedNode("tcp-node", 16 << 20)
    handler = TextProtocolServer(node, clock=time.monotonic)
    try:
        connection, _ = listener.accept()
    except TimeoutError:
        return
    connection.settimeout(SOCKET_TIMEOUT_S)
    with connection:
        while True:
            try:
                data = connection.recv(4096)
            except (TimeoutError, OSError):
                break
            if not data:
                break
            response = handler.feed(data)
            if response:
                connection.sendall(response)


def main() -> None:
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(SOCKET_TIMEOUT_S)
    port = listener.getsockname()[1]
    print(f"memcached-model listening on 127.0.0.1:{port}")
    server = threading.Thread(
        target=serve_one_connection, args=(listener,), daemon=True
    )
    server.start()

    client = socket.create_connection(
        ("127.0.0.1", port), timeout=SOCKET_TIMEOUT_S
    )

    def command(text: str, payload: bytes | None = None) -> bytes:
        wire = text.encode() + b"\r\n"
        if payload is not None:
            wire += payload + b"\r\n"
        client.sendall(wire)
        time.sleep(COMMAND_PAUSE_S)
        return client.recv(65536)

    print(">> set greeting 0 0 13 / 'Hello, world!'")
    print("<<", command("set greeting 0 0 13", b"Hello, world!"))
    print(">> get greeting")
    print("<<", command("get greeting"))
    print(">> incr is rejected on text")
    print("<<", command("incr greeting 1"))
    print(">> set counter 0 0 2 / '41'")
    print("<<", command("set counter 0 0 2", b"41"))
    print(">> incr counter 1")
    print("<<", command("incr counter 1"))
    print(">> stats (excerpt)")
    stats = command("stats").decode()
    for line in stats.splitlines()[:6]:
        print("<<", line)
    client.close()
    server.join(timeout=SOCKET_TIMEOUT_S)
    listener.close()
    print("done.")


if __name__ == "__main__":
    main()
