#!/usr/bin/env python3
"""FuseCache versus conventional top-n merges (paper Section IV).

Selecting the n hottest items across k MRU-sorted timestamp lists is
the core of ElMem's migration.  This demo shows that all three
algorithms pick the same items, then times them as n grows to exhibit
FuseCache's O(k (log n)^2) advantage over the O(n log k) k-way merge.

Run with:  python examples/fusecache_demo.py
"""

import time

from repro.core.fusecache import (
    fuse_cache,
    fuse_cache_detailed,
    kway_merge_top_n,
    lower_bound_comparisons,
    selected_multiset,
    sort_merge_top_n,
)

K = 8


def make_lists(n: int) -> list[list[float]]:
    return [
        [float(n * K - (j * K + i)) for j in range(n)] for i in range(K)
    ]


def main() -> None:
    # Correctness: all three algorithms select the same multiset.
    lists = [
        [9.0, 7.0, 5.0, 1.0],
        [8.0, 6.0, 4.0, 2.0],
        [10.0, 3.0],
    ]
    n = 5
    for name, algorithm in (
        ("FuseCache", fuse_cache),
        ("k-way merge", kway_merge_top_n),
        ("full sort", sort_merge_top_n),
    ):
        picks = algorithm(lists, n)
        print(
            f"{name:12s} picks {picks} -> "
            f"{selected_multiset(lists, picks)}"
        )
    print()

    # Performance: sweep n with k fixed.
    print(f"{'n':>10s} {'FuseCache':>12s} {'k-way':>12s} {'sort':>12s} "
          f"{'cmp':>10s} {'bound':>10s}")
    for exponent in (12, 14, 16, 18):
        n = 2**exponent
        lists = make_lists(n)
        timings = {}
        for name, algorithm in (
            ("fuse", fuse_cache),
            ("kway", kway_merge_top_n),
            ("sort", sort_merge_top_n),
        ):
            start = time.perf_counter()
            algorithm(lists, n // 2)
            timings[name] = time.perf_counter() - start
        detail = fuse_cache_detailed(lists, n // 2)
        bound = lower_bound_comparisons(n // 2, K)
        print(
            f"{n:10,d} {timings['fuse']*1e3:10.2f}ms "
            f"{timings['kway']*1e3:10.2f}ms {timings['sort']*1e3:10.2f}ms "
            f"{detail.comparisons:10,d} {bound:10.0f}"
        )
    print(
        "\nFuseCache's comparisons grow polylogarithmically while the "
        "merges scale with n -- the paper's Section IV-B result."
    )


if __name__ == "__main__":
    main()
