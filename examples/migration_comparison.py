#!/usr/bin/env python3
"""Comparing migration policies around a scale-in event (paper Fig. 8).

Replays the SYS-shaped trace with a 10 -> 7 scale-in under all four
policies -- no-migration baseline, ElMem (FuseCache), Naive
(fraction-based), and CacheScale (request-driven) -- and prints the
post-scaling tail-latency damage of each.

Run with:  python examples/migration_comparison.py
"""

import numpy as np

from repro.analysis.degradation import summarize_post_scaling
from repro.sim.experiment import run_experiment
from repro.sim.scenarios import paper_config, scale_action_times

DURATION_S = 900


def main() -> None:
    scale_time = scale_action_times("sys", DURATION_S)[0]
    print(
        f"SYS trace, 10 -> 7 nodes at t={scale_time:.0f}s; comparing "
        "policies...\n"
    )

    print(
        f"{'policy':12s} {'stable':>9s} {'peak':>10s} {'post-avg':>10s} "
        f"{'restoration':>12s}"
    )
    summaries = {}
    for policy in ("baseline", "elmem", "naive", "cachescale"):
        config = paper_config("sys", policy, duration_s=DURATION_S, seed=11)
        result = run_experiment(config)
        summary = summarize_post_scaling(
            result.metrics,
            scale_time,
            horizon_s=DURATION_S * 0.9 - scale_time,
            restoration_factor=2.0,
        )
        summaries[policy] = summary
        restoration = (
            f"{summary.restoration_time_s:.0f}s"
            if summary.restoration_time_s is not None
            else "not in window"
        )
        print(
            f"{policy:12s} {summary.stable_rt_ms:8.1f}ms "
            f"{summary.peak_rt_ms:9.1f}ms "
            f"{summary.average_post_rt_ms:9.1f}ms {restoration:>12s}"
        )

    base = summaries["baseline"].average_post_rt_ms
    print("\nAverage post-scaling p95 RT vs the no-migration baseline:")
    for policy in ("elmem", "naive", "cachescale"):
        cut = 1.0 - summaries[policy].average_post_rt_ms / base
        print(f"  {policy:12s} {cut:+.1%}")
    best = min(summaries, key=lambda p: summaries[p].average_post_rt_ms)
    print(f"\nBest policy: {best}")


if __name__ == "__main__":
    main()
