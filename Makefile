# Convenience targets for the ElMem reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench report examples clean

install:
	pip install -e . || $(PYTHON) -c "import site,os;open(os.path.join(site.getsitepackages()[0],'repro-dev.pth'),'w').write(os.path.abspath('src'))"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/fusecache_demo.py
	$(PYTHON) examples/migration_comparison.py
	$(PYTHON) examples/diurnal_autoscaling.py
	$(PYTHON) examples/rebalance_hotspot.py
	$(PYTHON) examples/protocol_server.py --smoke

clean:
	rm -rf .pytest_cache benchmarks/out build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
