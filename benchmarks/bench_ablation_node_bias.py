"""Ablation: how inter-node hot-spot spread drives ElMem's advantages.

DESIGN.md documents the node-biased popularity substitution: without
per-node temperature differences, every node is statistically identical
and neither node *choice* (Q2) nor metadata-aware selection (Q3) can
matter.  This ablation sweeps the bias sigma and reports the Fig. 7
metric -- items migrated for the best/average/worst node choice -- at
each level, showing the spread collapse at sigma=0 and grow with sigma.
"""

import numpy as np
import pytest

from repro.core.scoring import rank_nodes_by_score
from repro.sim.experiment import (
    ExperimentConfig,
    build_stack,
    prefill_cluster,
)

from benchmarks._harness import BENCH_SEED, write_report

SIGMAS = (0.0, 0.5, 0.9)


def spread_for_sigma(sigma: float):
    config = ExperimentConfig(
        policy="elmem", seed=BENCH_SEED, node_bias_sigma=sigma
    )
    dataset, generator, cluster, database, master, policy = build_stack(
        config
    )
    prefill_cluster(cluster, dataset, generator.popularity)
    ranked = rank_nodes_by_score(cluster.active_nodes)
    migrated = []
    for name, _ in ranked:
        plan = master.plan_scale_in([name], include_scoring=False)
        migrated.append(plan.items_to_migrate)
    best_by_score = migrated[0]
    return {
        "best_by_score": best_by_score,
        "minimum": min(migrated),
        "average": float(np.mean(migrated)),
        "worst": max(migrated),
    }


def run_sweep():
    return {sigma: spread_for_sigma(sigma) for sigma in SIGMAS}


@pytest.mark.benchmark(group="ablation")
def bench_ablation_node_bias(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        "sigma   score-choice   minimum   average     worst   "
        "worst/best"
    ]
    for sigma, stats in results.items():
        rows.append(
            f"{sigma:5.1f} {stats['best_by_score']:13,d} "
            f"{stats['minimum']:9,d} {stats['average']:9,.0f} "
            f"{stats['worst']:9,d} "
            f"{stats['worst'] / stats['best_by_score']:11.2f}"
        )
    rows.append(
        "paper Fig. 7: worst/best = 1.86 on the real cluster; the spread "
        "requires genuine per-node temperature differences"
    )
    write_report("ablation_node_bias", rows)

    spread_flat = results[0.0]["worst"] / results[0.0]["best_by_score"]
    spread_biased = results[0.9]["worst"] / results[0.9]["best_by_score"]
    assert spread_biased > spread_flat
    # With strong bias the median-score choice stays near-optimal.
    assert (
        results[0.9]["best_by_score"] <= 1.15 * results[0.9]["minimum"]
    )
