"""Ablation: what the batch-import semantics are worth.

DESIGN.md calls out the import-mode choice: the paper's Memcached
prepends migrated pairs at the MRU head (cheap, order-corrupting), while
a timestamp-sorted merge preserves the MRU invariant; a *naive* tool
that re-``set``s pairs loses hotness metadata entirely (``fresh``).
This ablation migrates the same data under all three modes and measures
how much of the retained nodes' original recency ordering survives.
"""

import pytest

from repro.sim.experiment import (
    ExperimentConfig,
    build_stack,
    prefill_cluster,
)

from benchmarks._harness import BENCH_SEED, write_report


def ordering_violations(node) -> float:
    """Fraction of adjacent MRU pairs that are out of timestamp order."""
    violations = 0
    pairs = 0
    for class_id in node.active_class_ids():
        items = node.items_in_mru_order(class_id)
        for left, right in zip(items, items[1:]):
            pairs += 1
            if left.last_access < right.last_access:
                violations += 1
    return violations / pairs if pairs else 0.0


def metadata_loss(node, true_timestamps: dict[str, float]) -> float:
    """Fraction of imported items whose stored hotness was rewritten."""
    lost = 0
    checked = 0
    for key, true_ts in true_timestamps.items():
        item = node.peek(key)
        if item is None:
            continue
        checked += 1
        if item.last_access != true_ts:
            lost += 1
    return lost / checked if checked else 0.0


def run_modes():
    results = {}
    for mode in ("merge", "prepend", "fresh"):
        config = ExperimentConfig(
            policy="elmem", seed=BENCH_SEED, import_mode=mode
        )
        dataset, generator, cluster, database, master, policy = (
            build_stack(config)
        )
        prefill_cluster(cluster, dataset, generator.popularity)
        retiring = master.choose_retiring(2)
        plan = master.plan_scale_in(retiring)
        plan.import_mode = mode
        true_timestamps = {}
        for (src, _), keys in plan.transfers.items():
            node = cluster.nodes[src]
            for key in keys:
                item = node.peek(key)
                if item is not None:
                    true_timestamps[key] = item.last_access
        master.execute(plan, now=0.0)
        violation_rate = max(
            ordering_violations(cluster.nodes[name])
            for name in plan.retained
        )
        loss = max(
            metadata_loss(cluster.nodes[name], true_timestamps)
            for name in plan.retained
        )
        results[mode] = (plan.items_to_migrate, violation_rate, loss)
    return results


@pytest.mark.benchmark(group="ablation")
def bench_ablation_import_mode(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    rows = [
        "mode      items migrated   MRU-order violations   "
        "hotness metadata rewritten"
    ]
    for mode, (items, violations, loss) in results.items():
        rows.append(
            f"{mode:8s} {items:14,d}   {violations:18.1%}   "
            f"{loss:24.1%}"
        )
    rows.append(
        "merge keeps MRU lists timestamp-sorted and hotness intact; "
        "prepend (the paper's implementation) corrupts ordering mildly "
        "but keeps timestamps; fresh (a naive dump-and-set tool) "
        "rewrites every timestamp."
    )
    write_report("ablation_import_mode", rows)

    assert results["merge"][1] == 0.0
    assert results["merge"][2] == 0.0
    assert results["prepend"][2] == 0.0
    assert results["fresh"][2] > 0.9