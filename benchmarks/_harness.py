"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints the same rows/series the paper reports.  Reports
are also appended to ``benchmarks/out/`` so EXPERIMENTS.md can cite them.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.degradation import (
    DegradationSummary,
    summarize_post_scaling,
)
from repro.sim.experiment import ExperimentResult

OUT_DIR = Path(__file__).resolve().parent / "out"

# Scaled-down benchmark duration; scenario action fractions stretch to it.
BENCH_DURATION_S = 1500
BENCH_SEED = 3


def write_report(name: str, lines: list[str]) -> None:
    """Print a benchmark report and persist it under benchmarks/out/."""
    body = "\n".join(lines)
    print(f"\n===== {name} =====\n{body}\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(body + "\n")


def finite_mean(series: np.ndarray, lo: int, hi: int) -> float:
    """Mean of the finite entries of ``series[lo:hi]``."""
    window = series[lo:hi]
    window = window[np.isfinite(window)]
    return float(window.mean()) if len(window) else float("nan")


def post_scaling_summary(
    result: ExperimentResult,
    scale_time: float,
    horizon_s: float = 700.0,
) -> DegradationSummary:
    """Degradation summary around one scaling action of a run."""
    return summarize_post_scaling(
        result.metrics,
        scale_time,
        horizon_s=horizon_s,
        stable_window_s=120.0,
        restoration_factor=2.0,
    )


def average_post_rt(result: ExperimentResult, start: float, end: float) -> float:
    """Paper-style 'average of the per-second 95%ile RTs' after scaling."""
    metrics = result.metrics.between(start, end)
    series = metrics.p95_series_ms()
    series = series[np.isfinite(series)]
    return float(series.mean()) if len(series) else float("nan")


def reduction(baseline_value: float, improved_value: float) -> float:
    """Relative reduction ``1 - improved/baseline`` (paper's headline %)."""
    if baseline_value <= 0:
        return 0.0
    return 1.0 - improved_value / baseline_value
