"""Fig. 8: ElMem versus the Naive and CacheScale migration approaches.

Paper: on a SYS snippet scaled in from 10 to 7 nodes, ElMem's tail RT
stays low apart from its ~1-minute migration overhead, while Naive and
CacheScale keep degrading well past the scaling event; ElMem reduces
tail RT by ~70 % versus Naive and ~64 % versus CacheScale.  We replay
the same scenario under all four policies (baseline included for
reference), matching CacheScale's secondary-discard deadline to ElMem's
measured migration overhead as the paper does.
"""

import pytest

from repro.core.policies import CacheScalePolicy
from repro.sim.experiment import run_experiment
from repro.sim.scenarios import paper_config, scale_action_times

from benchmarks._harness import (
    BENCH_DURATION_S,
    BENCH_SEED,
    average_post_rt,
    reduction,
    write_report,
)


def run_fig8():
    results = {}
    for policy in ("elmem", "naive", "baseline"):
        config = paper_config(
            "sys", policy, duration_s=BENCH_DURATION_S, seed=BENCH_SEED
        )
        results[policy] = run_experiment(config)
    elmem_overhead = results["elmem"].reports[0].plan.duration_s
    cachescale = CacheScalePolicy(discard_after_s=elmem_overhead)
    config = paper_config(
        "sys", cachescale, duration_s=BENCH_DURATION_S, seed=BENCH_SEED
    )
    results["cachescale"] = run_experiment(config)
    return results, elmem_overhead


@pytest.mark.benchmark(group="fig8")
def bench_fig8_migration_approaches(benchmark):
    (results, elmem_overhead) = benchmark.pedantic(
        run_fig8, rounds=1, iterations=1
    )
    scale_time = scale_action_times("sys", BENCH_DURATION_S)[0]
    window_end = scale_time + 700.0

    post = {
        name: average_post_rt(result, scale_time, window_end)
        for name, result in results.items()
    }
    rows = [
        f"SYS trace, 10 -> 7 nodes at t={scale_time:.0f}s; "
        f"ElMem migration overhead: {elmem_overhead:.1f}s "
        "(CacheScale discards its secondary after the same interval)"
    ]
    for name in ("elmem", "naive", "cachescale", "baseline"):
        rows.append(f"{name:10s} avg post-scaling p95 RT {post[name]:9.2f}ms")
    vs_naive = reduction(post["naive"], post["elmem"])
    vs_cachescale = reduction(post["cachescale"], post["elmem"])
    rows.append(
        f"ElMem reduction vs Naive:      {vs_naive:6.1%} (paper: ~70%)"
    )
    rows.append(
        f"ElMem reduction vs CacheScale: {vs_cachescale:6.1%} (paper: ~64%)"
    )
    write_report("fig8_migration_approaches", rows)

    # Shape assertions: ElMem wins against every alternative.
    assert post["elmem"] < post["naive"]
    assert post["elmem"] < post["cachescale"]
    assert post["elmem"] < post["baseline"]
