"""Section V-B2: the ~2-minute breakdown of ElMem's migration overhead.

Paper (10-node OpenStack cluster, ~4 M items on the retiring node):
scoring ~2 s, hash+dump ~50 s, metadata transfer ~7 s, FuseCache <2 s,
data migration ~45 s, import ~8 s -- about two minutes end to end.

The laptop-scale simulator cannot hold 4 M-item nodes, so this benchmark
does two things: (1) it verifies the phase structure on a real (small)
migration, and (2) it evaluates the Master's calibrated timing model at
the paper's scale and prints the breakdown next to the paper's numbers.
"""

import math

import pytest

from repro.netsim.transfer import GBIT, Flow, NetworkModel
from repro.sim.experiment import (
    ExperimentConfig,
    build_stack,
    prefill_cluster,
)

from benchmarks._harness import BENCH_SEED, write_report

# Paper-scale parameters (Facebook-like, Section V).
PAPER_ITEMS_PER_NODE = 4_000_000
PAPER_NODES = 10
PAPER_KEY_BYTES = 11
PAPER_TIMESTAMP_BYTES = 10
PAPER_MEAN_VALUE_BYTES = 330
# Effective per-node bandwidth on the shared OpenStack fabric.
PAPER_EFFECTIVE_BW = 0.25 * GBIT
DUMP_RATE_ITEMS_S = 80_000.0
IMPORT_RATE_ITEMS_S = 500_000.0
SCORING_S_PER_NODE = 0.2
COMPARISON_TIME_S = 2e-6


def model_paper_scale() -> dict[str, float]:
    """Evaluate the Master's timing model with the paper's inputs."""
    network = NetworkModel(
        nic_bandwidth_bps=PAPER_EFFECTIVE_BW, connection_setup_s=0.5
    )
    retained = [f"node-{i}" for i in range(PAPER_NODES - 1)]
    scoring = SCORING_S_PER_NODE * PAPER_NODES
    dump = PAPER_ITEMS_PER_NODE / DUMP_RATE_ITEMS_S
    metadata_bytes = PAPER_ITEMS_PER_NODE * (
        PAPER_KEY_BYTES + PAPER_TIMESTAMP_BYTES
    )
    metadata = network.phase_time(
        [
            Flow(
                "retiring",
                dst,
                metadata_bytes // len(retained),
            )
            for dst in retained
        ]
    )
    # FuseCache on each retained node: k=2 lists (incoming + own).
    per_target = PAPER_ITEMS_PER_NODE // len(retained)
    comparisons_per_target = (
        2 * (math.log2(PAPER_ITEMS_PER_NODE) ** 2) * 40
    )
    fusecache = comparisons_per_target * COMPARISON_TIME_S * len(retained)
    data_bytes = int(
        0.8
        * PAPER_ITEMS_PER_NODE
        * (PAPER_KEY_BYTES + PAPER_MEAN_VALUE_BYTES)
    )
    data = network.phase_time(
        [
            Flow("retiring", dst, data_bytes // len(retained))
            for dst in retained
        ]
    )
    imports = 0.8 * per_target / IMPORT_RATE_ITEMS_S * 9
    return {
        "scoring": scoring,
        "hash_and_dump": dump,
        "metadata_transfer": metadata,
        "fusecache": fusecache,
        "data_migration": data,
        "import": imports,
    }


def run_real_small_migration():
    config = ExperimentConfig(policy="elmem", seed=BENCH_SEED)
    dataset, generator, cluster, database, master, policy = build_stack(
        config
    )
    prefill_cluster(cluster, dataset, generator.popularity)
    retiring = master.choose_retiring(1)
    plan = master.plan_scale_in(retiring)
    return plan


@pytest.mark.benchmark(group="overhead")
def bench_overhead_breakdown(benchmark):
    plan = benchmark.pedantic(
        run_real_small_migration, rounds=1, iterations=1
    )
    modelled = model_paper_scale()

    paper = {
        "scoring": 2.0,
        "hash_and_dump": 50.0,
        "metadata_transfer": 7.0,
        "fusecache": 2.0,
        "data_migration": 45.0,
        "import": 8.0,
    }
    rows = ["phase               paper(s)   model@paper-scale(s)   sim@laptop-scale(s)"]
    breakdown = plan.timings.breakdown()
    for phase, paper_s in paper.items():
        rows.append(
            f"{phase:18s} {paper_s:9.1f} {modelled[phase]:22.1f} "
            f"{breakdown[phase]:21.3f}"
        )
    total_model = sum(modelled.values())
    rows.append(
        f"{'total':18s} {sum(paper.values()):9.1f} {total_model:22.1f} "
        f"{breakdown['total']:21.3f}"
    )
    rows.append(
        "paper total: ~2 minutes; model at paper scale: "
        f"{total_model:.0f}s"
    )
    write_report("overhead_breakdown", rows)

    # The modelled paper-scale total lands in the paper's ~2-minute range
    # and every phase exists in a real migration.
    assert 90.0 < total_model < 180.0
    assert all(value >= 0 for value in breakdown.values())
    assert breakdown["total"] > 0
