"""Ablation: exact stack distances vs MIMIR vs SHARDS.

The AutoScaler needs a hit-rate curve every minute; the three profilers
trade accuracy for speed (exact Fenwick O(log M)/request, MIMIR O(B)
amortised, SHARDS exact-on-a-sample).  This ablation feeds all three the
same request stream and reports per-capacity curve error and runtime --
the evidence behind the paper's choice of MIMIR.
"""

import time

import pytest

from repro.cache_analysis.mimir import MimirProfiler
from repro.cache_analysis.mrc import HitRateCurve
from repro.cache_analysis.shards import ShardsProfiler
from repro.cache_analysis.stack_distance import StackDistanceProfiler
from repro.sim.experiment import ExperimentConfig, build_stack

from benchmarks._harness import BENCH_SEED, write_report

REQUESTS = 150_000
CAPACITIES = (2_000, 10_000, 30_000, 80_000)


def run_profilers():
    config = ExperimentConfig(policy="baseline", seed=BENCH_SEED)
    dataset, generator, *_ = build_stack(config)
    keys = generator.key_stream(REQUESTS)

    profilers = {
        "exact": StackDistanceProfiler(REQUESTS),
        "mimir": MimirProfiler(128),
        "shards(10%)": ShardsProfiler(0.1, REQUESTS),
        "shards(50%)": ShardsProfiler(0.5, REQUESTS),
    }
    curves = {}
    timings = {}
    for name, profiler in profilers.items():
        start = time.perf_counter()
        for key in keys:
            profiler.record(key)
        timings[name] = time.perf_counter() - start
        curves[name] = HitRateCurve(*profiler.histogram())
    return curves, timings


@pytest.mark.benchmark(group="ablation")
def bench_ablation_profilers(benchmark):
    curves, timings = benchmark.pedantic(
        run_profilers, rounds=1, iterations=1
    )
    exact = curves["exact"]
    rows = [
        "profiler      time(s)   "
        + "  ".join(f"hr@{c//1000}k" for c in CAPACITIES)
        + "   max|err|"
    ]
    max_errors = {}
    for name, curve in curves.items():
        rates = [curve.hit_rate(c) for c in CAPACITIES]
        errors = [
            abs(curve.hit_rate(c) - exact.hit_rate(c)) for c in CAPACITIES
        ]
        max_errors[name] = max(errors)
        rows.append(
            f"{name:12s} {timings[name]:8.2f}   "
            + "  ".join(f"{rate:.3f}" for rate in rates)
            + f"   {max_errors[name]:.3f}"
        )
    write_report("ablation_profilers", rows)

    assert max_errors["mimir"] < 0.08
    # SHARDS carries single-sample variance on heavy-tailed workloads:
    # whether a given hot key lands in the sample moves percents of
    # traffic (the Zipf head holds ~8% on one key), so low rates have
    # visibly biased curves while higher rates converge.
    assert max_errors["shards(50%)"] < 0.10
    assert max_errors["shards(10%)"] < 0.35
