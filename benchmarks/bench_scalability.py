"""Section V-B2 (scalability): scoring is O(s*k), FuseCache O(k (log n)^2).

Paper: the node-scoring step scales linearly with the node count (k) and
slab count (s); FuseCache is linear in k and polylogarithmic in the
items per node (n), so the whole control path stays sub-second even for
large clusters.  This benchmark sweeps k and n and checks the growth
orders empirically.
"""

import pytest

from repro.core.fusecache import fuse_cache_detailed
from repro.core.scoring import score_nodes
from repro.memcached.node import MemcachedNode
from repro.memcached.slab import PAGE_SIZE

from benchmarks._harness import write_report


def make_fleet(node_count: int, items_per_node: int = 400):
    nodes = []
    for i in range(node_count):
        node = MemcachedNode(f"n{i:03d}", 4 * PAGE_SIZE)
        for j in range(items_per_node):
            node.set(f"k{i}-{j}", None, 100 + (j % 5) * 700, float(j))
        nodes.append(node)
    return nodes


@pytest.mark.benchmark(group="scalability")
def bench_scoring_scales_linearly_in_k(benchmark):
    import time

    def sweep():
        rows = ["nodes(k)   scoring time (ms)"]
        timings = []
        for k in (4, 8, 16, 32):
            nodes = make_fleet(k)
            start = time.perf_counter()
            for _ in range(5):
                score_nodes(nodes)
            elapsed = (time.perf_counter() - start) / 5
            rows.append(f"{k:8d}   {elapsed * 1000:12.2f}")
            timings.append((k, elapsed))
        return rows, timings

    rows, timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report("scalability_scoring", rows)
    # Growth k=4 -> k=32 (8x) should stay near-linear (allow 3x slack
    # for constant overheads and timer noise).
    (k0, t0), (k1, t1) = timings[0], timings[-1]
    assert t1 / t0 < (k1 / k0) * 3


@pytest.mark.benchmark(group="scalability")
def bench_fusecache_scales_linearly_in_k(benchmark):
    def sweep():
        rows = ["lists(k)   comparisons"]
        counts = []
        n = 4096
        for k in (4, 8, 16, 32, 64):
            lists = [
                [float(n * k - (j * k + i)) for j in range(n)]
                for i in range(k)
            ]
            result = fuse_cache_detailed(lists, n)
            rows.append(f"{k:8d}   {result.comparisons:11d}")
            counts.append((k, result.comparisons))
        return rows, counts

    rows, counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report("scalability_fusecache_k", rows)
    (k0, c0), (k1, c1) = counts[0], counts[-1]
    # Comparisons grow at most ~linearly in k (with log(k) slack from
    # the log(n*k) round count).
    assert c1 / c0 < (k1 / k0) * 3
