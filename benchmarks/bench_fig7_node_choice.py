"""Fig. 7: items migrated versus choice of which node to retire.

Paper: scaling 10 -> 9 nodes, retiring the node with the coldest median
-hotness score migrates ~3.97 M items; a random choice averages ~6.23 M
(+57 %), and the worst choice needs ~7.4 M (+86 %).  We warm a 10-node
cluster under the calibrated node-biased workload, plan the scale-in for
*every* candidate node, and print items-to-migrate with nodes sorted by
their median-hotness score -- the exact series of Fig. 7.
"""

import numpy as np
import pytest

from repro.core.scoring import rank_nodes_by_score
from repro.sim.experiment import (
    ExperimentConfig,
    build_stack,
    prefill_cluster,
)

from benchmarks._harness import BENCH_SEED, write_report


def plan_all_choices():
    # A stronger hot-spot spread than the default scenario: Fig. 7 is
    # precisely about how much node temperatures differ (the paper's
    # cluster showed a 1.86x spread in migration volume).
    config = ExperimentConfig(
        policy="elmem", seed=BENCH_SEED, node_bias_sigma=0.9
    )
    dataset, generator, cluster, database, master, policy = build_stack(
        config
    )
    prefill_cluster(cluster, dataset, generator.popularity)
    ranked = rank_nodes_by_score(cluster.active_nodes)
    migrated = {}
    for name, score in ranked:
        plan = master.plan_scale_in([name], include_scoring=False)
        migrated[name] = plan.items_to_migrate
    return ranked, migrated


@pytest.mark.benchmark(group="fig7")
def bench_fig7_node_choice(benchmark):
    ranked, migrated = benchmark.pedantic(
        plan_all_choices, rounds=1, iterations=1
    )
    counts = [migrated[name] for name, _ in ranked]
    elmem_choice = counts[0]
    average = float(np.mean(counts))
    worst = max(counts)

    rows = ["rank  node       median-score  items migrated"]
    for index, (name, score) in enumerate(ranked):
        marker = "  <- ElMem's choice" if index == 0 else ""
        rows.append(
            f"{index + 1:4d}  {name}  {score:12.1f}  "
            f"{migrated[name]:14,d}{marker}"
        )
    rows.append(
        f"ElMem choice: {elmem_choice:,} items; random avg: {average:,.0f} "
        f"(+{average / elmem_choice - 1:.0%}, paper: +57%); worst: {worst:,} "
        f"(+{worst / elmem_choice - 1:.0%}, paper: +86%)"
    )
    write_report("fig7_node_choice", rows)

    # Shape assertions: the median-score heuristic lands at (or within a
    # whisker of) the cheapest node -- the paper reports it is optimal in
    # "almost all" traces -- and the spread across choices is
    # substantial, so the choice matters.
    assert elmem_choice <= 1.1 * min(counts)
    assert elmem_choice < average
    assert worst > 1.25 * elmem_choice
