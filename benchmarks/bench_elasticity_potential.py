"""Section II-C: potential node savings of a perfectly elastic tier.

Paper: analysing the Facebook traces, a perfectly elastic Memcached tier
-- one that instantly resizes and consolidates hot data -- could run
with 30-70 % fewer caching nodes.  This benchmark profiles the
calibrated workload's hit-rate curve, applies the Eq. (1) sizing rule at
every second of each demand trace, and prints the per-trace savings.
"""

import pytest

from repro.analysis.elasticity import elastic_node_series, node_savings
from repro.cache_analysis.mrc import HitRateCurve
from repro.cache_analysis.stack_distance import StackDistanceProfiler
from repro.sim.experiment import ExperimentConfig, build_stack
from repro.workloads.traces import TRACE_FACTORIES, make_trace

from benchmarks._harness import BENCH_SEED, write_report

PROFILE_REQUESTS = 500_000


def compute_savings():
    config = ExperimentConfig(policy="baseline", seed=BENCH_SEED)
    dataset, generator, cluster, database, master, policy = build_stack(
        config
    )
    profiler = StackDistanceProfiler(PROFILE_REQUESTS)
    for key in generator.key_stream(PROFILE_REQUESTS):
        profiler.record(key)
    # Warm-cache curve: first-ever accesses in the finite window are a
    # censoring artifact, not steady-state misses (Section III-B).
    histogram, _ = profiler.histogram()
    curve = HitRateCurve(histogram, 0)
    bytes_per_item = 1.4 * dataset.average_chunk_bytes(
        config.min_chunk, config.growth_factor
    )

    peak_kv_rate = config.peak_request_rate * config.items_per_request
    results = {}
    for name in sorted(TRACE_FACTORIES):
        trace = make_trace(name, duration_s=1500)
        series = elastic_node_series(
            trace,
            peak_kv_rate=peak_kv_rate,
            db_capacity_rps=config.db_capacity_rps,
            curve=curve,
            bytes_per_item=bytes_per_item,
            node_memory_bytes=config.memory_per_node,
        )
        results[name] = (
            node_savings(series, static_nodes=int(series.max())),
            int(series.min()),
            int(series.max()),
        )
    return results


@pytest.mark.benchmark(group="elasticity")
def bench_elasticity_potential(benchmark):
    results = benchmark.pedantic(compute_savings, rounds=1, iterations=1)
    rows = ["trace       nodes(min..max)   savings vs static peak"]
    for name, (savings, low, high) in results.items():
        rows.append(f"{name:10s}  {low:3d} .. {high:3d}        {savings:8.1%}")
    rows.append("paper: a perfectly elastic tier saves 30-70% of nodes")
    write_report("elasticity_potential", rows)

    savings_values = [s for s, _, _ in results.values()]
    # The swingy traces land in the paper's 30-70% band; flatter traces
    # save less (the paper's range spans its trace mix).
    assert max(savings_values) > 0.3
    assert sum(savings_values) / len(savings_values) > 0.15
