"""Runnable wrapper for the process-cluster throughput benchmark.

Measures the aggregate pipelined ``set`` rate of the shared-nothing
multi-process harness against the single-loop harness at equal node
count, exactly as the perf gate does:

    PYTHONPATH=src python benchmarks/bench_proc_cluster.py [--quick]

The gated ratio (``proc_cluster_speedup`` >= 2x, waived below 4 cores)
lives in :mod:`repro.analysis.perfgate`; this wrapper just runs that
benchmark standalone and prints the metrics.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.perfgate import bench_proc_cluster, visible_cores

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    metrics = bench_proc_cluster(args.quick)
    for name in sorted(metrics):
        print(f"{name:26s} {metrics[name]:12.3f}")
    cores = visible_cores()
    if cores < 4:
        print(
            f"note: only {cores} core(s) visible; the >=2x speedup "
            "gate is waived here (enforced on multi-core CI)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
