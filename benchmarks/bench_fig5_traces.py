"""Fig. 5: the five (normalised) demand traces.

The paper shows normalised request-rate series for Facebook SYS/ETC, SAP,
NLANR, and Microsoft.  This benchmark regenerates the synthetic
equivalents and prints the series statistics that define their shapes
(peak position, depth of drops, recovery), asserting the qualitative
features the evaluation relies on.
"""

import numpy as np
import pytest

from repro.workloads.traces import TRACE_FACTORIES, make_trace

from benchmarks._harness import BENCH_DURATION_S, write_report


def generate_all():
    return {
        name: make_trace(name, duration_s=BENCH_DURATION_S)
        for name in sorted(TRACE_FACTORIES)
    }


@pytest.mark.benchmark(group="fig5")
def bench_fig5_traces(benchmark):
    traces = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    rows = ["trace      min    mean   final  argmax(frac)  drop(early->late)"]
    for name, trace in traces.items():
        values = trace.normalised().values
        early = values[: len(values) // 3].mean()
        late = values[-len(values) // 3 :].mean()
        rows.append(
            f"{name:10s} {values.min():.2f}   {values.mean():.2f}   "
            f"{values[-1]:.2f}   {np.argmax(values)/len(values):#.2f}"
            f"          {1 - late/early:+.1%}"
        )
    write_report("fig5_traces", rows)

    values = {name: t.normalised().values for name, t in traces.items()}
    # SYS: sharp sustained drop.
    assert values["sys"][-300:].mean() < 0.5 * values["sys"][:300].mean()
    # ETC: dips then recovers near peak.
    assert values["etc"][-150:].mean() > 0.85
    # NLANR: mid-trace peak.
    mid = values["nlanr"][
        int(0.45 * len(values["nlanr"])) : int(0.55 * len(values["nlanr"]))
    ].mean()
    assert mid > values["nlanr"][:150].mean()
    assert mid > values["nlanr"][-150:].mean()
    # SAP and Microsoft: declining staircases.
    for name in ("sap", "microsoft"):
        assert values[name][-300:].mean() < values[name][:300].mean()
