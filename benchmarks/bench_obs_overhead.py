"""Disabled-telemetry overhead: instrumentation must be near-free.

Every hot path (cache commands, flow attempts, migration phases) now
carries pre-resolved metric handles and null-span calls.  With telemetry
disabled these resolve to shared no-op singletons, so the cost per
operation is one attribute access plus an empty method call.  This
benchmark measures that cost against a *true* baseline: the same
``get``/``set`` code with the metric calls stripped (monkeypatched in
for the baseline runs only), at two scales:

1. micro: raw ``get`` throughput on one node -- reports the per-get tax
   of the no-op call in ns and percent;
2. macro: wall-clock of a full scale-in experiment -- the acceptance
   bound: running with telemetry *disabled* must cost <3% over the
   uninstrumented baseline.

A third comparison (disabled vs. a live registry) documents what
*enabling* telemetry costs; that one has no bound.
"""

import time

from repro.memcached.items import Item
from repro.memcached.node import MemcachedNode
from repro.memcached.slab import PAGE_SIZE
from repro.obs import create_telemetry
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.traces import make_trace

from benchmarks._harness import BENCH_SEED, write_report

MICRO_OPS = 200_000


def _uninstrumented_get(self, key, now):
    """MemcachedNode.get with the metric call stripped (baseline)."""
    item = self._live_item(key, now)
    if item is None:
        self.stats.get_misses += 1
        return None
    item.touch(now)
    self.slabs.classes[item.slab_class_id].mru.move_to_front(item)
    self.stats.get_hits += 1
    return item.value


def _uninstrumented_set(self, key, value, value_size, now, exptime=0.0):
    """MemcachedNode.set with the metric call stripped (baseline)."""
    existing = self._table.get(key)
    if existing is not None:
        self._unlink(existing)
    item = Item(key, value, value_size, now, exptime=exptime)
    item.cas_id = self._next_cas()
    if not self._insert(item):
        return False
    self.stats.sets += 1
    return True


class _baseline:
    """Context manager swapping in the uninstrumented command paths."""

    def __enter__(self):
        self._get, self._set = MemcachedNode.get, MemcachedNode.set
        MemcachedNode.get = _uninstrumented_get
        MemcachedNode.set = _uninstrumented_set

    def __exit__(self, *exc):
        MemcachedNode.get, MemcachedNode.set = self._get, self._set


def _micro_get_seconds(metrics=None) -> float:
    node = MemcachedNode("bench", 8 * PAGE_SIZE, metrics=metrics)
    for i in range(2_000):
        node.set(f"key-{i:05d}", i, 120, float(i))
    start = time.perf_counter()
    for i in range(MICRO_OPS):
        node.get(f"key-{i % 2_000:05d}", float(i))
    return time.perf_counter() - start


def _experiment_seconds(telemetry=None) -> float:
    config = ExperimentConfig(
        trace=make_trace("sys", duration_s=150),
        policy="elmem",
        schedule=[(30.0, 7)],
        seed=BENCH_SEED,
        telemetry=telemetry,
    )
    start = time.perf_counter()
    run_experiment(config)
    return time.perf_counter() - start


def test_disabled_overhead_under_three_percent():
    # Micro: per-get cost, uninstrumented vs. null-registry vs. live.
    with _baseline():
        base_get = min(_micro_get_seconds() for _ in range(3))
    off_get = min(_micro_get_seconds() for _ in range(3))
    on_get = min(
        _micro_get_seconds(create_telemetry().metrics) for _ in range(3)
    )
    tax_ns = (off_get - base_get) / MICRO_OPS * 1e9

    # Macro: whole experiments.  Warm once so first-run import costs do
    # not bias the baseline.
    _experiment_seconds()
    with _baseline():
        base_s = min(_experiment_seconds() for _ in range(3))
    off_s = min(_experiment_seconds() for _ in range(3))
    on_s = min(_experiment_seconds(create_telemetry()) for _ in range(3))
    disabled_overhead = (off_s - base_s) / base_s

    lines = [
        f"micro get        baseline {base_get / MICRO_OPS * 1e9:8.1f} ns",
        f"micro get        disabled {off_get / MICRO_OPS * 1e9:8.1f} ns "
        f"(no-op tax {tax_ns:+.1f} ns, "
        f"{(off_get - base_get) / base_get:+.1%})",
        f"micro get        enabled  {on_get / MICRO_OPS * 1e9:8.1f} ns",
        f"experiment wall  baseline {base_s:8.2f}s",
        f"experiment wall  disabled {off_s:8.2f}s "
        f"({disabled_overhead:+.1%} vs baseline)",
        f"experiment wall  enabled  {on_s:8.2f}s "
        f"({(on_s - base_s) / base_s:+.1%} vs baseline)",
        "bound: disabled telemetry must cost <3% experiment runtime.",
    ]
    write_report("obs_overhead", lines)

    # Acceptance: disabled-mode instrumentation costs <3% of the run.
    assert disabled_overhead < 0.03
    # And the null registry must never be slower than a live one.
    assert off_get <= on_get * 1.10


def test_live_proxy_disabled_overhead_under_five_percent():
    """Live-path variant: proxy get p99 over a real socket round trip.

    Reuses the perf-gate measurement (interleaved blocks on one
    harness, pooled p99 ratio, best of three passes -- see
    ``repro.analysis.perfgate.bench_live_proxy``) so the bound asserted
    here is exactly the one ``repro bench --gate`` enforces and records
    in ``BENCH_latest.json``.
    """
    from repro.analysis.perfgate import bench_live_proxy

    metrics = bench_live_proxy(quick=True)
    overhead = metrics["live_proxy_p99_overhead"]
    lines = [
        f"proxy get p99    disabled {metrics['live_proxy_get_p99_ms']:8.3f} ms"
        f" ({overhead - 1.0:+.1%} vs uninstrumented router)",
        f"proxy get p99    traced   "
        f"{metrics['live_proxy_traced_p99_ms']:8.3f} ms"
        " (live metrics + 1% trace sampling)",
        "bound: disabled telemetry must cost <5% proxy get p99.",
    ]
    write_report("obs_overhead_live", lines)

    # Acceptance: disabled-mode overhead on the live proxy get path
    # stays under 5% of the uninstrumented p99.
    assert overhead < 1.05
