"""Fig. 2: post-scaling performance degradation, baseline vs ElMem.

Paper: scaling the ETC trace in from 10 to 9 VMs drives the baseline's
95%ile RT from ~60 ms to a peak of ~1000 ms with a restoration time over
30 minutes; ElMem cuts the peak to ~130 ms and restores in ~2 minutes
(the migration overhead).  We reproduce the *shape*: a large baseline
spike with slow restoration versus a small ElMem blip.
"""

import pytest

from repro.sim.experiment import run_experiment
from repro.sim.scenarios import paper_config, scale_action_times

from benchmarks._harness import (
    BENCH_DURATION_S,
    BENCH_SEED,
    average_post_rt,
    post_scaling_summary,
    reduction,
    write_report,
)


def run_fig2():
    results = {}
    for policy in ("baseline", "elmem"):
        config = paper_config(
            "etc",
            policy,
            duration_s=BENCH_DURATION_S,
            seed=BENCH_SEED,
            # A single 10 -> 9 retirement only produces Fig. 2's dramatic
            # spike when the retired node carries its full ~1/k share of
            # traffic (with hot-spot bias the Q2 scoring retires a cold,
            # low-traffic node and shields the baseline) and the storm
            # clearly exceeds the database knee.
            node_bias_sigma=0.0,
            db_capacity_rps=35.0,
        )
        # Fig. 2 isolates the first action (the 10 -> 9 scale-in).
        config.schedule = config.schedule[:1]
        results[policy] = run_experiment(config)
    return results


@pytest.mark.benchmark(group="fig2")
def bench_fig2_postscaling(benchmark):
    results = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    scale_time = scale_action_times("etc", BENCH_DURATION_S)[0]

    # Fig. 2's window is the low-demand period following the scale-in
    # (ETC's demand later recovers, which the paper handles with the
    # 9 -> 10 scale-out shown in Fig. 6(b), trimmed from this run).
    horizon = 0.60 * BENCH_DURATION_S - scale_time
    rows = []
    summaries = {}
    for policy, result in results.items():
        summary = post_scaling_summary(result, scale_time, horizon_s=horizon)
        summaries[policy] = summary
        restoration = (
            f"{summary.restoration_time_s:.0f}s"
            if summary.restoration_time_s is not None
            else f">{summary.window_s:.0f}s (not restored in window)"
        )
        rows.append(
            f"{policy:10s} stable={summary.stable_rt_ms:7.1f}ms "
            f"peak={summary.peak_rt_ms:8.1f}ms "
            f"post-avg={summary.average_post_rt_ms:7.1f}ms "
            f"restoration={restoration}"
        )

    base, elmem = summaries["baseline"], summaries["elmem"]
    peak_cut = reduction(base.peak_rt_ms, elmem.peak_rt_ms)
    avg_cut = reduction(
        average_post_rt(
            results["baseline"], scale_time, scale_time + horizon
        ),
        average_post_rt(
            results["elmem"], scale_time, scale_time + horizon
        ),
    )
    rows.append(
        f"peak RT reduction: {peak_cut:.1%} "
        "(paper: 1000ms -> 130ms, ~87%)"
    )
    rows.append(
        f"avg post-scaling RT reduction: {avg_cut:.1%} (paper: ~96% on ETC)"
    )
    write_report("fig2_postscaling", rows)

    # Shape assertions: ElMem mitigates both the peak and the average.
    assert elmem.peak_rt_ms < 0.5 * base.peak_rt_ms
    assert elmem.average_post_rt_ms < base.average_post_rt_ms
