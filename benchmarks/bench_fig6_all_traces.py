"""Fig. 6(a-e): hit rate and 95%ile RT, baseline vs ElMem, on all traces.

Paper results: across SYS/ETC/SAP/NLANR/Microsoft, ElMem reduces the
average post-scaling degradation by 88-97 % for scale-in actions and
~81 % for scale-out actions, with the baseline's hit rate visibly
dropping after every action while ElMem's barely moves.  This benchmark
replays every scenario under both policies and prints, per scaling
action, the paper's quantities: average post-scaling p95 RT, its
reduction, and the post-scaling hit rates.
"""

import numpy as np
import pytest

from repro.sim.experiment import run_experiment
from repro.sim.scenarios import PAPER_SCENARIOS, paper_config

from benchmarks._harness import (
    BENCH_DURATION_S,
    BENCH_SEED,
    average_post_rt,
    reduction,
    write_report,
)


def run_all():
    results = {}
    for name in sorted(PAPER_SCENARIOS):
        for policy in ("baseline", "elmem"):
            config = paper_config(
                name, policy, duration_s=BENCH_DURATION_S, seed=BENCH_SEED
            )
            results[(name, policy)] = run_experiment(config)
    return results


def post_hit_rate(result, start, end):
    metrics = result.metrics.between(start, end)
    rates = metrics.hit_rates()
    return float(rates.mean()) if len(rates) else float("nan")


@pytest.mark.benchmark(group="fig6")
def bench_fig6_all_traces(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    paper_reductions = {
        "sys": "88%",
        "etc": "96%",
        "sap": "90%",
        "nlanr": "92%",
        "microsoft": "97%",
    }
    rows = [
        "scenario            action    window   base-p95   elmem-p95 "
        " reduction  hr(base->elmem)   paper"
    ]
    scale_in_reductions = []
    scale_out_reductions = []
    for name, scenario in sorted(PAPER_SCENARIOS.items()):
        base = results[(name, "baseline")]
        elmem = results[(name, "elmem")]
        times = [t for t, _ in base.config.schedule]
        targets = [n for _, n in base.config.schedule]
        boundaries = times[1:] + [BENCH_DURATION_S * 0.95]
        previous_nodes = scenario.initial_nodes
        for action_time, target, boundary in zip(
            times, targets, boundaries
        ):
            window_end = min(action_time + 450.0, boundary)
            base_rt = average_post_rt(base, action_time, window_end)
            elmem_rt = average_post_rt(elmem, action_time, window_end)
            cut = reduction(base_rt, elmem_rt)
            kind = "out" if target > previous_nodes else "in"
            hr_pair = (
                post_hit_rate(base, action_time, window_end),
                post_hit_rate(elmem, action_time, window_end),
            )
            rows.append(
                f"{scenario.label:20s}{previous_nodes}->{target} ({kind}) "
                f"{window_end - action_time:5.0f}s "
                f"{base_rt:9.1f}ms {elmem_rt:9.1f}ms "
                f"{cut:9.1%}  {hr_pair[0]:.3f} -> {hr_pair[1]:.3f}   "
                f"{paper_reductions[name]}"
            )
            (
                scale_in_reductions
                if kind == "in"
                else scale_out_reductions
            ).append(cut)
            previous_nodes = target
    rows.append(
        "mean scale-in reduction:  "
        f"{np.mean(scale_in_reductions):.1%} (paper: 88-97%)"
    )
    if scale_out_reductions:
        rows.append(
            "mean scale-out reduction: "
            f"{np.mean(scale_out_reductions):.1%} (paper: ~81%)"
        )
    write_report("fig6_all_traces", rows)

    # Shape assertions: ElMem strictly improves every scale-in action and
    # does not lose on average.
    assert all(cut > 0.0 for cut in scale_in_reductions)
    assert np.mean(scale_in_reductions) > 0.25
