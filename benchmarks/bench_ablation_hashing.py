"""Ablation: consistent hashing (ketama) vs rendezvous hashing.

ElMem's scale-out migration is cheap because consistent hashing remaps
only ~1/(k+1) of the keys (Section III-D4).  This ablation quantifies
that property for both placement functions and times their lookups: the
ring does O(log(k*vnodes)) lookups with small remap variance; rendezvous
achieves provably minimal remapping at O(k) lookup cost.
"""

import time

import pytest

from repro.hashing.ketama import ConsistentHashRing
from repro.hashing.rendezvous import RendezvousHash

from benchmarks._harness import write_report

KEYS = [f"key-{i:06d}" for i in range(20_000)]
NODES = [f"node-{i:02d}" for i in range(10)]


def measure(factory):
    mapper = factory(NODES)
    before = {key: mapper.node_for_key(key) for key in KEYS}
    start = time.perf_counter()
    for key in KEYS:
        mapper.node_for_key(key)
    lookup_time = (time.perf_counter() - start) / len(KEYS)

    mapper.remove_node(NODES[3])
    moved_on_removal = sum(
        1
        for key, owner in before.items()
        if owner != NODES[3] and mapper.node_for_key(key) != owner
    )
    displaced = sum(1 for owner in before.values() if owner == NODES[3])

    mapper.add_node(NODES[3])
    restored = sum(
        1 for key in KEYS if mapper.node_for_key(key) == before[key]
    )
    return {
        "lookup_us": lookup_time * 1e6,
        "gratuitous_moves": moved_on_removal,
        "displaced": displaced,
        "restored_fraction": restored / len(KEYS),
    }


def run_ablation():
    return {
        "ketama": measure(ConsistentHashRing),
        "rendezvous": measure(RendezvousHash),
    }


@pytest.mark.benchmark(group="ablation")
def bench_ablation_hashing(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        "scheme       lookup(us)  displaced(1/k expected)  "
        "gratuitous-moves  restored-after-readd"
    ]
    for name, stats in results.items():
        rows.append(
            f"{name:12s} {stats['lookup_us']:9.2f}  "
            f"{stats['displaced']:10d} ({stats['displaced']/len(KEYS):.1%}) "
            f"{stats['gratuitous_moves']:17d}  "
            f"{stats['restored_fraction']:19.1%}"
        )
    rows.append(
        "both schemes move only the retired node's keys; rendezvous "
        "lookups scale O(k) vs the ring's O(log)"
    )
    write_report("ablation_hashing", rows)

    for stats in results.values():
        # Minimal remapping: no key moves unless its owner was removed.
        assert stats["gratuitous_moves"] == 0
        # Removing 1 of 10 nodes displaces ~10% of keys.
        assert 0.05 < stats["displaced"] / len(KEYS) < 0.2
        # Re-adding the node restores the original mapping.
        assert stats["restored_fraction"] == 1.0
