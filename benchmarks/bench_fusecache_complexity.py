"""Section IV-B: FuseCache's complexity versus the merge baselines.

FuseCache runs in O(k (log n)^2); the heap k-way merge is O(n log k) and
the full sort O(N log N).  Since realistic deployments have n >> k, Fuse
Cache should win by orders of magnitude as n grows.  This benchmark
times all three on the same inputs (wall clock via pytest-benchmark) and
prints the comparison-count scaling against the theoretical lower bound
O(k log n).
"""


import pytest

from repro.core.fusecache import (
    fuse_cache,
    fuse_cache_detailed,
    kway_merge_top_n,
    lower_bound_comparisons,
    sort_merge_top_n,
)

K = 8


def make_lists(n: int, k: int = K) -> list[list[float]]:
    # Interleaved distinct timestamps, each list sorted hottest-first.
    return [
        [float(n * k - (j * k + i)) for j in range(n)] for i in range(k)
    ]


@pytest.fixture(scope="module")
def big_lists():
    return make_lists(100_000)


@pytest.mark.benchmark(group="fusecache-time")
def bench_fusecache_time(benchmark, big_lists):
    picks = benchmark(fuse_cache, big_lists, 100_000 // 2)
    assert sum(picks) == 100_000 // 2


@pytest.mark.benchmark(group="fusecache-time")
def bench_kway_merge_time(benchmark, big_lists):
    picks = benchmark(kway_merge_top_n, big_lists, 100_000 // 2)
    assert sum(picks) == 100_000 // 2


@pytest.mark.benchmark(group="fusecache-time")
def bench_sort_merge_time(benchmark, big_lists):
    picks = benchmark(sort_merge_top_n, big_lists, 100_000 // 2)
    assert sum(picks) == 100_000 // 2


@pytest.mark.benchmark(group="fusecache-scaling")
def bench_fusecache_comparison_scaling(benchmark):
    from benchmarks._harness import write_report

    def sweep():
        rows = [
            "        n   FuseCache-cmp   k-way-pops   lower-bound "
            "k*log2(n)   ratio-to-bound"
        ]
        data = []
        for exponent in range(10, 18, 2):
            n = 2**exponent
            lists = make_lists(n)
            result = fuse_cache_detailed(lists, n // 2)
            bound = lower_bound_comparisons(n // 2, K)
            rows.append(
                f"{n:9d}   {result.comparisons:13d}   {n * K // 2:10d}   "
                f"{bound:21.0f}   {result.comparisons / bound:14.1f}"
            )
            data.append((n, result.comparisons))
        return rows, data

    rows, data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report("fusecache_complexity", rows)

    # Polylog growth: quadrupling n should grow comparisons far slower
    # than linearly (a factor-4 growth per step would be linear).
    for (n1, c1), (n2, c2) in zip(data, data[1:]):
        assert c2 < 3.0 * c1, f"superpolylog growth at n={n2}"
    # And FuseCache must beat the k-way merge's n*k/2 pop count by a wide
    # margin at the largest size.
    n_last, c_last = data[-1]
    assert c_last * 50 < n_last * K // 2
