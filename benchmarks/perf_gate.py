"""Runnable wrapper for the hot-path performance regression gate.

Equivalent to ``repro bench``:

    PYTHONPATH=src python benchmarks/perf_gate.py --gate [--quick]
    PYTHONPATH=src python benchmarks/perf_gate.py --update-baseline

The engine lives in :mod:`repro.analysis.perfgate`; see that module for
what is measured and how the gate judges it.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.perfgate import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_OUT_PATH,
        run_gate,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gate", action="store_true")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default=DEFAULT_OUT_PATH)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)
    ok, report = run_gate(
        quick=args.quick,
        gate=args.gate,
        out_path=args.out,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
    )
    print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
