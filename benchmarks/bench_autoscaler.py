"""Section III-B: the AutoScaler's computation finishes in under a second.

Paper: every minute the AutoScaler evaluates Eq. (1) and recomputes the
memory-for-hit-rate table with MIMIR over the recent request trace, and
"the above computation takes less than a second".  This benchmark times
a full evaluation -- profiling a 100k-request window plus the sizing
decision -- for both the MIMIR and the exact profiler, and checks the
MIMIR path meets the sub-second claim.
"""

import pytest

from repro.cache_analysis.mrc import hit_rate_table
from repro.core.autoscaler import AutoScaler, AutoScalerConfig
from repro.sim.experiment import ExperimentConfig, build_stack

from benchmarks._harness import BENCH_SEED, write_report

WINDOW = 100_000
MIB = 1 << 20


@pytest.fixture(scope="module")
def key_window():
    config = ExperimentConfig(policy="baseline", seed=BENCH_SEED)
    dataset, generator, *_ = build_stack(config)
    # Slab-aware footprint with partitioning headroom, as the simulator's
    # control loop uses (see repro.sim.experiment).
    bytes_per_item = 1.4 * dataset.average_chunk_bytes(
        config.min_chunk, config.growth_factor
    )
    return generator.key_stream(WINDOW), bytes_per_item


def evaluate(profiler_name: str, keys, bytes_per_item: float):
    scaler = AutoScaler(
        AutoScalerConfig(
            db_capacity_rps=45.0,
            node_memory_bytes=8 * MIB,
            bytes_per_item=bytes_per_item,
            profiler=profiler_name,
            window_requests=WINDOW,
        )
    )
    for key in keys:
        scaler.observe(key)
    decision = scaler.decide(request_rate=1000.0, current_nodes=10)
    table = hit_rate_table(scaler.hit_rate_curve(), bytes_per_item)
    return decision, table


@pytest.mark.benchmark(group="autoscaler")
def bench_autoscaler_mimir(benchmark, key_window):
    keys, bytes_per_item = key_window
    decision, table = benchmark.pedantic(
        evaluate, args=("mimir", keys, bytes_per_item), rounds=3, iterations=1
    )
    stats = benchmark.stats.stats
    rows = [
        f"MIMIR evaluation over {WINDOW:,} requests: "
        f"mean {stats.mean:.3f}s (paper: <1s)",
        f"decision: target {decision.target_nodes} nodes, "
        f"p_min {decision.p_min:.3f}",
        f"hit-rate table rows: {len(table)}",
    ]
    write_report("autoscaler_mimir", rows)
    assert decision.target_nodes >= 1
    # The paper's sub-second claim is for its C implementation; pure
    # Python costs ~30 us/request, and shared CI machines add noise.
    # The complexity (linear in the window) is the reproduced claim.
    assert stats.mean < 8.0


@pytest.mark.benchmark(group="autoscaler")
def bench_autoscaler_exact(benchmark, key_window):
    keys, bytes_per_item = key_window
    decision, _ = benchmark.pedantic(
        evaluate, args=("exact", keys, bytes_per_item), rounds=3, iterations=1
    )
    assert decision.target_nodes >= 1
