"""Section II-B: cost/energy analysis of Memcached nodes.

Paper: a Memcached node (1 socket, 72 GB) draws ~299 W versus ~204 W for
a web node (2 sockets, 12 GB) -- 47 % more power -- and memory-optimised
EC2 instances cost $0.166/hr versus $0.10/hr -- 66 % more.  An elastic
tier that follows demand therefore saves real money and energy; this
benchmark prints the model's numbers and the savings on the SYS trace.
"""

import numpy as np
import pytest

from repro.analysis.cost import (
    MEMCACHED_NODE,
    WEB_NODE,
    EC2_COMPUTE_HOURLY,
    EC2_MEMORY_HOURLY,
    cost_premium,
    energy_kwh,
    power_premium,
    power_watts,
    rental_cost_usd,
    savings_vs_static,
)
from repro.workloads.traces import make_trace

from benchmarks._harness import write_report


def compute_table():
    web_power = power_watts(WEB_NODE)
    cache_power = power_watts(MEMCACHED_NODE)
    # A diurnal tier: 10 nodes at peak, tracking the SYS trace shape
    # (perfect elasticity, 10 nodes max, at least 3).
    trace = make_trace("sys", duration_s=3600).normalised()
    elastic_nodes = np.clip(np.round(trace.values * 10), 3, 10)
    static_nodes = np.full_like(elastic_nodes, 10)
    return {
        "web_power": web_power,
        "cache_power": cache_power,
        "power_premium": power_premium(),
        "cost_premium": cost_premium(),
        "elastic_kwh": energy_kwh(elastic_nodes),
        "static_kwh": energy_kwh(static_nodes),
        "elastic_usd": rental_cost_usd(elastic_nodes),
        "static_usd": rental_cost_usd(static_nodes),
        "savings": savings_vs_static(elastic_nodes, static_nodes=10),
    }


@pytest.mark.benchmark(group="cost")
def bench_cost_energy(benchmark):
    table = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    rows = [
        f"web node power       {table['web_power']:8.1f} W   (paper: ~204 W)",
        f"memcached node power {table['cache_power']:8.1f} W   (paper: ~299 W)",
        f"power premium        {table['power_premium']:8.1%}   (paper: 47%)",
        f"EC2 rates            ${EC2_COMPUTE_HOURLY:.3f}/hr vs "
        f"${EC2_MEMORY_HOURLY:.3f}/hr",
        f"cost premium         {table['cost_premium']:8.1%}   (paper: 66%)",
        "--- one hour on the SYS trace, 10-node tier ---",
        f"static energy        {table['static_kwh']:8.2f} kWh; "
        f"elastic {table['elastic_kwh']:.2f} kWh",
        f"static rental        ${table['static_usd']:7.2f}; "
        f"elastic ${table['elastic_usd']:.2f}",
        f"elastic savings      {table['savings']:8.1%}",
    ]
    write_report("cost_energy", rows)

    assert table["web_power"] == pytest.approx(204.0, abs=1.0)
    assert table["cache_power"] == pytest.approx(299.0, abs=1.0)
    assert table["power_premium"] == pytest.approx(0.47, abs=0.01)
    assert table["cost_premium"] == pytest.approx(0.66, abs=0.01)
    assert table["savings"] > 0.2
