"""Robustness sweep: hit-rate recovery versus fault intensity.

Beyond the paper's cooperative testbed: the SYS scale-in scenario runs
under seeded fault campaigns of increasing intensity (node crashes,
dump/import stalls, flow failures) while ElMem migrates with bounded
retries and a migration deadline.  The sweep measures how gracefully the
warm-up degrades -- how much post-scaling hit rate survives, and whether
migrations completed warm, partially warm, or fell back to cold scaling.
The fault-free point (intensity 0.0) doubles as the regression anchor:
it must match the plain Fig. 6 behaviour.
"""

import pytest

from repro.sim.experiment import run_experiment
from repro.sim.scenarios import (
    FAULT_SWEEP_INTENSITIES,
    fault_sweep_config,
    scale_action_times,
)

from benchmarks._harness import (
    BENCH_DURATION_S,
    BENCH_SEED,
    finite_mean,
    write_report,
)


def run_sweep():
    results = {}
    for intensity in FAULT_SWEEP_INTENSITIES:
        config = fault_sweep_config(
            intensity,
            scenario_name="sys",
            policy="elmem",
            duration_s=BENCH_DURATION_S,
            seed=BENCH_SEED,
        )
        results[intensity] = run_experiment(config)
    return results


@pytest.mark.benchmark(group="fault_degradation")
def bench_fault_degradation(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    scale_time = int(scale_action_times("sys", BENCH_DURATION_S)[0])
    window = (scale_time, min(scale_time + 600, BENCH_DURATION_S))

    rows = [
        "SYS trace, 10 -> 7 nodes under seeded fault campaigns "
        f"(seed {BENCH_SEED}); post-scaling window t=[{window[0]}, {window[1]})s",
        f"{'intensity':>9s} {'faults':>6s} {'crashes':>7s} "
        f"{'post hit rate':>13s} {'migrations':>10s} {'outcomes':>20s} "
        f"{'retries':>7s} {'failed flows':>12s}",
    ]
    for intensity, result in sorted(results.items()):
        injector = result.fault_injector
        applied = len(injector.applied) if injector else 0
        crashes = len(injector.killed) if injector else 0
        hit_rate = finite_mean(result.metrics.hit_rates(), *window)
        outcomes = [m.outcome for m in result.metrics.migrations]
        counts = "/".join(
            f"{outcomes.count(name)}{name[0]}"
            for name in ("warm", "partial", "cold")
        )
        retries = sum(m.retries for m in result.metrics.migrations)
        failed = sum(m.failed_flows for m in result.metrics.migrations)
        rows.append(
            f"{intensity:9.2f} {applied:6d} {crashes:7d} "
            f"{hit_rate:13.3f} {len(outcomes):10d} {counts:>20s} "
            f"{retries:7d} {failed:12d}"
        )
    clean = results[FAULT_SWEEP_INTENSITIES[0]]
    hottest = results[FAULT_SWEEP_INTENSITIES[-1]]
    clean_hr = finite_mean(clean.metrics.hit_rates(), *window)
    hot_hr = finite_mean(hottest.metrics.hit_rates(), *window)
    rows.append(
        f"hit-rate retained at max intensity: {hot_hr / clean_hr:6.1%} "
        "of the fault-free run"
    )
    write_report("fault_degradation", rows)

    # Shape assertions: the fault-free run migrates warm, every faulted
    # run still finishes with a serving cluster, and degradation is
    # recorded rather than silently dropped.
    assert all(m.outcome == "warm" for m in clean.metrics.migrations)
    for result in results.values():
        assert len(result.cluster.active_members) >= 1
        for migration in result.metrics.migrations:
            assert migration.outcome in ("warm", "partial", "cold")
    assert clean_hr > 0
