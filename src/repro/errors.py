"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class CapacityError(ReproError):
    """An operation exceeded a hard capacity limit (memory, ring, ...)."""


class MembershipError(ReproError):
    """A cluster-membership operation referenced an unknown or duplicate node."""


class MigrationError(ReproError):
    """A data-migration step could not be completed."""
