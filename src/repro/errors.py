"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class CapacityError(ReproError):
    """An operation exceeded a hard capacity limit (memory, ring, ...)."""


class MembershipError(ReproError):
    """A cluster-membership operation referenced an unknown or duplicate node."""


class MigrationError(ReproError):
    """A data-migration step could not be completed."""


class MigrationAbortedError(MigrationError):
    """A migration hit its deadline and the warm-up was abandoned.

    Raised only when the Master is configured with ``on_deadline="raise"``;
    the default behaviour degrades to cold scaling instead, because the
    scaling action itself must still complete.
    """


class FaultError(ReproError):
    """An injected fault made an operation fail (node crash, flow loss)."""


class FlowTimeoutError(FaultError):
    """A network flow exceeded its configured timeout."""
