"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class CapacityError(ReproError):
    """An operation exceeded a hard capacity limit (memory, ring, ...)."""


class MembershipError(ReproError):
    """A cluster-membership operation referenced an unknown or duplicate node."""


class RingMutationError(MembershipError):
    """Ring membership changed while a batched lookup or iteration was
    in flight.

    Raised by :meth:`~repro.hashing.ketama.ConsistentHashRing.lookup_many`
    (and the rendezvous equivalent) when ``add_node``/``remove_node`` is
    called mid-stream -- e.g. from a key-producing generator -- because the
    routes computed so far would mix memberships and silently misroute.
    """


class MigrationError(ReproError):
    """A data-migration step could not be completed."""


class MigrationAbortedError(MigrationError):
    """A migration hit its deadline and the warm-up was abandoned.

    Raised only when the Master is configured with ``on_deadline="raise"``;
    the default behaviour degrades to cold scaling instead, because the
    scaling action itself must still complete.
    """


class InvariantViolation(ReproError):
    """A runtime invariant check found corrupted state.

    Raised by the :mod:`repro.check.invariants` validators (and by the
    Master's ``strict_mode`` hooks).  Carries structured context so a
    failing check can be diagnosed without re-running:

    ``invariant``
        Which validator fired (``"lru"``, ``"slabs"``, ``"ring"``,
        ``"fusecache"``).
    ``subject``
        The checked object (node name, ring description, ...).
    ``diff``
        A mapping of field -> ``{"expected": ..., "actual": ...}`` for
        every mismatching quantity.
    """

    def __init__(
        self,
        invariant: str,
        subject: str,
        message: str,
        diff: dict | None = None,
    ) -> None:
        self.invariant = invariant
        self.subject = subject
        self.diff = dict(diff or {})
        detail = f"[{invariant}] {subject}: {message}"
        if self.diff:
            parts = ", ".join(
                f"{field}: expected {entry['expected']!r}, "
                f"got {entry['actual']!r}"
                for field, entry in self.diff.items()
            )
            detail = f"{detail} ({parts})"
        super().__init__(detail)


class TransportError(ReproError):
    """A live network operation failed for good.

    Raised by :mod:`repro.net` clients once a request has exhausted its
    retry budget (connection refused/reset, stalled server past the
    configured timeout, connection closed mid-response).  The Master
    treats a :class:`TransportError` during phase 3 of a live migration
    exactly like an exhausted simulated flow: the pair is recorded as a
    failed flow and the migration degrades rather than crashing.
    """


class CircuitOpenError(TransportError):
    """A request was rejected locally because a backend's circuit is open.

    Raised inside the proxy tier (:mod:`repro.proxy`) when a
    :class:`~repro.proxy.breaker.CircuitBreaker` is refusing traffic to a
    backend that has been failing.  It subclasses
    :class:`TransportError` because callers must treat it exactly like an
    exhausted transport retry -- degrade, never crash -- except that it
    costs nothing: the failure is known before any socket is touched.
    """


class WireProtocolError(ReproError):
    """A live node answered a request with a protocol error line.

    Unlike :class:`TransportError` this is deterministic -- retrying the
    same bytes would fail the same way -- so clients raise immediately
    instead of burning their retry budget.
    """


class BlockingCallError(ReproError):
    """A blocking call was trapped on an event-loop thread.

    Raised by the :class:`~repro.check.loopcheck.LoopSanitizer` blocking
    trap when sanitized code calls ``time.sleep`` (or another trapped
    blocking primitive) on a thread that is running an asyncio event
    loop.  Such a call would stall every connection sharing the loop;
    the trap turns the latent stall into an immediate, attributable
    failure.
    """


class FaultError(ReproError):
    """An injected fault made an operation fail (node crash, flow loss)."""


class FlowTimeoutError(FaultError):
    """A network flow exceeded its configured timeout."""
