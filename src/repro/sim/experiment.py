"""Scenario runner: trace x policy x scaling actions -> per-second metrics.

One :func:`run_experiment` call reproduces one line of one paper figure:
it builds the dataset, cluster, database, and policy; pre-warms the cache
to a realistic MRU state; replays the demand trace second by second; and
fires the scaling actions either from an explicit schedule (the
annotations on Figs. 6/8) or from the stack-distance AutoScaler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.autoscaler import (
    AutoScaler,
    AutoScalerConfig,
    ScalingDecision,
    ScalingEngine,
    ScalingEngineConfig,
    ScheduledScalingPolicy,
)
from repro.core.master import Master, MigrationReport
from repro.core.policies import MigrationPolicy, make_policy
from repro.core.retry import RetryPolicy
from repro.database.latency import DatabaseTier
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultSchedule
from repro.memcached.cluster import MemcachedCluster
from repro.netsim.transfer import GBIT, NetworkModel
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim.metrics import MetricsCollector
from repro.sim.webapp import LatencyModel, WebApplication
from repro.workloads.generator import RequestGenerator
from repro.workloads.keyspace import Dataset, build_dataset
from repro.workloads.popularity import (
    NodeBiasedPopularity,
    ZipfPopularity,
    lognormal_node_weights,
)
from repro.workloads.traces import RateTrace, make_trace

MIB = 1 << 20


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one experiment line.

    The defaults describe a laptop-scale version of the paper's testbed:
    10 cache nodes, a Zipf-skewed dataset a bit larger than the tier's
    aggregate memory, and a database whose capacity comfortably absorbs
    steady-state misses but saturates under a post-scaling miss storm.
    """

    trace: RateTrace | str = "etc"
    policy: MigrationPolicy | str = "elmem"
    duration_s: int | None = None
    num_keys: int = 150_000
    initial_nodes: int = 10
    # 10 pages/node: the 10-node tier holds ~80% of the (chunk-rounded)
    # dataset -- high stable hit rate with real eviction pressure once
    # the tier shrinks below ~9 nodes.
    memory_per_node: int = 10 * MIB
    peak_request_rate: float = 250.0
    items_per_request: int = 4
    zipf_alpha: float = 1.0
    max_value_size: int = 6_000
    # Inter-node hot-spot spread: sigma of the lognormal per-node hotness
    # multiplier (0 = perfectly symmetric placement).  Production tiers
    # show real per-node temperature differences, which is what makes
    # node *choice* (Q2) and metadata-aware migration (Q3) matter.
    node_bias_sigma: float = 0.5
    min_chunk: int = 96
    # A coarse growth factor keeps the number of slab classes below the
    # per-node page count; tiny simulated nodes would otherwise starve
    # rare size classes of pages entirely.
    growth_factor: float = 3.0
    db_capacity_rps: float = 45.0
    db_service_time_s: float = 0.004
    schedule: list[tuple[float, int]] = field(default_factory=list)
    autoscale: bool = False
    autoscale_interval_s: float = 60.0
    # Do not act before the profiling window has seen enough requests;
    # a cold-dominated window makes every hit-rate target look
    # unreachable and the working set look tiny.
    autoscale_min_window: int = 50_000
    warmup_seconds: int = 30
    # "prepend" is Memcached-faithful (batch import at the MRU head);
    # "merge" keeps MRU lists timestamp-sorted (ablation).
    import_mode: str = "prepend"
    nic_bandwidth_bps: float = 0.25 * GBIT
    latency: LatencyModel = field(default_factory=LatencyModel)
    seed: int = 0
    # Robustness: an optional seeded fault campaign applied while the
    # trace replays, plus the Master's resilience knobs.
    fault_schedule: FaultSchedule | None = None
    retry_policy: RetryPolicy | None = None
    migration_deadline_s: float | None = None
    flow_timeout_s: float | None = None
    # Observability: pass ``create_telemetry()`` to record migration
    # span trees and metrics for the whole stack; the default no-op
    # telemetry keeps the hot path unmeasured and near-free.
    telemetry: Telemetry | None = None
    # Correctness: run the repro.check invariant validators after every
    # migration phase (`repro check`'s smoke runs and CI set this).  A
    # corrupted LRU list / slab count / ring raises InvariantViolation
    # instead of silently distorting the results.
    strict_checks: bool = False
    # Serve multi-gets and read-through fills via the cluster's batched
    # fast paths (get_many/set_many).  ``False`` selects the per-op
    # reference path; both produce bit-identical caches, stats, and
    # telemetry (tests/test_batch_equivalence.py holds this).
    batched_ops: bool = True

    def trace_object(self) -> RateTrace:
        """The demand trace, resolved from a registry name if needed."""
        if isinstance(self.trace, RateTrace):
            return self.trace
        return make_trace(self.trace)


@dataclass
class ExperimentResult:
    """Outputs of one experiment run."""

    config: ExperimentConfig
    metrics: MetricsCollector
    policy: MigrationPolicy
    scaling_times: list[float]
    decisions: list[ScalingDecision]
    dataset: Dataset
    cluster: MemcachedCluster
    master: Master | None = None
    telemetry: Telemetry = NULL_TELEMETRY

    @property
    def reports(self) -> list[MigrationReport]:
        """Migration reports produced by the policy, if any."""
        return self.policy.reports

    @property
    def trace(self):
        """Root migration spans recorded by the run's tracer.

        Empty when the experiment ran without telemetry.
        """
        return self.telemetry.tracer.roots

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The run's fault injector, when a schedule was configured."""
        return self.master.fault_injector if self.master else None

    def summary(self) -> dict[str, float]:
        """Headline metrics over the measured window."""
        return self.metrics.summary()


def build_stack(config: ExperimentConfig):
    """Construct (dataset, generator, cluster, database, master, policy).

    Exposed separately so benchmarks and examples can assemble partial
    stacks (e.g. Fig. 7 needs a warmed cluster but no traffic replay).
    """
    telemetry = config.telemetry or NULL_TELEMETRY
    dataset = build_dataset(
        config.num_keys,
        seed=config.seed,
        max_value_size=config.max_value_size,
    )
    names = [f"node-{i:03d}" for i in range(config.initial_nodes)]
    cluster = MemcachedCluster(
        names,
        config.memory_per_node,
        min_chunk=config.min_chunk,
        growth_factor=config.growth_factor,
        metrics=telemetry.metrics if telemetry.enabled else None,
    )
    popularity = ZipfPopularity(
        config.num_keys, alpha=config.zipf_alpha, seed=config.seed + 1
    )
    if config.node_bias_sigma > 0:
        weights = lognormal_node_weights(
            names, config.node_bias_sigma, seed=config.seed + 4
        )
        owners = cluster.route_many(
            dataset.keyspace.keys_for(range(config.num_keys))
        )
        popularity = NodeBiasedPopularity(
            popularity, owners, weights, seed=config.seed + 1
        )
    generator = RequestGenerator(
        dataset,
        popularity,
        items_per_request=config.items_per_request,
        seed=config.seed + 2,
    )
    database = DatabaseTier(
        dataset.store,
        capacity_rps=config.db_capacity_rps,
        service_time_s=config.db_service_time_s,
    )
    network = NetworkModel(
        nic_bandwidth_bps=config.nic_bandwidth_bps,
        flow_timeout_s=config.flow_timeout_s,
        metrics=telemetry.metrics if telemetry.enabled else None,
    )
    master = Master(
        cluster,
        network=network,
        import_mode=config.import_mode,
        retry_policy=config.retry_policy,
        deadline_s=config.migration_deadline_s,
        telemetry=telemetry,
        strict_mode=config.strict_checks,
    )
    if config.fault_schedule is not None:
        FaultInjector(
            cluster, config.fault_schedule, telemetry=telemetry
        ).attach(master)
    if isinstance(config.policy, MigrationPolicy):
        policy = config.policy
    else:
        policy = make_policy(config.policy)
    policy.bind(cluster, master, random.Random(config.seed + 3))
    return dataset, generator, cluster, database, master, policy


def prefill_cluster(
    cluster: MemcachedCluster,
    dataset: Dataset,
    popularity: NodeBiasedPopularity | ZipfPopularity,
    end_time: float = -1.0,
) -> None:
    """Load the dataset into the cluster with popularity-ordered recency.

    Items are inserted coldest-first with increasing (negative) access
    timestamps, so after the fill each node's MRU lists approximate the
    steady state of a long-running cache: popular keys sit at the head,
    unpopular keys at the eviction tail.  This replaces hours of warm-up
    traffic with one pass over the key space.
    """
    order = popularity.rank_order()[::-1]  # coldest first
    spacing = 0.001
    start = end_time - spacing * len(order)
    keys = dataset.keyspace.keys_for(order)
    # Each item carries its own timestamp (that is the point of the
    # prefill), so this stays a per-item set; key materialization and
    # routing are still batched.
    owners = cluster.route_many(keys)
    nodes = cluster.nodes
    store_get = dataset.store.get
    for position, (key, owner) in enumerate(zip(keys, owners)):
        value, value_size = store_get(key)
        nodes[owner].set(key, value, value_size, start + spacing * position)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one full scenario and return its per-second metrics."""
    trace = config.trace_object()
    duration = config.duration_s or trace.duration_s
    dataset, generator, cluster, database, master, policy = build_stack(
        config
    )
    prefill_cluster(
        cluster,
        dataset,
        generator.popularity,
        end_time=-(config.warmup_seconds + 1.0),
    )

    engine: ScalingEngine | None = None
    observer = None
    if config.autoscale:
        # Slab-aware footprint plus ~40% headroom: page quantisation,
        # ring imbalance, and the partitioned-LRU penalty (a hash-
        # partitioned cache under skewed per-node demand hits less than
        # one global LRU of the same total size, which is what the
        # stack-distance curve models).  Raw item bytes would
        # under-provision the tier badly.
        chunk_bytes = dataset.average_chunk_bytes(
            config.min_chunk, config.growth_factor
        )
        engine = ScalingEngine(
            AutoScaler(
                AutoScalerConfig(
                    db_capacity_rps=config.db_capacity_rps,
                    node_memory_bytes=config.memory_per_node,
                    bytes_per_item=1.4 * chunk_bytes,
                    hit_rate_margin=0.02,
                    max_nodes=max(4, config.initial_nodes * 2),
                ),
                telemetry=config.telemetry,
            ),
            ScalingEngineConfig(
                evaluate_interval_s=config.autoscale_interval_s,
                min_window=config.autoscale_min_window,
            ),
        )
        observer = engine.observe_many

    app = WebApplication(
        generator,
        policy,
        database,
        latency=config.latency,
        seed=config.seed,
        key_observer=observer,
        batched_ops=config.batched_ops,
    )
    schedule = ScheduledScalingPolicy(config.schedule)
    metrics = MetricsCollector()
    scaling_times: list[float] = []
    decisions: list[ScalingDecision] = []
    telemetry = config.telemetry or NULL_TELEMETRY
    obs = telemetry.metrics
    g_backlog = obs.gauge(
        "db_backlog", "Database backlog (queued requests)"
    )
    g_nodes = obs.gauge("active_nodes", "Nodes on the hash ring")

    # Warm-up traffic at the trace's initial rate (negative times).
    initial_rate = trace.rate_at(0) * config.peak_request_rate
    for tick in range(config.warmup_seconds):
        now = float(tick - config.warmup_seconds)
        policy.tick(now)
        app.run_second(now, initial_rate)
    database.reset()

    rates = trace.normalised().values * config.peak_request_rate
    recent_kv_rate = initial_rate * config.items_per_request
    for tick in range(duration):
        now = float(tick)
        if master.fault_injector is not None:
            master.fault_injector.advance(now)
        policy.tick(now)

        pending_action = schedule.pending_action(
            now, len(cluster.active_members)
        )
        if pending_action is not None:
            scaling_times.append(now)
            decisions.append(pending_action)
            policy.on_scale_decision(pending_action.target_nodes, now)

        if engine is not None:
            engine_tick = engine.evaluate(
                recent_kv_rate,
                len(cluster.active_members),
                now=now,
                busy=policy.pending,
            )
            if engine_tick is not None:
                decisions.append(engine_tick.decision)
                if engine_tick.act:
                    scaling_times.append(now)
                    policy.on_scale_decision(
                        engine_tick.decision.target_nodes, now
                    )

        rate = float(rates[min(tick, len(rates) - 1)])
        record = app.run_second(now, rate)
        metrics.add(record)
        g_backlog.set(database.backlog_requests)
        g_nodes.set(len(cluster.active_members))
        if record.kv_gets:
            recent_kv_rate = 0.8 * recent_kv_rate + 0.2 * record.kv_gets

    for report in policy.reports:
        metrics.record_migration(report)

    return ExperimentResult(
        config=config,
        metrics=metrics,
        policy=policy,
        scaling_times=scaling_times,
        decisions=decisions,
        dataset=dataset,
        cluster=cluster,
        master=master,
        telemetry=telemetry,
    )


def compare_policies(
    base_config: ExperimentConfig, policies: list[str]
) -> dict[str, ExperimentResult]:
    """Run the same scenario under several policies (Fig. 6/8 harness)."""
    results: dict[str, ExperimentResult] = {}
    for name in policies:
        if name not in ("baseline", "elmem", "naive", "cachescale"):
            raise ConfigurationError(f"unknown policy {name!r}")
        config = ExperimentConfig(**{**base_config.__dict__, "policy": name})
        results[name] = run_experiment(config)
    return results
