"""The multi-tier web application (paper Fig. 1 / Section V-A).

Each simulated second: web requests arrive Poisson at the trace's rate,
every request multi-gets its KV pairs from the cache tier (through the
active migration policy, which may consult a secondary cache), misses are
fetched from the database and written back to the cache, and the
request's response time is the weighted average of its per-KV latencies
-- exactly the paper's RT definition.  The per-second 95th percentile of
those response times is what Figs. 2/6/8 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.policies import MigrationPolicy
from repro.database.latency import DatabaseTier
from repro.sim.metrics import SecondRecord
from repro.workloads.generator import RequestGenerator


@dataclass
class LatencyModel:
    """Fixed component latencies of the request path (milliseconds)."""

    cache_hit_ms: float = 0.8
    secondary_hit_ms: float = 2.0
    web_overhead_ms: float = 0.3

    def __post_init__(self) -> None:
        if min(self.cache_hit_ms, self.secondary_hit_ms) <= 0:
            raise ValueError("latencies must be positive")


class WebApplication:
    """Drives one second of traffic at a time through the full stack."""

    def __init__(
        self,
        generator: RequestGenerator,
        policy: MigrationPolicy,
        database: DatabaseTier,
        latency: LatencyModel | None = None,
        seed: int = 0,
        key_observer: Callable[[list[str]], None] | None = None,
        write_fraction: float = 0.0,
        batched_ops: bool = True,
    ) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.generator = generator
        self.policy = policy
        self.database = database
        self.latency = latency or LatencyModel()
        self.key_observer = key_observer
        # Fraction of KV operations that are writes (set + database
        # write-through).  The paper's evaluation uses read-only gets
        # (Section V-A); writes are supported for completeness.
        self.write_fraction = write_fraction
        # Batched mode serves each request's multi-get and its read-
        # through fills via the cluster's *_many fast paths; the per-op
        # mode is kept as the equivalence oracle.  Both are per-request,
        # so fill interleaving (and thus every cache decision) is
        # bit-identical between the two.
        self.batched_ops = batched_ops
        self._rng = np.random.default_rng(seed + 7)

    def run_second(self, now: float, rate_rps: float) -> SecondRecord:
        """Simulate one second of traffic at mean ``rate_rps`` requests/s."""
        batches = self.generator.requests_for_second(rate_rps)
        active_nodes = len(self.policy.cluster.active_members)
        if not batches:
            idle_db_ms = self.database.observe_second(0.0) * 1000.0
            return SecondRecord(
                time=now,
                requests=0,
                kv_gets=0,
                hits=0,
                misses=0,
                secondary_hits=0,
                p95_rt_ms=float("nan"),
                mean_rt_ms=float("nan"),
                db_latency_ms=idle_db_ms,
                active_nodes=active_nodes,
                db_backlog=self.database.backlog_requests,
            )

        hit_counts = np.empty(len(batches), dtype=np.int64)
        miss_counts = np.empty(len(batches), dtype=np.int64)
        secondary_counts = np.empty(len(batches), dtype=np.int64)
        write_counts = np.zeros(len(batches), dtype=np.int64)
        batched = self.batched_ops
        multiget = (
            self.policy.multiget if batched else self.policy.multiget_serial
        )
        for index, keys in enumerate(batches):
            if self.key_observer is not None:
                self.key_observer(keys)
            if self.write_fraction > 0.0:
                keys, written = self._apply_writes(keys, now)
                write_counts[index] = written
                if not keys:
                    hit_counts[index] = 0
                    miss_counts[index] = 0
                    secondary_counts[index] = 0
                    continue
            result = multiget(keys, now)
            hit_counts[index] = result.hit_count
            miss_counts[index] = len(result.misses)
            secondary_counts[index] = result.secondary_hits
            if batched and result.misses:
                fills = []
                for key in result.misses:
                    value, value_size = self.database.get(key)
                    fills.append((key, value, value_size))
                self.policy.fill_many(fills, now)
            else:
                for key in result.misses:
                    value, value_size = self.database.get(key)
                    self.policy.fill(key, value, value_size, now)

        total_misses = int(miss_counts.sum())
        total_writes = int(write_counts.sum())
        # Writes hit the database too (write-through), adding to r_DB's
        # load alongside the read misses.
        db_mean_s = self.database.observe_second(
            float(total_misses + total_writes)
        )
        db_mean_ms = db_mean_s * 1000.0

        # Per-request DB latency: the sum of m i.i.d. exponential fetches
        # is Erlang(m) -- drawn as a Gamma with shape m.  Write-throughs
        # pay the database the same way read misses do.
        db_ops = miss_counts + write_counts
        miss_latency_ms = np.zeros(len(batches))
        has_miss = db_ops > 0
        if has_miss.any():
            miss_latency_ms[has_miss] = self._rng.gamma(
                shape=db_ops[has_miss].astype(np.float64),
                scale=db_mean_ms,
            )
        primary_hits = hit_counts - secondary_counts
        per_item_total_ms = (
            primary_hits * self.latency.cache_hit_ms
            + secondary_counts * self.latency.secondary_hit_ms
            + miss_latency_ms
        )
        items = self.generator.items_per_request
        response_ms = (
            per_item_total_ms / items + self.latency.web_overhead_ms
        )

        p50, p95, p99 = np.percentile(response_ms, [50, 95, 99])
        return SecondRecord(
            time=now,
            requests=len(batches),
            kv_gets=int(hit_counts.sum() + miss_counts.sum()),
            hits=int(hit_counts.sum()),
            misses=total_misses,
            secondary_hits=int(secondary_counts.sum()),
            p95_rt_ms=float(p95),
            mean_rt_ms=float(response_ms.mean()),
            db_latency_ms=db_mean_ms,
            active_nodes=active_nodes,
            db_backlog=self.database.backlog_requests,
            p50_rt_ms=float(p50),
            p99_rt_ms=float(p99),
            writes=total_writes,
        )

    def _apply_writes(
        self, keys: list[str], now: float
    ) -> tuple[list[str], int]:
        """Split a request's keys into writes (executed) and reads.

        Each write stores a fresh value of the key's existing size into
        both the database (write-through) and the cache.
        """
        reads: list[str] = []
        written = 0
        for key in keys:
            if self._rng.random() >= self.write_fraction:
                reads.append(key)
                continue
            store = self.database.store
            value_size = store.value_size(key)
            new_value = f"w@{now}"
            store.put(key, new_value, value_size)
            self.policy.fill(key, new_value, value_size, now)
            written += 1
        return reads, written
