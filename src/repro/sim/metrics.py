"""Per-second metrics, matching what the paper's figures plot.

Every simulated second yields one :class:`SecondRecord` with the cache
hit rate and the 95th-percentile web-request response time -- the two
series of Fig. 2/6/8 -- plus supporting detail (node count, database
latency and backlog) used by the analysis module.

Robustness experiments additionally record one
:class:`MigrationOutcome` per executed migration: how many retries and
failed flows the fault campaign caused, and whether the warm-up
completed warm, partially warm, or degraded to cold scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class MigrationOutcome:
    """Robustness bookkeeping for one executed migration."""

    time: float
    kind: str  # "scale_in" | "scale_out"
    outcome: str  # "warm" | "partial" | "cold"
    retries: int
    failed_flows: int
    skipped_pairs: int
    unattempted_pairs: int
    items_imported: int
    retry_time_s: float
    abort_reason: str | None = None

    @classmethod
    def from_report(cls, report) -> "MigrationOutcome":
        """Build from a :class:`~repro.core.master.MigrationReport`."""
        return cls(
            time=report.executed_at,
            kind=report.plan.kind,
            outcome=report.outcome,
            retries=report.retries,
            failed_flows=len(report.failed_flows),
            skipped_pairs=len(report.skipped_pairs),
            unattempted_pairs=len(report.unattempted_pairs),
            items_imported=report.items_imported,
            retry_time_s=report.retry_time_s,
            abort_reason=report.abort_reason,
        )


@dataclass
class SecondRecord:
    """Aggregates for one simulated second."""

    time: float
    requests: int
    kv_gets: int
    hits: int
    misses: int
    secondary_hits: int
    p95_rt_ms: float
    mean_rt_ms: float
    db_latency_ms: float
    active_nodes: int
    db_backlog: float = 0.0
    p50_rt_ms: float = float("nan")
    p99_rt_ms: float = float("nan")
    writes: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over this second's KV gets (1.0 when idle)."""
        if self.kv_gets == 0:
            return 1.0
        return self.hits / self.kv_gets


@dataclass
class MetricsCollector:
    """Time-ordered sequence of per-second records with array accessors."""

    records: list[SecondRecord] = field(default_factory=list)
    migrations: list[MigrationOutcome] = field(default_factory=list)

    def add(self, record: SecondRecord) -> None:
        """Append one second of measurements."""
        self.records.append(record)

    def record_migration(self, report) -> MigrationOutcome:
        """Record the robustness outcome of one executed migration."""
        outcome = MigrationOutcome.from_report(report)
        self.migrations.append(outcome)
        return outcome

    def __len__(self) -> int:
        return len(self.records)

    def times(self) -> np.ndarray:
        """Timestamps of all records."""
        return np.array([r.time for r in self.records])

    def series(self, name: str) -> np.ndarray:
        """Any record attribute/property as a float array."""
        return np.array(
            [float(getattr(r, name)) for r in self.records]
        )

    def hit_rates(self) -> np.ndarray:
        """Per-second hit rate series."""
        return self.series("hit_rate")

    def p95_series_ms(self) -> np.ndarray:
        """Per-second 95th-percentile RT series (milliseconds)."""
        return self.series("p95_rt_ms")

    def between(self, start: float, end: float) -> "MetricsCollector":
        """Records and migrations with ``start <= time < end``."""
        subset = [r for r in self.records if start <= r.time < end]
        migrations = [
            m for m in self.migrations if start <= m.time < end
        ]
        return MetricsCollector(subset, migrations)

    def summary(self) -> dict[str, float]:
        """Headline aggregates over the collected window."""
        if not self.records:
            return {}
        p95 = self.p95_series_ms()
        finite = p95[np.isfinite(p95)]
        result = {
            "seconds": float(len(self.records)),
            "mean_hit_rate": float(self.hit_rates().mean()),
            "mean_p95_rt_ms": float(finite.mean()) if len(finite) else 0.0,
            "max_p95_rt_ms": float(finite.max()) if len(finite) else 0.0,
            "total_requests": float(self.series("requests").sum()),
        }
        if self.migrations:
            result["migrations"] = float(len(self.migrations))
            for outcome in ("warm", "partial", "cold"):
                result[f"migrations_{outcome}"] = float(
                    sum(1 for m in self.migrations if m.outcome == outcome)
                )
            result["migration_retries"] = float(
                sum(m.retries for m in self.migrations)
            )
            result["migration_failed_flows"] = float(
                sum(m.failed_flows for m in self.migrations)
            )
            result["migration_skipped_pairs"] = float(
                sum(m.skipped_pairs for m in self.migrations)
            )
        return result
