"""Exporting simulation metrics for external analysis/plotting.

The paper's figures are per-second time series; this module writes them
as CSV/JSON so any plotting tool can regenerate the plots from a run.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.sim.metrics import MetricsCollector

FIELDS = [
    "time",
    "requests",
    "kv_gets",
    "hits",
    "misses",
    "secondary_hits",
    "hit_rate",
    "p50_rt_ms",
    "p95_rt_ms",
    "p99_rt_ms",
    "mean_rt_ms",
    "db_latency_ms",
    "db_backlog",
    "active_nodes",
    "writes",
]


def metrics_to_rows(metrics: MetricsCollector) -> list[dict[str, float]]:
    """Flatten per-second records into plain dicts (one per second)."""
    rows = []
    for record in metrics.records:
        rows.append(
            {name: float(getattr(record, name)) for name in FIELDS}
        )
    return rows


def write_csv(metrics: MetricsCollector, path: str | Path) -> Path:
    """Write the per-second series as CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(metrics_to_rows(metrics))
    return path


def write_json(metrics: MetricsCollector, path: str | Path) -> Path:
    """Write the per-second series as JSON; returns the path written."""
    path = Path(path)
    payload = {
        "fields": FIELDS,
        "records": metrics_to_rows(metrics),
        "summary": metrics.summary(),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def read_csv(path: str | Path) -> list[dict[str, float]]:
    """Read back a CSV written by :func:`write_csv`."""
    with Path(path).open() as handle:
        return [
            {name: float(value) for name, value in row.items()}
            for row in csv.DictReader(handle)
        ]
