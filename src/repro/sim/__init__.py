"""Discrete-time multi-tier application simulator (paper Section V-A).

Replays a demand trace against the full stack -- load balancer semantics,
web-tier multi-gets, the Memcached cluster, and the capacity-limited
database -- in one-second ticks, recording per-second hit rate and
95th-percentile response time exactly as the paper's figures plot them.
"""

from repro.sim.clock import SimulationClock
from repro.sim.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.sim.metrics import MetricsCollector, MigrationOutcome, SecondRecord
from repro.sim.webapp import LatencyModel, WebApplication

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "LatencyModel",
    "MetricsCollector",
    "MigrationOutcome",
    "SecondRecord",
    "SimulationClock",
    "WebApplication",
    "run_experiment",
]
