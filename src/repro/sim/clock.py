"""Simulation time.

All timestamps in the system are simulation seconds from this clock;
nothing reads the wall clock, so runs are fully reproducible.  Warm-up
happens at negative times so that measurements start exactly at t=0 with
a realistic cache state.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class SimulationClock:
    """A monotonically advancing simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def advance(self, seconds: float = 1.0) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ConfigurationError("cannot advance time backwards")
        self._now += seconds
        return self._now

    def at(self, seconds: float) -> float:
        """Jump to an absolute time not before the current one."""
        if seconds < self._now:
            raise ConfigurationError("cannot move the clock backwards")
        self._now = float(seconds)
        return self._now
