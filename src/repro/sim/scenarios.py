"""The paper's evaluation scenarios (Figs. 2, 6, and 8).

Each of the five demand traces comes with the scaling action(s) the
paper's Fig. 6 subcaptions annotate -- e.g. SYS runs "10 -> 7 nodes" when
its demand drops, ETC runs a scale-in followed by a scale-out.  Action
times are placed right after the corresponding demand change of the
synthetic trace shapes.

All parameters are calibrated so the laptop-scale simulator reproduces
the paper's *shapes*: a stable tail RT of tens of milliseconds, a
baseline post-scaling spike of ~20-80x with minutes-long restoration, and
an ElMem spike of only a few x (see EXPERIMENTS.md for measured vs
reported numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import MigrationPolicy
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig
from repro.workloads.traces import make_trace

DEFAULT_DURATION_S = 1500


@dataclass(frozen=True)
class PaperScenario:
    """One trace's evaluation setup from Fig. 6."""

    trace_name: str
    initial_nodes: int
    # (fraction of trace duration, target node count)
    actions: tuple[tuple[float, int], ...]
    label: str


PAPER_SCENARIOS: dict[str, PaperScenario] = {
    "sys": PaperScenario(
        trace_name="sys",
        initial_nodes=10,
        actions=((0.375, 7),),
        label="SYS: 10 -> 7 nodes",
    ),
    "etc": PaperScenario(
        trace_name="etc",
        initial_nodes=10,
        actions=((0.42, 9), (0.80, 10)),
        label="ETC: 10 -> 9 and 9 -> 10 nodes",
    ),
    "sap": PaperScenario(
        trace_name="sap",
        initial_nodes=10,
        actions=((0.42, 9), (0.72, 8)),
        label="SAP: 10 -> 9 and 9 -> 8 nodes",
    ),
    "nlanr": PaperScenario(
        trace_name="nlanr",
        initial_nodes=8,
        actions=((0.40, 9), (0.72, 8)),
        label="NLANR: 8 -> 9 and 9 -> 8 nodes",
    ),
    "microsoft": PaperScenario(
        trace_name="microsoft",
        initial_nodes=10,
        actions=((0.42, 9), (0.74, 8)),
        label="Microsoft: 10 -> 9 and 9 -> 8 nodes",
    ),
}


def paper_config(
    scenario_name: str,
    policy: str | MigrationPolicy,
    duration_s: int = DEFAULT_DURATION_S,
    seed: int = 3,
    **overrides,
) -> ExperimentConfig:
    """Build the calibrated :class:`ExperimentConfig` for one scenario.

    ``overrides`` may replace any config field (e.g. a shorter duration
    for smoke tests); the scaling schedule is derived from the scenario's
    action fractions and the actual duration.
    """
    try:
        scenario = PAPER_SCENARIOS[scenario_name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario_name!r}; "
            f"choose from {sorted(PAPER_SCENARIOS)}"
        ) from None
    schedule = [
        (round(fraction * duration_s), target)
        for fraction, target in scenario.actions
    ]
    config = ExperimentConfig(
        trace=make_trace(scenario.trace_name, duration_s=duration_s),
        policy=policy,
        initial_nodes=scenario.initial_nodes,
        schedule=schedule,
        seed=seed,
    )
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise ConfigurationError(f"unknown config field {key!r}")
        setattr(config, key, value)
    return config


def scale_action_times(
    scenario_name: str, duration_s: int = DEFAULT_DURATION_S
) -> list[float]:
    """Absolute times of the scenario's scaling actions."""
    scenario = PAPER_SCENARIOS[scenario_name.lower()]
    return [
        float(round(fraction * duration_s))
        for fraction, _ in scenario.actions
    ]
