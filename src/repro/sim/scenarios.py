"""The paper's evaluation scenarios (Figs. 2, 6, and 8).

Each of the five demand traces comes with the scaling action(s) the
paper's Fig. 6 subcaptions annotate -- e.g. SYS runs "10 -> 7 nodes" when
its demand drops, ETC runs a scale-in followed by a scale-out.  Action
times are placed right after the corresponding demand change of the
synthetic trace shapes.

All parameters are calibrated so the laptop-scale simulator reproduces
the paper's *shapes*: a stable tail RT of tens of milliseconds, a
baseline post-scaling spike of ~20-80x with minutes-long restoration, and
an ElMem spike of only a few x (see EXPERIMENTS.md for measured vs
reported numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import MigrationPolicy
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, FaultSpec
from repro.sim.experiment import ExperimentConfig
from repro.workloads.traces import make_trace

DEFAULT_DURATION_S = 1500


@dataclass(frozen=True)
class PaperScenario:
    """One trace's evaluation setup from Fig. 6."""

    trace_name: str
    initial_nodes: int
    # (fraction of trace duration, target node count)
    actions: tuple[tuple[float, int], ...]
    label: str


PAPER_SCENARIOS: dict[str, PaperScenario] = {
    "sys": PaperScenario(
        trace_name="sys",
        initial_nodes=10,
        actions=((0.375, 7),),
        label="SYS: 10 -> 7 nodes",
    ),
    "etc": PaperScenario(
        trace_name="etc",
        initial_nodes=10,
        actions=((0.42, 9), (0.80, 10)),
        label="ETC: 10 -> 9 and 9 -> 10 nodes",
    ),
    "sap": PaperScenario(
        trace_name="sap",
        initial_nodes=10,
        actions=((0.42, 9), (0.72, 8)),
        label="SAP: 10 -> 9 and 9 -> 8 nodes",
    ),
    "nlanr": PaperScenario(
        trace_name="nlanr",
        initial_nodes=8,
        actions=((0.40, 9), (0.72, 8)),
        label="NLANR: 8 -> 9 and 9 -> 8 nodes",
    ),
    "microsoft": PaperScenario(
        trace_name="microsoft",
        initial_nodes=10,
        actions=((0.42, 9), (0.74, 8)),
        label="Microsoft: 10 -> 9 and 9 -> 8 nodes",
    ),
}


def paper_config(
    scenario_name: str,
    policy: str | MigrationPolicy,
    duration_s: int = DEFAULT_DURATION_S,
    seed: int = 3,
    **overrides,
) -> ExperimentConfig:
    """Build the calibrated :class:`ExperimentConfig` for one scenario.

    ``overrides`` may replace any config field (e.g. a shorter duration
    for smoke tests); the scaling schedule is derived from the scenario's
    action fractions and the actual duration.
    """
    try:
        scenario = PAPER_SCENARIOS[scenario_name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario_name!r}; "
            f"choose from {sorted(PAPER_SCENARIOS)}"
        ) from None
    schedule = [
        (round(fraction * duration_s), target)
        for fraction, target in scenario.actions
    ]
    config = ExperimentConfig(
        trace=make_trace(scenario.trace_name, duration_s=duration_s),
        policy=policy,
        initial_nodes=scenario.initial_nodes,
        schedule=schedule,
        seed=seed,
    )
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise ConfigurationError(f"unknown config field {key!r}")
        setattr(config, key, value)
    return config


def scale_action_times(
    scenario_name: str, duration_s: int = DEFAULT_DURATION_S
) -> list[float]:
    """Absolute times of the scenario's scaling actions."""
    scenario = PAPER_SCENARIOS[scenario_name.lower()]
    return [
        float(round(fraction * duration_s))
        for fraction, _ in scenario.actions
    ]


# ----------------------------------------------------------------------
# Fault sweep (robustness evaluation, beyond the paper's testbed)
# ----------------------------------------------------------------------

FAULT_SWEEP_INTENSITIES = (0.0, 0.3, 0.6, 1.0)
"""Default intensities for the fault-degradation sweep (0 = fault-free)."""


def fault_sweep_config(
    intensity: float,
    scenario_name: str = "sys",
    policy: str | MigrationPolicy = "elmem",
    duration_s: int = DEFAULT_DURATION_S,
    seed: int = 3,
    migration_deadline_s: float = 300.0,
    flow_timeout_s: float = 90.0,
    **overrides,
) -> ExperimentConfig:
    """One point of the fault sweep: a paper scenario plus a seeded
    fault campaign of the given ``intensity``.

    The campaign is generated over the scenario's *initial* node fleet
    (crashes, stalls, flow faults) with ``FaultSchedule.random``; the
    Master runs with a migration deadline and per-flow timeouts so a
    hostile campaign degrades migrations to partial/cold instead of
    letting them run forever.  Because a random campaign rarely lands
    inside the short phase-3 window, intensities >= 0.5 additionally aim
    a timed flow-failure window at each scaling action -- the worst case
    for a warm migration: the network misbehaving exactly while data
    moves.  The same ``(intensity, seed)`` pair always produces the
    identical campaign.
    """
    config = paper_config(
        scenario_name, policy, duration_s=duration_s, seed=seed, **overrides
    )
    names = [f"node-{i:03d}" for i in range(config.initial_nodes)]
    schedule = FaultSchedule.random(
        names,
        float(duration_s),
        seed=seed + 1000,
        intensity=intensity,
    )
    if intensity >= 0.5:
        for action_time in scale_action_times(scenario_name, duration_s):
            schedule.add(
                FaultSpec(
                    action_time + 1.0,
                    "flow_fail",
                    duration_s=30.0 + 60.0 * intensity,
                )
            )
    config.fault_schedule = schedule
    config.migration_deadline_s = migration_deadline_s
    config.flow_timeout_s = flow_timeout_s
    return config
