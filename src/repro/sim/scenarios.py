"""The paper's evaluation scenarios (Figs. 2, 6, and 8).

Each of the five demand traces comes with the scaling action(s) the
paper's Fig. 6 subcaptions annotate -- e.g. SYS runs "10 -> 7 nodes" when
its demand drops, ETC runs a scale-in followed by a scale-out.  Action
times are placed right after the corresponding demand change of the
synthetic trace shapes.

All parameters are calibrated so the laptop-scale simulator reproduces
the paper's *shapes*: a stable tail RT of tens of milliseconds, a
baseline post-scaling spike of ~20-80x with minutes-long restoration, and
an ElMem spike of only a few x (see EXPERIMENTS.md for measured vs
reported numbers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.policies import MigrationPolicy
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, FaultSpec
from repro.sim.experiment import ExperimentConfig
from repro.workloads.traces import make_trace

DEFAULT_DURATION_S = 1500


@dataclass(frozen=True)
class PaperScenario:
    """One trace's evaluation setup from Fig. 6."""

    trace_name: str
    initial_nodes: int
    # (fraction of trace duration, target node count)
    actions: tuple[tuple[float, int], ...]
    label: str


PAPER_SCENARIOS: dict[str, PaperScenario] = {
    "sys": PaperScenario(
        trace_name="sys",
        initial_nodes=10,
        actions=((0.375, 7),),
        label="SYS: 10 -> 7 nodes",
    ),
    "etc": PaperScenario(
        trace_name="etc",
        initial_nodes=10,
        actions=((0.42, 9), (0.80, 10)),
        label="ETC: 10 -> 9 and 9 -> 10 nodes",
    ),
    "sap": PaperScenario(
        trace_name="sap",
        initial_nodes=10,
        actions=((0.42, 9), (0.72, 8)),
        label="SAP: 10 -> 9 and 9 -> 8 nodes",
    ),
    "nlanr": PaperScenario(
        trace_name="nlanr",
        initial_nodes=8,
        actions=((0.40, 9), (0.72, 8)),
        label="NLANR: 8 -> 9 and 9 -> 8 nodes",
    ),
    "microsoft": PaperScenario(
        trace_name="microsoft",
        initial_nodes=10,
        actions=((0.42, 9), (0.74, 8)),
        label="Microsoft: 10 -> 9 and 9 -> 8 nodes",
    ),
}


def paper_config(
    scenario_name: str,
    policy: str | MigrationPolicy,
    duration_s: int = DEFAULT_DURATION_S,
    seed: int = 3,
    **overrides,
) -> ExperimentConfig:
    """Build the calibrated :class:`ExperimentConfig` for one scenario.

    ``overrides`` may replace any config field (e.g. a shorter duration
    for smoke tests); the scaling schedule is derived from the scenario's
    action fractions and the actual duration.
    """
    try:
        scenario = PAPER_SCENARIOS[scenario_name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario_name!r}; "
            f"choose from {sorted(PAPER_SCENARIOS)}"
        ) from None
    schedule = [
        (round(fraction * duration_s), target)
        for fraction, target in scenario.actions
    ]
    config = ExperimentConfig(
        trace=make_trace(scenario.trace_name, duration_s=duration_s),
        policy=policy,
        initial_nodes=scenario.initial_nodes,
        schedule=schedule,
        seed=seed,
    )
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise ConfigurationError(f"unknown config field {key!r}")
        setattr(config, key, value)
    return config


def scale_action_times(
    scenario_name: str, duration_s: int = DEFAULT_DURATION_S
) -> list[float]:
    """Absolute times of the scenario's scaling actions."""
    scenario = PAPER_SCENARIOS[scenario_name.lower()]
    return [
        float(round(fraction * duration_s))
        for fraction, _ in scenario.actions
    ]


# ----------------------------------------------------------------------
# Fault sweep (robustness evaluation, beyond the paper's testbed)
# ----------------------------------------------------------------------

FAULT_SWEEP_INTENSITIES = (0.0, 0.3, 0.6, 1.0)
"""Default intensities for the fault-degradation sweep (0 = fault-free)."""


def fault_sweep_config(
    intensity: float,
    scenario_name: str = "sys",
    policy: str | MigrationPolicy = "elmem",
    duration_s: int = DEFAULT_DURATION_S,
    seed: int = 3,
    migration_deadline_s: float = 300.0,
    flow_timeout_s: float = 90.0,
    **overrides,
) -> ExperimentConfig:
    """One point of the fault sweep: a paper scenario plus a seeded
    fault campaign of the given ``intensity``.

    The campaign is generated over the scenario's *initial* node fleet
    (crashes, stalls, flow faults) with ``FaultSchedule.random``; the
    Master runs with a migration deadline and per-flow timeouts so a
    hostile campaign degrades migrations to partial/cold instead of
    letting them run forever.  Because a random campaign rarely lands
    inside the short phase-3 window, intensities >= 0.5 additionally aim
    a timed flow-failure window at each scaling action -- the worst case
    for a warm migration: the network misbehaving exactly while data
    moves.  The same ``(intensity, seed)`` pair always produces the
    identical campaign.
    """
    config = paper_config(
        scenario_name, policy, duration_s=duration_s, seed=seed, **overrides
    )
    names = [f"node-{i:03d}" for i in range(config.initial_nodes)]
    schedule = FaultSchedule.random(
        names,
        float(duration_s),
        seed=seed + 1000,
        intensity=intensity,
    )
    if intensity >= 0.5:
        for action_time in scale_action_times(scenario_name, duration_s):
            schedule.add(
                FaultSpec(
                    action_time + 1.0,
                    "flow_fail",
                    duration_s=30.0 + 60.0 * intensity,
                )
            )
    config.fault_schedule = schedule
    config.migration_deadline_s = migration_deadline_s
    config.flow_timeout_s = flow_timeout_s
    return config


# ----------------------------------------------------------------------
# Hot-key storm (proxy-tier evaluation, beyond the paper's testbed)
# ----------------------------------------------------------------------

MAX_STORM_HOT_KEYS = 8
"""A storm concentrates on at most this many keys -- the regime where a
single node melts while the fleet idles, which is what the proxy tier's
coalescing and hot-key replication are built for."""


@dataclass(frozen=True)
class HotKeyStorm:
    """One seeded hot-key access burst.

    ``requests`` is the full access sequence, ready to replay against a
    cluster, a proxy router, or a live proxy; ``hot_keys`` are the storm
    targets, hottest first.
    """

    hot_keys: tuple[str, ...]
    cold_keys: tuple[str, ...]
    requests: tuple[str, ...]
    seed: int

    @property
    def hot_share(self) -> float:
        """Realised fraction of requests that land on a hot key."""
        if not self.requests:
            return 0.0
        hot = frozenset(self.hot_keys)
        return sum(1 for key in self.requests if key in hot) / len(
            self.requests
        )


def hot_key_storm(
    requests: int = 1000,
    hot_keys: int = 4,
    cold_keys: int = 256,
    hot_fraction: float = 0.9,
    seed: int = 0,
    key_prefix: str = "storm",
) -> HotKeyStorm:
    """A Zipf-like spike concentrating traffic onto ``hot_keys`` keys.

    Each request lands on the hot set with probability ``hot_fraction``;
    within the hot set, key ``k`` (rank ``r``, 1-based) is drawn with
    weight ``1/r`` -- the head of a Zipf(1) distribution, the shape
    measured for real Memcached workloads (ETC in Atikoglu et al.).  The
    remainder spreads uniformly over a cold keyspace.  The same
    ``(requests, hot_keys, cold_keys, hot_fraction, seed)`` tuple always
    yields the identical sequence.

    ``hot_keys`` is capped at :data:`MAX_STORM_HOT_KEYS`: a "storm" that
    spreads over dozens of keys is just a workload, not a storm, and the
    proxy tests rely on the hot set fitting the replica registry.
    """
    if not 1 <= hot_keys <= MAX_STORM_HOT_KEYS:
        raise ConfigurationError(
            f"hot_keys must be in [1, {MAX_STORM_HOT_KEYS}], got {hot_keys}"
        )
    if cold_keys < 1:
        raise ConfigurationError("cold_keys must be >= 1")
    if requests < 0:
        raise ConfigurationError("requests must be >= 0")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError("hot_fraction must be in [0, 1]")
    rng = random.Random(seed)
    hot = tuple(f"{key_prefix}:hot:{i:02d}" for i in range(hot_keys))
    cold = tuple(f"{key_prefix}:cold:{i:05d}" for i in range(cold_keys))
    weights = [1.0 / rank for rank in range(1, hot_keys + 1)]
    sequence = tuple(
        rng.choices(hot, weights=weights)[0]
        if rng.random() < hot_fraction
        else cold[rng.randrange(cold_keys)]
        for _ in range(requests)
    )
    return HotKeyStorm(
        hot_keys=hot, cold_keys=cold, requests=sequence, seed=seed
    )
