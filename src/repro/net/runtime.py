"""A background asyncio event loop that synchronous code can drive.

The simulator, the Master, and the test suite are synchronous; the live
TCP tier is asyncio.  :class:`EventLoopThread` bridges the two: it runs
one event loop in a daemon thread and lets synchronous callers submit
coroutines and block on their results.  Both the server harness and
:class:`~repro.net.cluster.LiveCluster` own one, so servers and clients
run on separate loops and talk over real sockets even inside a single
test process.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import TYPE_CHECKING, Any, Coroutine

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.check.loopcheck import LoopSanitizer


class EventLoopThread:
    """One asyncio event loop running in a daemon thread.

    Usage::

        loop = EventLoopThread(name="live-cluster")
        loop.start()
        result = loop.call(some_coroutine())   # blocks the caller
        loop.stop()

    An optional :class:`~repro.check.loopcheck.LoopSanitizer` is
    installed on the loop at startup (asyncio debug mode, slow-callback
    reporting, blocking-call trap) and detached when the loop stops.
    """

    def __init__(
        self,
        name: str = "repro-net",
        sanitizer: "LoopSanitizer | None" = None,
    ) -> None:
        self.name = name
        self.sanitizer = sanitizer
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the loop thread is alive and serving."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "EventLoopThread":
        """Start the loop thread; idempotent."""
        if self.running:
            return self
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._started.clear()
        self._thread.start()
        self._started.wait(timeout=5.0)
        if self._loop is None:
            raise ConfigurationError(
                f"event loop thread {self.name!r} failed to start"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        if self.sanitizer is not None:
            self.sanitizer.install(loop)
        self._loop = loop
        self._started.set()
        try:
            loop.run_forever()
        finally:
            # Give cancelled tasks one chance to unwind, then close.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            if self.sanitizer is not None:
                self.sanitizer.uninstall(loop)
            loop.close()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the loop and join the thread; idempotent."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=timeout)
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, coro: Coroutine[Any, Any, Any]
    ) -> concurrent.futures.Future:
        """Schedule ``coro`` on the loop; returns a concurrent Future."""
        if self._loop is None:
            coro.close()
            raise ConfigurationError(
                f"event loop thread {self.name!r} is not running"
            )
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def call(
        self, coro: Coroutine[Any, Any, Any], timeout: float | None = None
    ) -> Any:
        """Run ``coro`` on the loop and block until its result."""
        return self.submit(coro).result(timeout=timeout)

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "EventLoopThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
