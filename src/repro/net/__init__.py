"""Live asyncio TCP tier for the ElMem reproduction.

Everything else in this repository models the Memcached tier in-process;
this package runs it over real sockets:

- :mod:`repro.net.server` -- an asyncio TCP server fronting one
  :class:`~repro.memcached.node.MemcachedNode` with the incremental
  text-protocol parser (chunk-safe reads, pipelined requests,
  per-connection write batching, graceful drain on shutdown), plus a
  harness that boots a whole localhost cluster;
- :mod:`repro.net.client` -- an asyncio client with connection pooling,
  request pipelining, and timeout/retry behaviour built on
  :class:`~repro.core.retry.RetryPolicy`;
- :mod:`repro.net.cluster` -- :class:`~repro.net.cluster.LiveCluster`,
  a synchronous facade with the same interface as
  :class:`~repro.memcached.cluster.MemcachedCluster`, so the existing
  :class:`~repro.core.master.Master` executes a real three-phase
  migration over TCP;
- :mod:`repro.net.livemigrate` -- a scripted live scale-in used by the
  CLI (``repro live-migrate``) and CI, which optionally verifies the
  socket path against the in-process path byte for byte;
- :mod:`repro.net.procs` -- :class:`~repro.net.procs.ProcessClusterHarness`,
  a process supervisor that runs one :class:`~repro.net.server.NodeServer`
  per OS process (spawn-safe entrypoint, pipe readiness handshake,
  SIGTERM drain, crash detection + restart hooks), so the cluster is
  shared-nothing and actually scales across cores.

Unlike ``repro.sim``, nothing here is simulated: durations are wall
clock, transfers move real bytes, and failures are real socket errors
(surfaced as :class:`~repro.errors.TransportError` once retries are
exhausted).
"""

from __future__ import annotations

from repro.net.client import NodeClient
from repro.net.cluster import LiveCluster, RemoteNode
from repro.net.livemigrate import LiveMigrationResult, run_live_migration
from repro.net.procs import CrashEvent, ProcessClusterHarness
from repro.net.runtime import EventLoopThread
from repro.net.server import LiveClusterHarness, NodeServer

__all__ = [
    "CrashEvent",
    "EventLoopThread",
    "LiveCluster",
    "LiveClusterHarness",
    "LiveMigrationResult",
    "NodeClient",
    "NodeServer",
    "ProcessClusterHarness",
    "RemoteNode",
    "run_live_migration",
]
