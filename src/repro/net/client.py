"""Asyncio Memcached client: pooled connections, pipelined requests.

One :class:`NodeClient` talks to one live node.  Requests are encoded as
:class:`_Request` objects pairing the wire bytes with an async response
reader; a batch of requests is written in a single ``write`` (request
pipelining) and the responses are read back in order.  Failures --
connection refused/reset, a stalled server exceeding ``timeout_s``, a
connection closed mid-response -- are retried with the bounded
exponential backoff of :class:`~repro.core.retry.RetryPolicy` on a fresh
connection, and surface as :class:`~repro.errors.TransportError` once
the budget is exhausted.  Protocol error lines
(``ERROR``/``CLIENT_ERROR``/``SERVER_ERROR``) are deterministic, so they
raise :class:`~repro.errors.WireProtocolError` immediately instead.

All ElMem migration commands are supported: ``ts_dump`` (timestamp
metadata + sizes), ``mig_export`` (full KV pairs without touching MRU
state), and ``batch_import`` (install with hotness metadata).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Iterable

from repro.core.retry import RetryPolicy
from repro.errors import TransportError, WireProtocolError
from repro.memcached.node import MigratedItem
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.livetrace import TraceContext, current_context
from repro.obs.metrics import LATENCY_SECONDS_BUCKETS

CRLF = b"\r\n"

GET_BATCH_KEYS = 64
"""Keys per multi-key ``get`` command inside a pipelined ``get_many``."""

EXPORT_BATCH_KEYS = 512
"""Keys per ``mig_export`` command inside a pipelined export."""

IMPORT_BATCH_RECORDS = 1024
"""Records per ``batch_import`` command inside a pipelined import."""

_ERROR_PREFIXES = (b"ERROR", b"CLIENT_ERROR", b"SERVER_ERROR")

DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_s=0.05, max_backoff_s=1.0
)
"""Default transport retry: 3 attempts, 50 ms then 100 ms backoff."""


def _raise_on_error(line: bytes) -> bytes:
    """Pass ``line`` through unless it is a protocol error line."""
    for prefix in _ERROR_PREFIXES:
        if line.startswith(prefix):
            raise WireProtocolError(line.decode("utf-8", "replace"))
    return line


class _Conn:
    """One open connection plus its framing helpers."""

    __slots__ = ("reader", "writer")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    @property
    def closing(self) -> bool:
        return self.writer.is_closing()

    async def read_line(self) -> bytes:
        """One CRLF-terminated response line, terminator stripped."""
        line = await self.reader.readuntil(CRLF)
        return line[:-2]

    async def read_payload(self, size: int) -> bytes:
        """A sized payload plus its trailing CRLF."""
        data = await self.reader.readexactly(size + 2)
        if data[-2:] != CRLF:
            raise WireProtocolError("missing CRLF after payload")
        return data[:-2]

    def abort(self) -> None:
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


# ---------------------------------------------------------------------------
# Response readers (one per response shape)
# ---------------------------------------------------------------------------


async def _read_simple(conn: _Conn) -> bytes:
    """A single response line; protocol errors raise."""
    return _raise_on_error(await conn.read_line())


async def _read_values(conn: _Conn) -> dict[str, tuple[int, bytes]]:
    """``VALUE`` blocks until ``END`` -> ``{key: (flags, payload)}``."""
    values: dict[str, tuple[int, bytes]] = {}
    while True:
        line = _raise_on_error(await conn.read_line())
        if line == b"END":
            return values
        parts = line.split()
        if len(parts) < 4 or parts[0] != b"VALUE":
            raise WireProtocolError(
                f"unexpected line in value block: {line!r}"
            )
        key = parts[1].decode("utf-8")
        flags, size = int(parts[2]), int(parts[3])
        values[key] = (flags, await conn.read_payload(size))


async def _read_ts(conn: _Conn) -> list[tuple[str, float, int]]:
    """``TS`` lines until ``END`` -> ``[(key, last_access, size)]``."""
    rows: list[tuple[str, float, int]] = []
    while True:
        line = _raise_on_error(await conn.read_line())
        if line == b"END":
            return rows
        parts = line.split()
        if len(parts) != 4 or parts[0] != b"TS":
            raise WireProtocolError(f"unexpected ts_dump line: {line!r}")
        rows.append(
            (parts[1].decode("utf-8"), float(parts[2]), int(parts[3]))
        )


async def _read_items(conn: _Conn) -> list[MigratedItem]:
    """``ITEM`` blocks until ``END`` -> migrated KV records."""
    records: list[MigratedItem] = []
    while True:
        line = _raise_on_error(await conn.read_line())
        if line == b"END":
            return records
        parts = line.split()
        if len(parts) != 5 or parts[0] != b"ITEM":
            raise WireProtocolError(f"unexpected export line: {line!r}")
        key = parts[1].decode("utf-8")
        flags, last_access, size = (
            int(parts[2]),
            float(parts[3]),
            int(parts[4]),
        )
        payload = await conn.read_payload(size)
        records.append(
            MigratedItem(
                key=key,
                value=(flags, payload),
                value_size=size,
                last_access=last_access,
            )
        )


async def _read_stats(conn: _Conn) -> dict[str, str]:
    """``STAT`` lines until ``END`` -> ``{name: value}``."""
    stats: dict[str, str] = {}
    while True:
        line = _raise_on_error(await conn.read_line())
        if line == b"END":
            return stats
        parts = line.split(None, 2)
        if len(parts) != 3 or parts[0] != b"STAT":
            raise WireProtocolError(f"unexpected stats line: {line!r}")
        stats[parts[1].decode("utf-8")] = parts[2].decode("utf-8")


async def _read_sniffed(conn: _Conn) -> bytes:
    """Raw response for :meth:`NodeClient.execute`: single line or an
    END-terminated block, returned verbatim (errors included)."""
    first = await conn.read_line()
    chunks = [first + CRLF]
    starter = first.split(b" ", 1)[0]
    if starter not in (b"VALUE", b"ITEM", b"TS", b"STAT"):
        return chunks[0]
    line = first
    while line != b"END":
        if line.split(b" ", 1)[0] in (b"VALUE", b"ITEM"):
            size = int(line.split()[-1])
            chunks.append(await conn.read_payload(size) + CRLF)
        line = await conn.read_line()
        chunks.append(line + CRLF)
    return b"".join(chunks)


@dataclass(frozen=True)
class _Request:
    """Wire bytes plus the reader that consumes their response."""

    wire: bytes
    reader: Callable[[_Conn], Awaitable[Any]]


def _command(text: str, payload: bytes | None = None) -> bytes:
    wire = text.encode("utf-8") + CRLF
    if payload is not None:
        wire += payload + CRLF
    return wire


class NodeClient:
    """Pooled, pipelining asyncio client for one live Memcached node.

    Parameters
    ----------
    name:
        Node name, used for telemetry labels and error messages.
    host / port:
        The node server's TCP endpoint.
    pool_size:
        Maximum concurrently open connections.
    timeout_s:
        Wall-clock budget per pipelined round trip (dial included).
    retry:
        Transport retry schedule; backoffs are real ``asyncio.sleep``
        waits scaled by ``backoff_scale`` (tests shrink it).
    retry_seed:
        Seed for jittered retry policies
        (``RetryPolicy(jitter="decorrelated")``): give every client its
        own seed and simultaneous failures back off on decorrelated
        schedules instead of stampeding the backend in lockstep.
        Ignored by non-jittered policies.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        pool_size: int = 2,
        timeout_s: float = 5.0,
        retry: RetryPolicy | None = None,
        backoff_scale: float = 1.0,
        retry_seed: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.pool_size = max(1, pool_size)
        self.timeout_s = timeout_s
        self.retry = retry or DEFAULT_CLIENT_RETRY
        self.backoff_scale = backoff_scale
        self.retry_seed = retry_seed
        self._idle: deque[_Conn] = deque()
        self._sem = asyncio.Semaphore(self.pool_size)
        self._closed = False
        telemetry = telemetry or NULL_TELEMETRY
        metrics = telemetry.metrics
        self._m_requests = metrics.counter(
            "net_client_requests_total",
            "Pipelined round trips issued by live clients",
            node=name,
        )
        self._m_retries = metrics.counter(
            "net_client_retries_total",
            "Transport retries after timeouts or connection errors",
            node=name,
        )
        self._m_errors = metrics.counter(
            "net_client_transport_errors_total",
            "Requests abandoned after exhausting transport retries",
            node=name,
        )
        self._m_depth = metrics.histogram(
            "net_client_pipeline_depth",
            "Commands per pipelined round trip",
            node=name,
        )
        self._obs = bool(metrics.enabled)
        self._m_queue_wait = metrics.histogram(
            "net_client_queue_wait_seconds",
            "Time spent waiting for a pooled connection slot",
            buckets=LATENCY_SECONDS_BUCKETS,
            node=name,
        )
        self._m_round_trip = metrics.histogram(
            "net_client_roundtrip_seconds",
            "Wire round-trip time of successful pipelined batches",
            buckets=LATENCY_SECONDS_BUCKETS,
            node=name,
        )
        self._live = telemetry.live
        # Explicit trace context override for callers that bridge event
        # loops through threads (contextvars do not cross
        # run_coroutine_threadsafe); when set it wins over the ambient
        # CURRENT_CONTEXT.
        self.trace_context: TraceContext | None = None

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------

    async def _dial(self) -> _Conn:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        return _Conn(reader, writer)

    async def _acquire(self) -> _Conn:
        await self._sem.acquire()
        try:
            while self._idle:
                conn = self._idle.popleft()
                if not conn.closing:
                    return conn
                conn.abort()
            return await asyncio.wait_for(self._dial(), self.timeout_s)
        except BaseException:
            self._sem.release()
            raise

    def _release(self, conn: _Conn) -> None:
        if self._closed or conn.closing:
            conn.abort()
        else:
            self._idle.append(conn)
        self._sem.release()

    def _discard(self, conn: _Conn) -> None:
        conn.abort()
        self._sem.release()

    async def close(self) -> None:
        """Close every pooled connection; in-flight requests finish."""
        self._closed = True
        while self._idle:
            await self._idle.popleft().close()

    # ------------------------------------------------------------------
    # Pipelined request execution with timeout + retry
    # ------------------------------------------------------------------

    async def _round_trip(
        self, conn: _Conn, requests: list[_Request], prefix: bytes = b""
    ) -> list[Any]:
        conn.writer.write(
            prefix + b"".join(request.wire for request in requests)
        )
        await conn.writer.drain()
        return [await request.reader(conn) for request in requests]

    async def _request(self, requests: list[_Request]) -> list[Any]:
        """Ship a pipelined batch; retry transport failures on a fresh
        connection per the retry policy."""
        if not requests:
            return []
        self._m_requests.inc()
        self._m_depth.observe(len(requests))
        # Deliberate: trace_context IS the explicit bridge override REP106
        # asks for; the ambient read only serves same-loop callers.
        ctx = self.trace_context or current_context()  # repro: allow[REP106]
        span = None
        prefix = b""
        if ctx is not None:
            if self._live.enabled:
                span = self._live.start_span(
                    "client.rpc",
                    ctx,
                    node=self.name,
                    commands=len(requests),
                )
                ctx = span.context
            # The trace frame applies to the batch's first command; the
            # server consumes one context per dispatched command.
            prefix = ctx.wire_prefix()
        failures = 0
        try:
            while True:
                conn: _Conn | None = None
                try:
                    if self._obs:
                        wait_start = time.perf_counter()
                        conn = await self._acquire()
                        self._m_queue_wait.observe(
                            time.perf_counter() - wait_start
                        )
                        rt_start = time.perf_counter()
                        results = await asyncio.wait_for(
                            self._round_trip(conn, requests, prefix),
                            self.timeout_s,
                        )
                        self._m_round_trip.observe(
                            time.perf_counter() - rt_start
                        )
                    else:
                        conn = await self._acquire()
                        results = await asyncio.wait_for(
                            self._round_trip(conn, requests, prefix),
                            self.timeout_s,
                        )
                except WireProtocolError:
                    # Deterministic server-side rejection: the connection's
                    # remaining responses are unparseable, drop it, but do
                    # not retry the same doomed bytes.
                    if conn is not None:
                        self._discard(conn)
                    raise
                except (OSError, EOFError, asyncio.TimeoutError) as exc:
                    if conn is not None:
                        self._discard(conn)
                    failures += 1
                    if failures >= self.retry.max_attempts:
                        self._m_errors.inc()
                        if span is not None:
                            span.set_attribute("error", repr(exc))
                        raise TransportError(
                            f"node {self.name!r} at "
                            f"{self.host}:{self.port}: request failed after "
                            f"{failures} attempt(s): {exc!r}"
                        ) from exc
                    self._m_retries.inc()
                    await asyncio.sleep(
                        self.retry.backoff_s(failures, seed=self.retry_seed)
                        * self.backoff_scale
                    )
                except BaseException:
                    # Cancellation (e.g. a proxy fan-out losing the race)
                    # must not leak the pooled connection or its semaphore
                    # slot; the connection state is unknown, so drop it.
                    if conn is not None:
                        self._discard(conn)
                    raise
                else:
                    self._release(conn)
                    return results
        finally:
            if span is not None:
                span.set_attribute("retries", failures)
                span.end()

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    async def get(self, key: str) -> tuple[int, bytes] | None:
        """Routed ``get``; ``(flags, payload)`` or ``None`` on a miss."""
        values = (
            await self._request([_Request(_command(f"get {key}"), _read_values)])
        )[0]
        return values.get(key)

    async def get_many(
        self, keys: Iterable[str]
    ) -> list[tuple[int, bytes] | None]:
        """Pipelined multi-key ``get``: one value (or ``None``) per key."""
        keys = list(keys)
        requests = [
            _Request(
                _command("get " + " ".join(keys[i : i + GET_BATCH_KEYS])),
                _read_values,
            )
            for i in range(0, len(keys), GET_BATCH_KEYS)
        ]
        merged: dict[str, tuple[int, bytes]] = {}
        for values in await self._request(requests):
            merged.update(values)
        return [merged.get(key) for key in keys]

    async def set(
        self,
        key: str,
        payload: bytes,
        flags: int = 0,
        exptime: float = 0.0,
    ) -> bool:
        """``set``; True when stored."""
        request = _Request(
            _command(f"set {key} {flags} {exptime} {len(payload)}", payload),
            _read_simple,
        )
        return (await self._request([request]))[0] == b"STORED"

    async def set_many(
        self, entries: Iterable[tuple[str, int, bytes]]
    ) -> int:
        """Pipelined ``set`` of ``(key, flags, payload)``; count stored."""
        requests = [
            _Request(
                _command(
                    f"set {key} {flags} 0 {len(payload)}", payload
                ),
                _read_simple,
            )
            for key, flags, payload in entries
        ]
        responses = await self._request(requests)
        return sum(1 for response in responses if response == b"STORED")

    async def delete(self, key: str) -> bool:
        """``delete``; True when the key existed."""
        request = _Request(_command(f"delete {key}"), _read_simple)
        return (await self._request([request]))[0] == b"DELETED"

    async def delete_many(self, keys: Iterable[str]) -> int:
        """Pipelined ``delete``; returns how many keys existed."""
        requests = [
            _Request(_command(f"delete {key}"), _read_simple)
            for key in keys
        ]
        responses = await self._request(requests)
        return sum(1 for response in responses if response == b"DELETED")

    async def incr(self, key: str, delta: int = 1) -> int | None:
        """``incr``; the new value, or ``None`` when the key is absent."""
        request = _Request(_command(f"incr {key} {delta}"), _read_simple)
        response = (await self._request([request]))[0]
        return None if response == b"NOT_FOUND" else int(response)

    async def flush_all(self) -> None:
        """Drop every item on the node."""
        await self._request([_Request(_command("flush_all"), _read_simple)])

    async def version(self) -> str:
        """The server's ``version`` banner."""
        response = (
            await self._request([_Request(_command("version"), _read_simple)])
        )[0]
        return response.decode("utf-8")

    async def stats(self) -> dict[str, int]:
        """``stats`` counters, parsed to integers."""
        raw = (
            await self._request([_Request(_command("stats"), _read_stats)])
        )[0]
        return {name: int(value) for name, value in raw.items()}

    async def stats_slabs(self) -> dict[str, int]:
        """``stats slabs`` rows, parsed to integers."""
        raw = (
            await self._request(
                [_Request(_command("stats slabs"), _read_stats)]
            )
        )[0]
        return {name: int(value) for name, value in raw.items()}

    async def stats_obs(self) -> str:
        """``stats obs``: the server process's Prometheus text page.

        Empty string when the server runs with metrics disabled.
        """
        values = (
            await self._request(
                [_Request(_command("stats obs"), _read_values)]
            )
        )[0]
        entry = values.get("obs")
        return entry[1].decode("utf-8") if entry else ""

    async def execute(
        self, command: str, payload: bytes | None = None
    ) -> bytes:
        """One raw command; returns the verbatim response bytes."""
        request = _Request(_command(command, payload), _read_sniffed)
        return (await self._request([request]))[0]

    # ------------------------------------------------------------------
    # ElMem migration commands
    # ------------------------------------------------------------------

    async def ts_dump(self, class_id: int) -> list[tuple[str, float, int]]:
        """The timestamp dump: ``(key, last_access, value_size)`` rows in
        MRU order for one slab class."""
        request = _Request(_command(f"ts_dump {class_id}"), _read_ts)
        return (await self._request([request]))[0]

    async def mig_export(
        self, keys: Iterable[str]
    ) -> list[MigratedItem]:
        """Fetch full KV pairs for ``keys`` without touching MRU state.

        Evicted keys are silently skipped, mirroring
        :meth:`~repro.memcached.node.MemcachedNode.export_items`.
        """
        keys = list(keys)
        requests = []
        for start in range(0, len(keys), EXPORT_BATCH_KEYS):
            chunk = keys[start : start + EXPORT_BATCH_KEYS]
            wire = _command(f"mig_export {len(chunk)}") + b"".join(
                key.encode("utf-8") + CRLF for key in chunk
            )
            requests.append(_Request(wire, _read_items))
        exported: list[MigratedItem] = []
        for records in await self._request(requests):
            exported.extend(records)
        return exported

    async def batch_import(
        self, records: Iterable[MigratedItem], mode: str = "merge"
    ) -> int:
        """Install migrated pairs via ``batch_import``; count imported."""
        records = list(records)
        requests = []
        for start in range(0, len(records), IMPORT_BATCH_RECORDS):
            chunk = records[start : start + IMPORT_BATCH_RECORDS]
            frames = [_command(f"batch_import {mode} {len(chunk)}")]
            for record in chunk:
                flags, payload = _wire_payload(record)
                frames.append(
                    _command(
                        f"{record.key} {record.last_access} "
                        f"{len(payload)} {flags}",
                        payload,
                    )
                )
            requests.append(_Request(b"".join(frames), _read_simple))
        imported = 0
        for response in await self._request(requests):
            if not response.startswith(b"IMPORTED "):
                raise WireProtocolError(
                    f"unexpected batch_import reply: {response!r}"
                )
            imported += int(response.split()[1])
        return imported


def _wire_payload(record: MigratedItem) -> tuple[int, bytes]:
    """Flags + payload bytes of one migrated record."""
    value = record.value
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], (bytes, bytearray))
    ):
        flags = value[0] if isinstance(value[0], int) else 0
        return flags, bytes(value[1])
    if isinstance(value, (bytes, bytearray)):
        return 0, bytes(value)
    return 0, str(value).encode("utf-8")
