"""Shared-nothing multi-process live cluster: one OS process per node.

:class:`~repro.net.server.LiveClusterHarness` runs every
:class:`~repro.net.server.NodeServer` on a single asyncio loop in a
single thread, so one core serves the whole "cluster" and no measured
throughput number means anything.  :class:`ProcessClusterHarness` keeps
the exact same synchronous surface (``endpoints`` / ``start`` / ``stop``
/ ``stop_node`` / ``start_node`` / context manager) but boots each node
in its own OS process, which is what lets the live tier absorb traffic
on every core and what an elastic-scaling benchmark has to run against.

Design points:

- **Spawn-safe entrypoint.**  Children are created with the ``spawn``
  start method (no inherited locks, sockets, or event loops); the child
  entrypoint :func:`_node_process_main` is a module-level function so it
  pickles by reference on every platform.
- **Readiness handshake.**  Each child binds its listener (port 0 picks
  a free port), then reports ``("ready", port)`` over a dedicated pipe;
  :meth:`start` blocks until every node has reported or the startup
  deadline passes.  Callers that want a wire-level proof can still round
  trip the ``version`` command -- the tests do.
- **Graceful drain.**  :meth:`stop` sends ``SIGTERM``; the child stops
  accepting, drains open connections through
  :meth:`~repro.net.server.NodeServer.stop`, and exits 0.  Stragglers
  are escalated to ``SIGKILL`` after a grace period so the harness never
  leaks orphan processes.
- **Crash detection.**  A watcher thread polls child liveness; an exit
  that was not requested is recorded in :attr:`crash_events`, reported
  through the ``on_crash`` hook, and -- with ``restart_crashed=True`` --
  healed by respawning a cold node on the same port.

Because the cache lives inside the node process, a process restart is
*cold* (the data is gone), unlike
:meth:`~repro.net.server.LiveClusterHarness.start_node`'s warm listener
restart; that is the honest shared-nothing failure model.

Nodes share a wall-clock timeline anchored at :meth:`start` (the anchor
is passed to every child), so ``last_access`` timestamps written through
different node processes stay comparable during migration planning.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ConfigurationError

STARTUP_TIMEOUT_S = 30.0
"""Default wall-clock budget for every child to report readiness."""

KILL_GRACE_S = 5.0
"""Extra seconds past ``drain_grace_s`` before SIGTERM escalates."""


@dataclass(frozen=True)
class _NodeSpec:
    """Everything a child process needs to boot its node server."""

    name: str
    memory_bytes: int
    host: str
    port: int
    min_chunk: int
    growth_factor: float
    drain_grace_s: float
    clock_anchor: float


@dataclass(frozen=True)
class CrashEvent:
    """One unexpected child exit observed by the watcher."""

    node: str
    pid: int
    exitcode: int | None
    restarted: bool


def _node_process_main(
    spec: _NodeSpec,
    conn: multiprocessing.connection.Connection,
) -> None:
    """Child entrypoint: serve one node until SIGTERM, then drain.

    Runs in a freshly spawned interpreter; must stay importable at
    module level (spawn pickles the function by reference).  Errors
    during startup are reported back over the pipe so the parent can
    raise a useful message instead of timing out.
    """
    import asyncio

    try:
        asyncio.run(_serve_node(spec, conn))
    except KeyboardInterrupt:  # parent SIGINT broadcast to the group
        pass


async def _serve_node(
    spec: _NodeSpec,
    conn: multiprocessing.connection.Connection,
) -> None:
    import asyncio

    from repro.memcached.node import MemcachedNode
    from repro.net.server import NodeServer

    node = MemcachedNode(
        spec.name,
        spec.memory_bytes,
        min_chunk=spec.min_chunk,
        growth_factor=spec.growth_factor,
    )
    # time.time() is comparable across processes on one machine, which
    # is what keeps last_access timestamps from different node processes
    # on one planning timeline.
    clock: Callable[[], float] = lambda: time.time() - spec.clock_anchor
    server = NodeServer(
        node,
        clock,
        host=spec.host,
        port=spec.port,
        drain_grace_s=spec.drain_grace_s,
    )
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop_requested.set)
    try:
        await server.start()
    except OSError as exc:
        conn.send(("error", f"{spec.name}: bind failed: {exc!r}"))
        conn.close()
        return
    conn.send(("ready", server.port))
    try:
        await stop_requested.wait()
    finally:
        await server.stop()
        try:
            conn.send(("stopped", server.port))
        except (OSError, BrokenPipeError):
            pass  # parent already gone; nothing left to tell it
        conn.close()


class _NodeProcess:
    """Parent-side handle for one child node process."""

    __slots__ = ("spec", "process", "conn", "port", "stop_requested")

    def __init__(
        self,
        spec: _NodeSpec,
        process: Any,
        conn: multiprocessing.connection.Connection,
    ) -> None:
        self.spec = spec
        self.process = process
        self.conn = conn
        self.port: int | None = None
        # Set before any intentional shutdown so the watcher can tell a
        # requested exit from a crash.
        self.stop_requested = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def await_ready(self, deadline: float) -> int:
        """Block until the child reports readiness; returns its port."""
        remaining = deadline - time.monotonic()
        if not self.conn.poll(max(0.0, remaining)):
            raise ConfigurationError(
                f"node process {self.spec.name!r} (pid "
                f"{self.process.pid}) did not report ready in time"
            )
        message = self.conn.recv()
        if message[0] != "ready":
            raise ConfigurationError(
                f"node process {self.spec.name!r} failed to start: "
                f"{message[1]}"
            )
        self.port = int(message[1])
        return self.port

    def terminate(self, join_timeout_s: float) -> None:
        """SIGTERM -> graceful drain; escalate to SIGKILL stragglers."""
        self.stop_requested = True
        if not self.process.is_alive():
            self.process.join(timeout=1.0)
            return
        self.process.terminate()  # SIGTERM: the child drains and exits
        self.process.join(timeout=join_timeout_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=KILL_GRACE_S)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.close()


class ProcessClusterHarness:
    """A live cluster with one OS process per node server.

    Drop-in for :class:`~repro.net.server.LiveClusterHarness` wherever
    the synchronous surface is consumed: :attr:`endpoints` feeds
    :class:`~repro.net.cluster.LiveCluster` (and therefore the
    unmodified :class:`~repro.core.master.Master`), the proxy tier, and
    the load generator, none of which can tell that every byte now
    crosses a process boundary.

    Parameters
    ----------
    node_names:
        Every node to boot, including spares outside the ring.
    memory_per_node / min_chunk / growth_factor:
        Node geometry, exactly as the in-process harness provisions it.
    port_base:
        When nonzero, node ``i`` listens on ``port_base + i``; the
        default lets each child pick a free port, read back through the
        readiness handshake.
    startup_timeout_s:
        Wall-clock budget for the whole fleet to report ready (spawned
        interpreters import the package from scratch, so this is
        seconds, not milliseconds).
    restart_crashed:
        When True the watcher respawns a crashed node (cold, same port).
    on_crash:
        Callback ``(CrashEvent) -> None`` invoked from the watcher
        thread after every detected crash (and after the restart, when
        one happens).  Must be thread-safe.
    poll_interval_s:
        Watcher polling period for crash detection.
    """

    def __init__(
        self,
        node_names: Iterable[str],
        memory_per_node: int,
        host: str = "127.0.0.1",
        min_chunk: int = 96,
        growth_factor: float = 1.25,
        drain_grace_s: float = 2.0,
        port_base: int = 0,
        startup_timeout_s: float = STARTUP_TIMEOUT_S,
        restart_crashed: bool = False,
        on_crash: Callable[[CrashEvent], None] | None = None,
        poll_interval_s: float = 0.2,
    ) -> None:
        names = list(node_names)
        if not names:
            raise ConfigurationError("harness needs at least one node")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self.node_names = names
        self.memory_per_node = memory_per_node
        self.host = host
        self.min_chunk = min_chunk
        self.growth_factor = growth_factor
        self.drain_grace_s = drain_grace_s
        self.port_base = port_base
        self.startup_timeout_s = startup_timeout_s
        self.restart_crashed = restart_crashed
        self.on_crash = on_crash
        self.poll_interval_s = poll_interval_s
        self.crash_events: list[CrashEvent] = []
        # Final exit code of every reaped child (``stop`` fills this in;
        # 0 everywhere means every drain stayed graceful).
        self.exit_codes: dict[str, int | None] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: dict[str, _NodeProcess] = {}
        self._lock = threading.Lock()
        self._watcher: threading.Thread | None = None
        self._watch_stop = threading.Event()
        self._clock_anchor = 0.0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spec(self, name: str, port: int) -> _NodeSpec:
        return _NodeSpec(
            name=name,
            memory_bytes=self.memory_per_node,
            host=self.host,
            port=port,
            min_chunk=self.min_chunk,
            growth_factor=self.growth_factor,
            drain_grace_s=self.drain_grace_s,
            clock_anchor=self._clock_anchor,
        )

    def _spawn(self, spec: _NodeSpec) -> _NodeProcess:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_node_process_main,
            args=(spec, child_conn),
            name=f"repro-node-{spec.name}",
        )
        process.start()
        child_conn.close()  # the child holds its own copy
        return _NodeProcess(spec, process, parent_conn)

    def start(self) -> "ProcessClusterHarness":
        """Spawn every node process and wait for readiness; idempotent."""
        if self._started:
            return self
        self._clock_anchor = time.time()
        handles: dict[str, _NodeProcess] = {}
        try:
            for index, name in enumerate(self.node_names):
                port = self.port_base + index if self.port_base else 0
                handles[name] = self._spawn(self._spec(name, port))
            deadline = time.monotonic() + self.startup_timeout_s
            for handle in handles.values():
                handle.await_ready(deadline)
        except BaseException:
            for handle in handles.values():
                handle.terminate(self.drain_grace_s + KILL_GRACE_S)
                handle.close()
            raise
        self._procs = handles
        self._started = True
        self._watch_stop.clear()
        self._watcher = threading.Thread(
            target=self._watch, name="proc-cluster-watcher", daemon=True
        )
        self._watcher.start()
        return self

    def stop(self) -> None:
        """SIGTERM-drain every node, reap stragglers; idempotent."""
        if not self._started:
            return
        self._watch_stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
            self._watcher = None
        with self._lock:
            handles = list(self._procs.items())
            self._procs = {}
            self._started = False
        for _, handle in handles:
            handle.stop_requested = True
            if handle.alive:
                handle.process.terminate()
        join_budget = self.drain_grace_s + KILL_GRACE_S
        for name, handle in handles:
            handle.process.join(timeout=join_budget)
            if handle.alive:
                handle.process.kill()
                handle.process.join(timeout=KILL_GRACE_S)
            self.exit_codes[name] = handle.process.exitcode
            handle.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def endpoints(self) -> dict[str, tuple[str, int]]:
        """``{node_name: (host, port)}`` for every running node."""
        with self._lock:
            if not self._started:
                raise ConfigurationError("process harness is not started")
            return {
                name: (self.host, handle.port)
                for name, handle in self._procs.items()
                if handle.port is not None
            }

    @property
    def pids(self) -> dict[str, int]:
        """``{node_name: child_pid}`` of the current fleet."""
        with self._lock:
            return {
                name: handle.process.pid
                for name, handle in self._procs.items()
                if handle.process.pid is not None
            }

    def is_alive(self, name: str) -> bool:
        """True while ``name``'s process is running."""
        with self._lock:
            handle = self._procs.get(name)
            return handle is not None and handle.alive

    # ------------------------------------------------------------------
    # Per-node control
    # ------------------------------------------------------------------

    def _handle(self, name: str) -> _NodeProcess:
        handle = self._procs.get(name)
        if handle is None:
            raise ConfigurationError(
                f"node {name!r} is not part of this harness"
            )
        return handle

    def stop_node(self, name: str) -> None:
        """Gracefully stop one node's process (drain, then exit)."""
        if not self._started:
            raise ConfigurationError("process harness is not started")
        with self._lock:
            handle = self._handle(name)
            handle.stop_requested = True
        handle.terminate(self.drain_grace_s + KILL_GRACE_S)

    def kill_node(self, name: str) -> None:
        """SIGKILL one node's process -- crash injection for tests.

        The exit is *not* marked as requested, so the watcher reports it
        as a crash (and heals it when ``restart_crashed`` is on).
        """
        if not self._started:
            raise ConfigurationError("process harness is not started")
        with self._lock:
            handle = self._handle(name)
        handle.process.kill()

    def start_node(self, name: str) -> tuple[str, int]:
        """Respawn a stopped/crashed node on its previous port (cold)."""
        if not self._started:
            raise ConfigurationError("process harness is not started")
        with self._lock:
            old = self._handle(name)
            if old.alive:
                raise ConfigurationError(f"node {name!r} is still running")
            port = old.port or 0
            old.process.join(timeout=1.0)
            old.close()
            handle = self._spawn(self._spec(name, port))
            self._procs[name] = handle
        deadline = time.monotonic() + self.startup_timeout_s
        handle.await_ready(deadline)
        assert handle.port is not None
        return self.host, handle.port

    # ------------------------------------------------------------------
    # Crash watcher
    # ------------------------------------------------------------------

    def _watch(self) -> None:
        while not self._watch_stop.wait(self.poll_interval_s):
            crashed: list[tuple[str, _NodeProcess]] = []
            with self._lock:
                if not self._started:
                    return
                for name, handle in self._procs.items():
                    if handle.stop_requested or handle.alive:
                        continue
                    handle.stop_requested = True  # report each crash once
                    crashed.append((name, handle))
            for name, handle in crashed:
                handle.process.join(timeout=1.0)
                # Capture identity before any restart: start_node closes
                # this handle, after which pid/exitcode are unreadable.
                pid = handle.process.pid or -1
                exitcode = handle.process.exitcode
                restarted = False
                if self.restart_crashed:
                    try:
                        self.start_node(name)
                        restarted = True
                    except ConfigurationError:
                        restarted = False
                event = CrashEvent(
                    node=name,
                    pid=pid,
                    exitcode=exitcode,
                    restarted=restarted,
                )
                self.crash_events.append(event)
                if self.on_crash is not None:
                    self.on_crash(event)

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "ProcessClusterHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
