"""Scripted live scale-in: boot, seed, migrate over TCP, verify.

This is the end-to-end story the CLI (``repro live-migrate``) and the
CI live-smoke job run: boot a localhost cluster of asyncio node
servers, seed it with a deterministic keyset, and let the *unmodified*
:class:`~repro.core.master.Master` retire nodes through a
:class:`~repro.net.cluster.LiveCluster` -- every ``ts_dump``,
``mig_export``, and ``batch_import`` crossing a real socket.

With ``verify=True`` the same workload is replayed on an in-process
:class:`~repro.memcached.cluster.MemcachedCluster` twin and the final
per-node cache contents are compared byte for byte: identical seeding,
identical ketama rings, and a wire format that round-trips floats and
flags exactly mean the socket path must land the same items with the
same payloads and the same hotness timestamps as the in-process path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.master import Master, MigrationReport
from repro.errors import ConfigurationError
from repro.faults.sockets import SocketFaultPolicy
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MigratedItem
from repro.memcached.slab import PAGE_SIZE
from repro.net.cluster import LiveCluster
from repro.net.server import LiveClusterHarness
from repro.obs import Telemetry
from repro.obs.livetrace import TraceContext, write_live_jsonl

ContentSignature = list[tuple[str, int, bytes, float]]
"""Sorted ``(key, flags, payload, last_access)`` rows of one node."""


@dataclass
class LiveMigrationResult:
    """What a scripted live scale-in did, plus the equivalence verdict."""

    node_names: list[str]
    retired: list[str]
    membership_after: list[str]
    outcome: str
    items_seeded: int
    items_exported: int
    items_imported: int
    completed_pairs: int
    failed_flows: int
    wall_seconds: float
    # None when verification was skipped; otherwise whether every
    # retained node's contents matched the in-process twin exactly.
    verified: bool | None = None
    mismatched_nodes: list[str] = field(default_factory=list)
    # Wall time the cluster spent inside the three-phase execute -- the
    # window during which routing/membership is in flux.
    degradation_window_s: float | None = None
    trace_spans: int = 0

    @property
    def warm(self) -> bool:
        """True when every planned pair migrated cleanly."""
        return self.outcome == "warm"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (CLI / CI artifact)."""
        return {
            "node_names": self.node_names,
            "retired": self.retired,
            "membership_after": self.membership_after,
            "outcome": self.outcome,
            "items_seeded": self.items_seeded,
            "items_exported": self.items_exported,
            "items_imported": self.items_imported,
            "completed_pairs": self.completed_pairs,
            "failed_flows": self.failed_flows,
            "wall_seconds": round(self.wall_seconds, 3),
            "verified": self.verified,
            "mismatched_nodes": self.mismatched_nodes,
            "degradation_window_s": (
                round(self.degradation_window_s, 3)
                if self.degradation_window_s is not None
                else None
            ),
            "trace_spans": self.trace_spans,
        }


def seed_records(
    items: int, value_bytes: int, seed: int
) -> list[MigratedItem]:
    """A deterministic keyset with random payloads, flags, and hotness."""
    rng = random.Random(seed)
    records = []
    for index in range(items):
        payload = rng.randbytes(value_bytes)
        records.append(
            MigratedItem(
                key=f"key-{index:06d}",
                value=(index % 16, payload),
                value_size=value_bytes,
                last_access=round(rng.uniform(0.0, 600.0), 3),
            )
        )
    return records


def node_signature(node: Any) -> ContentSignature:
    """Sorted full contents of one node via its public dump/export API.

    Works on both :class:`~repro.memcached.node.MemcachedNode` and
    :class:`~repro.net.cluster.RemoteNode` (where each call crosses the
    wire), so live and in-process caches can be compared byte for byte.
    """
    keys = [
        key
        for rows in node.dump_metadata().values()
        for key, _ in rows
    ]
    signature: ContentSignature = []
    for record in node.export_items(keys):
        value = record.value
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[1], (bytes, bytearray))
        ):
            flags, payload = int(value[0]), bytes(value[1])
        else:
            flags, payload = 0, bytes(str(value), "utf-8")
        signature.append((record.key, flags, payload, record.last_access))
    signature.sort()
    return signature


def _seed_cluster(
    groups: dict[str, list[MigratedItem]], nodes: dict[str, Any]
) -> int:
    """Batch-import each node's records; returns total imported."""
    total = 0
    for name in sorted(groups):
        total += nodes[name].batch_import(groups[name], mode="merge")
    return total


def run_live_migration(
    nodes: int = 4,
    retire: int = 1,
    items: int = 2000,
    value_bytes: int = 64,
    seed: int = 7,
    memory_per_node: int = 8 * PAGE_SIZE,
    verify: bool = True,
    fault_schedule: Any | None = None,
    fault_base_delay_s: float = 0.05,
    timeout_s: float = 5.0,
    backoff_scale: float = 1.0,
    telemetry: Telemetry | None = None,
    trace_jsonl: str | None = None,
    sanitize: bool = False,
    process_cluster: bool = False,
) -> LiveMigrationResult:
    """Boot ``nodes`` asyncio servers, seed them, retire ``retire`` of
    them through a socket-backed three-phase migration.

    Parameters mirror the CLI flags.  ``fault_schedule`` (a
    :class:`~repro.faults.spec.FaultSchedule`) attaches a
    :class:`~repro.faults.sockets.SocketFaultPolicy` to every server;
    combine it with a small ``timeout_s``/``backoff_scale`` to exercise
    the degrade-to-cold path over real sockets.  ``verify`` replays the
    workload on an in-process twin and compares final contents.
    ``sanitize`` runs both event loops (server harness and client
    cluster) under :class:`~repro.check.loopcheck.LoopSanitizer`
    instances -- asyncio debug mode plus the blocking-call trap -- and
    raises :class:`~repro.errors.InvariantViolation` after the migration
    if either loop recorded a hazard.

    With a live-tracing ``telemetry`` the whole migration becomes one
    stitched trace -- a ``live_migration`` root with ``seed`` / ``plan``
    / ``execute`` phase spans, each phase's wire operations (``ts_dump``
    / ``mig_export`` / ``batch_import`` round trips and the servers'
    execute spans) joined through the ``trace`` wire frame.
    ``trace_jsonl`` exports this process's spans for ``repro obs``.

    ``process_cluster`` boots every node in its own OS process
    (:class:`~repro.net.procs.ProcessClusterHarness`) instead of on one
    shared asyncio loop -- the Master and the verification twin are
    untouched, which is exactly the point: the three-phase migration
    must land byte-identical contents whether the bytes crossed a
    thread boundary or a process boundary.  Socket fault injection and
    the loop sanitizer instrument in-process servers, so neither
    composes with ``process_cluster``.
    """
    if nodes < 2:
        raise ConfigurationError("a live migration needs at least 2 nodes")
    if not 0 < retire < nodes:
        raise ConfigurationError(
            f"retire must be in [1, {nodes - 1}], got {retire}"
        )
    names = [f"live-{index:02d}" for index in range(nodes)]
    records = seed_records(items, value_bytes, seed)

    fault_policy = None
    if fault_schedule is not None:
        fault_policy = SocketFaultPolicy(
            fault_schedule, base_delay_s=fault_base_delay_s
        )
    tracer: Any = getattr(telemetry, "live", None)
    tracing = bool(getattr(tracer, "enabled", False))
    harness: Any
    if process_cluster:
        if fault_policy is not None or sanitize:
            raise ConfigurationError(
                "process_cluster does not compose with socket fault "
                "injection or the loop sanitizer (both instrument "
                "in-process servers)"
            )
        from repro.net.procs import ProcessClusterHarness

        harness = ProcessClusterHarness(names, memory_per_node)
    else:
        harness = LiveClusterHarness(
            names,
            memory_per_node,
            fault_policy=fault_policy,
            telemetry=telemetry,
            metrics=telemetry.metrics if telemetry is not None else None,
            sanitize=sanitize,
        )
    started = time.monotonic()
    root = (
        tracer.start_trace("live_migration", nodes=nodes, retire=retire)
        if tracing
        else None
    )

    def _phase(name: str) -> Any:
        if root is None:
            return None
        return tracer.start_span(name, root.context)

    with harness:
        live = LiveCluster(
            harness.endpoints,
            timeout_s=timeout_s,
            backoff_scale=backoff_scale,
            telemetry=telemetry,
            sanitize=sanitize,
        )

        def _join_clients(ctx: TraceContext | None) -> None:
            # Master runs on this thread while client I/O lives on the
            # cluster's loop thread; contextvars do not cross that
            # boundary, so phases join the trace via the clients'
            # explicit override attribute.
            for remote in live.nodes.values():
                remote.client.trace_context = ctx

        def _run_phase(name: str, work: Any) -> Any:
            span = _phase(name)
            if span is not None:
                _join_clients(span.context)
            try:
                return work()
            finally:
                if span is not None:
                    _join_clients(None)
                    span.end()

        try:
            owners = live.route_many([record.key for record in records])
            groups: dict[str, list[MigratedItem]] = {}
            for record, owner in zip(records, owners):
                groups.setdefault(owner, []).append(record)
            seeded = _run_phase(
                "seed", lambda: _seed_cluster(groups, live.nodes)
            )

            master = Master(live, telemetry=telemetry)
            retiring = master.choose_retiring(retire)
            plan = _run_phase(
                "plan", lambda: master.plan_scale_in(retiring)
            )
            execute_started = time.monotonic()
            report = _run_phase("execute", lambda: master.execute(plan))
            degradation_window_s = time.monotonic() - execute_started

            result = LiveMigrationResult(
                node_names=names,
                retired=list(plan.retiring),
                membership_after=report.membership_after,
                outcome=report.outcome,
                items_seeded=seeded,
                items_exported=report.items_exported,
                items_imported=report.items_imported,
                completed_pairs=report.completed_pairs,
                failed_flows=len(report.failed_flows),
                wall_seconds=time.monotonic() - started,
                degradation_window_s=degradation_window_s,
            )
            if verify:
                _verify_against_twin(
                    result, live, groups, retiring, memory_per_node
                )
        finally:
            live.close()
    harness_sanitizer = getattr(harness, "sanitizer", None)
    if harness_sanitizer is not None:
        harness_sanitizer.check("live-harness loop")
    if live.sanitizer is not None:
        live.sanitizer.check("live-cluster loop")
    if root is not None:
        root.set_attribute("outcome", result.outcome)
        root.set_attribute(
            "window_s", round(result.degradation_window_s or 0.0, 6)
        )
        root.end()
    if tracing:
        result.trace_spans = len(tracer.spans)
        if trace_jsonl is not None:
            write_live_jsonl(
                trace_jsonl,
                tracer,
                metrics=telemetry.metrics if telemetry is not None else None,
            )
    result.wall_seconds = time.monotonic() - started
    return result


def _verify_against_twin(
    result: LiveMigrationResult,
    live: LiveCluster,
    groups: dict[str, list[MigratedItem]],
    retiring: list[str],
    memory_per_node: int,
) -> None:
    """Replay the migration in-process and compare final contents."""
    twin = MemcachedCluster(result.node_names, memory_per_node)
    _seed_cluster(groups, twin.nodes)
    twin_master = Master(twin)
    twin_report: MigrationReport = twin_master.execute(
        twin_master.plan_scale_in(list(retiring))
    )
    mismatched: list[str] = []
    for name in twin_report.membership_after:
        live_node = live.nodes.get(name)
        twin_node = twin.nodes.get(name)
        if live_node is None or twin_node is None:
            mismatched.append(name)
            continue
        live_node.refresh()
        if node_signature(live_node) != node_signature(twin_node):
            mismatched.append(name)
    if sorted(result.membership_after) != sorted(
        twin_report.membership_after
    ):
        mismatched.append("<membership>")
    result.mismatched_nodes = mismatched
    result.verified = not mismatched
