"""Scripted live scale-in: boot, seed, migrate over TCP, verify.

This is the end-to-end story the CLI (``repro live-migrate``) and the
CI live-smoke job run: boot a localhost cluster of asyncio node
servers, seed it with a deterministic keyset, and let the *unmodified*
:class:`~repro.core.master.Master` retire nodes through a
:class:`~repro.net.cluster.LiveCluster` -- every ``ts_dump``,
``mig_export``, and ``batch_import`` crossing a real socket.

With ``verify=True`` the same workload is replayed on an in-process
:class:`~repro.memcached.cluster.MemcachedCluster` twin and the final
per-node cache contents are compared byte for byte: identical seeding,
identical ketama rings, and a wire format that round-trips floats and
flags exactly mean the socket path must land the same items with the
same payloads and the same hotness timestamps as the in-process path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.master import Master, MigrationReport
from repro.errors import ConfigurationError
from repro.faults.sockets import SocketFaultPolicy
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MigratedItem
from repro.memcached.slab import PAGE_SIZE
from repro.net.cluster import LiveCluster
from repro.net.server import LiveClusterHarness
from repro.obs import Telemetry

ContentSignature = list[tuple[str, int, bytes, float]]
"""Sorted ``(key, flags, payload, last_access)`` rows of one node."""


@dataclass
class LiveMigrationResult:
    """What a scripted live scale-in did, plus the equivalence verdict."""

    node_names: list[str]
    retired: list[str]
    membership_after: list[str]
    outcome: str
    items_seeded: int
    items_exported: int
    items_imported: int
    completed_pairs: int
    failed_flows: int
    wall_seconds: float
    # None when verification was skipped; otherwise whether every
    # retained node's contents matched the in-process twin exactly.
    verified: bool | None = None
    mismatched_nodes: list[str] = field(default_factory=list)

    @property
    def warm(self) -> bool:
        """True when every planned pair migrated cleanly."""
        return self.outcome == "warm"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (CLI / CI artifact)."""
        return {
            "node_names": self.node_names,
            "retired": self.retired,
            "membership_after": self.membership_after,
            "outcome": self.outcome,
            "items_seeded": self.items_seeded,
            "items_exported": self.items_exported,
            "items_imported": self.items_imported,
            "completed_pairs": self.completed_pairs,
            "failed_flows": self.failed_flows,
            "wall_seconds": round(self.wall_seconds, 3),
            "verified": self.verified,
            "mismatched_nodes": self.mismatched_nodes,
        }


def seed_records(
    items: int, value_bytes: int, seed: int
) -> list[MigratedItem]:
    """A deterministic keyset with random payloads, flags, and hotness."""
    rng = random.Random(seed)
    records = []
    for index in range(items):
        payload = rng.randbytes(value_bytes)
        records.append(
            MigratedItem(
                key=f"key-{index:06d}",
                value=(index % 16, payload),
                value_size=value_bytes,
                last_access=round(rng.uniform(0.0, 600.0), 3),
            )
        )
    return records


def node_signature(node: Any) -> ContentSignature:
    """Sorted full contents of one node via its public dump/export API.

    Works on both :class:`~repro.memcached.node.MemcachedNode` and
    :class:`~repro.net.cluster.RemoteNode` (where each call crosses the
    wire), so live and in-process caches can be compared byte for byte.
    """
    keys = [
        key
        for rows in node.dump_metadata().values()
        for key, _ in rows
    ]
    signature: ContentSignature = []
    for record in node.export_items(keys):
        value = record.value
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[1], (bytes, bytearray))
        ):
            flags, payload = int(value[0]), bytes(value[1])
        else:
            flags, payload = 0, bytes(str(value), "utf-8")
        signature.append((record.key, flags, payload, record.last_access))
    signature.sort()
    return signature


def _seed_cluster(
    groups: dict[str, list[MigratedItem]], nodes: dict[str, Any]
) -> int:
    """Batch-import each node's records; returns total imported."""
    total = 0
    for name in sorted(groups):
        total += nodes[name].batch_import(groups[name], mode="merge")
    return total


def run_live_migration(
    nodes: int = 4,
    retire: int = 1,
    items: int = 2000,
    value_bytes: int = 64,
    seed: int = 7,
    memory_per_node: int = 8 * PAGE_SIZE,
    verify: bool = True,
    fault_schedule=None,
    fault_base_delay_s: float = 0.05,
    timeout_s: float = 5.0,
    backoff_scale: float = 1.0,
    telemetry: Telemetry | None = None,
) -> LiveMigrationResult:
    """Boot ``nodes`` asyncio servers, seed them, retire ``retire`` of
    them through a socket-backed three-phase migration.

    Parameters mirror the CLI flags.  ``fault_schedule`` (a
    :class:`~repro.faults.spec.FaultSchedule`) attaches a
    :class:`~repro.faults.sockets.SocketFaultPolicy` to every server;
    combine it with a small ``timeout_s``/``backoff_scale`` to exercise
    the degrade-to-cold path over real sockets.  ``verify`` replays the
    workload on an in-process twin and compares final contents.
    """
    if nodes < 2:
        raise ConfigurationError("a live migration needs at least 2 nodes")
    if not 0 < retire < nodes:
        raise ConfigurationError(
            f"retire must be in [1, {nodes - 1}], got {retire}"
        )
    names = [f"live-{index:02d}" for index in range(nodes)]
    records = seed_records(items, value_bytes, seed)

    fault_policy = None
    if fault_schedule is not None:
        fault_policy = SocketFaultPolicy(
            fault_schedule, base_delay_s=fault_base_delay_s
        )
    harness = LiveClusterHarness(
        names, memory_per_node, fault_policy=fault_policy
    )
    started = time.monotonic()
    with harness:
        live = LiveCluster(
            harness.endpoints,
            timeout_s=timeout_s,
            backoff_scale=backoff_scale,
            telemetry=telemetry,
        )
        try:
            owners = live.route_many([record.key for record in records])
            groups: dict[str, list[MigratedItem]] = {}
            for record, owner in zip(records, owners):
                groups.setdefault(owner, []).append(record)
            seeded = _seed_cluster(groups, live.nodes)

            master = Master(live, telemetry=telemetry)
            retiring = master.choose_retiring(retire)
            plan = master.plan_scale_in(retiring)
            report = master.execute(plan)

            result = LiveMigrationResult(
                node_names=names,
                retired=list(plan.retiring),
                membership_after=report.membership_after,
                outcome=report.outcome,
                items_seeded=seeded,
                items_exported=report.items_exported,
                items_imported=report.items_imported,
                completed_pairs=report.completed_pairs,
                failed_flows=len(report.failed_flows),
                wall_seconds=time.monotonic() - started,
            )
            if verify:
                _verify_against_twin(
                    result, live, groups, retiring, memory_per_node
                )
        finally:
            live.close()
    result.wall_seconds = time.monotonic() - started
    return result


def _verify_against_twin(
    result: LiveMigrationResult,
    live: LiveCluster,
    groups: dict[str, list[MigratedItem]],
    retiring: list[str],
    memory_per_node: int,
) -> None:
    """Replay the migration in-process and compare final contents."""
    twin = MemcachedCluster(result.node_names, memory_per_node)
    _seed_cluster(groups, twin.nodes)
    twin_master = Master(twin)
    twin_report: MigrationReport = twin_master.execute(
        twin_master.plan_scale_in(list(retiring))
    )
    mismatched: list[str] = []
    for name in twin_report.membership_after:
        live_node = live.nodes.get(name)
        twin_node = twin.nodes.get(name)
        if live_node is None or twin_node is None:
            mismatched.append(name)
            continue
        live_node.refresh()
        if node_signature(live_node) != node_signature(twin_node):
            mismatched.append(name)
    if sorted(result.membership_after) != sorted(
        twin_report.membership_after
    ):
        mismatched.append("<membership>")
    result.mismatched_nodes = mismatched
    result.verified = not mismatched
