"""Asyncio TCP server fronting a live Memcached node, plus a harness.

:class:`NodeServer` listens on localhost and speaks the text protocol of
:class:`~repro.memcached.protocol.TextProtocolServer`.  The parser is
incremental, so the server simply feeds it whatever chunks the socket
delivers -- fragmented commands, values split across reads, and whole
pipelined bursts all work -- and writes each chunk's responses in a
single batched ``write``.  Shutdown drains gracefully: the listener
closes first, open connections get their buffered responses flushed,
and only stragglers past the grace period are aborted.

Fault injection happens per received chunk: when a
:class:`~repro.faults.sockets.SocketFaultPolicy` is attached, the server
asks it for a disposition before parsing and either aborts the
connection (crash / failed flow) or sleeps (stall / throttle), which is
how the client's timeout+retry path and the Master's degrade-to-cold
path are exercised over real sockets.

:class:`LiveClusterHarness` boots several node servers in one background
event loop with a shared wall-clock timeline, which is what the CLI, the
examples, and the live tests use to stand up a localhost cluster.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Iterable

from repro.check.loopcheck import create_sanitizer
from repro.errors import ConfigurationError
from repro.faults.sockets import SocketFaultPolicy
from repro.memcached.node import MemcachedNode
from repro.memcached.protocol import TextProtocolServer
from repro.net.runtime import EventLoopThread
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.metrics import LATENCY_SECONDS_BUCKETS

RECV_CHUNK = 65536
"""Bytes per socket read."""


class NodeServer:
    """One asyncio TCP listener wrapping one :class:`MemcachedNode`.

    Parameters
    ----------
    node:
        The node executing the commands.
    clock:
        Zero-argument timeline shared by every node of a cluster, so
        timestamps written through different servers stay comparable.
    host / port:
        Bind address; port 0 (the default) picks a free port, read back
        from :attr:`port` after :meth:`start`.
    fault_policy:
        Optional socket-layer fault schedule consulted once per chunk.
    drain_grace_s:
        How long :meth:`stop` waits for open connections to finish
        before aborting them.
    """

    def __init__(
        self,
        node: MemcachedNode,
        clock: Callable[[], float],
        host: str = "127.0.0.1",
        port: int = 0,
        fault_policy: SocketFaultPolicy | None = None,
        drain_grace_s: float = 2.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node = node
        self.clock = clock
        self.host = host
        self.port = port
        self.fault_policy = fault_policy
        self.drain_grace_s = drain_grace_s
        self._server: asyncio.Server | None = None
        self._closing = False
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        telemetry = telemetry or NULL_TELEMETRY
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._obs = bool(metrics.enabled)
        self._m_conns = metrics.counter(
            "net_server_connections_total",
            "Connections accepted by live node servers",
            node=node.name,
        )
        self._m_drops = metrics.counter(
            "net_server_fault_drops_total",
            "Connections aborted by the socket fault policy",
            node=node.name,
        )
        self._m_bytes_in = metrics.counter(
            "net_server_bytes_received_total",
            "Request bytes received by live node servers",
            node=node.name,
        )
        self._m_bytes_out = metrics.counter(
            "net_server_bytes_sent_total",
            "Response bytes written by live node servers",
            node=node.name,
        )
        self._m_parse = metrics.histogram(
            "net_server_parse_seconds",
            "Protocol parse time per received chunk (feed minus execute)",
            buckets=LATENCY_SECONDS_BUCKETS,
            node=node.name,
        )
        self._m_write = metrics.histogram(
            "net_server_write_seconds",
            "Response write+drain time per chunk",
            buckets=LATENCY_SECONDS_BUCKETS,
            node=node.name,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "NodeServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            return self
        self._closing = False
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def endpoint(self) -> tuple[str, int]:
        """``(host, port)`` the server is reachable at."""
        if self._server is None:
            raise ConfigurationError(
                f"server for node {self.node.name!r} is not started"
            )
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting, drain open connections, then force-close."""
        server = self._server
        if server is None:
            return
        self._closing = True
        server.close()
        await server.wait_closed()
        # Closing the writers flushes buffered responses and makes
        # blocked reads return EOF, so idle keep-alive connections
        # (pooled clients) unwind without waiting out the grace period.
        for writer in list(self._writers):
            writer.close()
        if self._tasks:
            done, pending = await asyncio.wait(
                self._tasks, timeout=self.drain_grace_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        self._m_conns.inc()
        protocol = TextProtocolServer(
            self.node, self.clock, telemetry=self.telemetry
        )
        try:
            await self._serve_connection(reader, writer, protocol)
        except (OSError, EOFError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-request; nothing left to answer
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        protocol: TextProtocolServer,
    ) -> None:
        while not self._closing:
            chunk = await reader.read(RECV_CHUNK)
            if not chunk:
                return
            self._m_bytes_in.inc(len(chunk))
            if self.fault_policy is not None:
                kind, delay = self.fault_policy.disposition(self.node.name)
                if kind == "drop":
                    self._m_drops.inc()
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    return
                if kind == "delay" and delay > 0:
                    await asyncio.sleep(delay)
                    if self._closing:
                        return
            if self._obs:
                execute_before = protocol.execute_seconds
                feed_start = time.perf_counter()
                responses = protocol.feed(chunk)
                feed_elapsed = time.perf_counter() - feed_start
                execute_delta = protocol.execute_seconds - execute_before
                self._m_parse.observe(max(0.0, feed_elapsed - execute_delta))
            else:
                responses = protocol.feed(chunk)
            if responses:
                if self._obs:
                    write_start = time.perf_counter()
                    writer.write(responses)
                    self._m_bytes_out.inc(len(responses))
                    await writer.drain()
                    self._m_write.observe(time.perf_counter() - write_start)
                else:
                    writer.write(responses)
                    self._m_bytes_out.inc(len(responses))
                    await writer.drain()


class LiveClusterHarness:
    """A whole localhost cluster: N nodes, N servers, one event loop.

    Nodes share a single wall-clock timeline anchored at :meth:`start`,
    so ``last_access`` timestamps written through different servers are
    comparable during migration planning -- the live analogue of the
    simulator's global clock.

    The harness is synchronous on the outside (it owns an
    :class:`~repro.net.runtime.EventLoopThread`); pair it with
    :class:`~repro.net.cluster.LiveCluster` connected to
    :attr:`endpoints` to drive the nodes over TCP.

    Parameters
    ----------
    node_names:
        Every node to boot, including spares that start outside the
        ring; membership is the client side's (LiveCluster's) concern.
    memory_per_node / min_chunk / growth_factor:
        Node geometry, exactly as :class:`~repro.memcached.cluster.
        MemcachedCluster` would provision it.
    fault_policy:
        Optional socket fault schedule shared by every server.
    port_base:
        When nonzero, node ``i`` listens on ``port_base + i`` (the
        ``repro serve`` mode); the default picks ephemeral ports.
    sanitize:
        Run the server loop under a
        :class:`~repro.check.loopcheck.LoopSanitizer` (asyncio debug
        mode, slow-callback findings, blocking-call trap); read the
        verdict from :attr:`sanitizer` after :meth:`stop`.
    """

    def __init__(
        self,
        node_names: Iterable[str],
        memory_per_node: int,
        host: str = "127.0.0.1",
        min_chunk: int = 96,
        growth_factor: float = 1.25,
        fault_policy: SocketFaultPolicy | None = None,
        drain_grace_s: float = 2.0,
        port_base: int = 0,
        telemetry: Telemetry | None = None,
        metrics: Any | None = None,
        sanitize: bool = False,
    ) -> None:
        names = list(node_names)
        if not names:
            raise ConfigurationError("harness needs at least one node")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self._anchor = time.monotonic()
        self.clock: Callable[[], float] = (
            lambda: time.monotonic() - self._anchor
        )
        self.nodes: dict[str, MemcachedNode] = {
            name: MemcachedNode(
                name,
                memory_per_node,
                min_chunk=min_chunk,
                growth_factor=growth_factor,
                metrics=metrics,
            )
            for name in names
        }
        self.servers: dict[str, NodeServer] = {
            name: NodeServer(
                node,
                self.clock,
                host=host,
                port=port_base + index if port_base else 0,
                fault_policy=fault_policy,
                drain_grace_s=drain_grace_s,
                telemetry=telemetry,
            )
            for index, (name, node) in enumerate(self.nodes.items())
        }
        self.sanitizer = create_sanitizer(sanitize)
        self.loop = EventLoopThread(
            name="live-harness", sanitizer=self.sanitizer
        )
        self._started = False

    @property
    def endpoints(self) -> dict[str, tuple[str, int]]:
        """``{node_name: (host, port)}`` for every started server."""
        return {
            name: server.endpoint for name, server in self.servers.items()
        }

    def start(self) -> "LiveClusterHarness":
        """Boot the loop thread and every node server; idempotent."""
        if self._started:
            return self
        self.loop.start()
        self._anchor = time.monotonic()
        for server in self.servers.values():
            self.loop.call(server.start(), timeout=10.0)
        self._started = True
        return self

    def stop(self) -> None:
        """Drain and stop every server, then the loop; idempotent."""
        if not self._started:
            return
        for server in self.servers.values():
            self.loop.call(server.stop(), timeout=30.0)
        self.loop.stop()
        self._started = False

    def stop_node(self, name: str) -> None:
        """Kill one node's listener; its cached data stays in memory.

        New connections get refused and pooled ones see EOF, which is
        how proxy/failover tests simulate a backend dying mid-traffic.
        Idempotent; :meth:`start_node` brings the listener back on the
        same port with the data intact (a warm restart).
        """
        if not self._started:
            raise ConfigurationError("harness is not started")
        self.loop.call(self.servers[name].stop(), timeout=30.0)

    def start_node(self, name: str) -> tuple[str, int]:
        """Restart a node's listener on its previous port."""
        if not self._started:
            raise ConfigurationError("harness is not started")
        server = self.servers[name]
        self.loop.call(server.start(), timeout=10.0)
        return server.endpoint

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "LiveClusterHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
