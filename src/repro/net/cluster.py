"""A synchronous cluster facade over live TCP nodes.

:class:`LiveCluster` mirrors the interface of
:class:`~repro.memcached.cluster.MemcachedCluster` -- membership
(``provision``/``activate``/``deactivate``/``destroy``/
``set_membership``), ketama routing with rebalancer remaps, and the
client operations (``get``/``set``/``delete`` plus their batched
variants) -- but every node is a :class:`RemoteNode` reached over a
socket instead of an in-process :class:`~repro.memcached.node.
MemcachedNode`.  Because the surface matches, the existing
:class:`~repro.core.master.Master` plans and executes a real three-phase
migration over TCP without knowing the difference.

:class:`RemoteNode` duck-types the slice of the node API the Master, the
Agent, and the scoring step consume.  Metadata reads (``ts_dump`` rows,
slab geometry) are served from a cached snapshot refreshed lazily and
invalidated by mutations, so a planning pass costs a handful of round
trips per node instead of one per key; data moves (``export_items`` /
``batch_import``) always hit the wire.

One :class:`~repro.net.runtime.EventLoopThread` per cluster runs every
client's socket I/O; the facade blocks on it, which is what lets the
synchronous Master drive asyncio sockets unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any, Coroutine

from repro.check.loopcheck import create_sanitizer
from repro.core.retry import RetryPolicy
from repro.errors import ConfigurationError, MembershipError, TransportError
from repro.hashing.ketama import DEFAULT_VNODES, ConsistentHashRing
from repro.memcached.node import MigratedItem, NodeStats
from repro.memcached.slab import PAGE_SIZE, size_class_table
from repro.net.client import NodeClient
from repro.net.runtime import EventLoopThread
from repro.obs import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class _RemoteItem:
    """The slice of :class:`~repro.memcached.items.Item` that planners
    read through :meth:`RemoteNode.peek`.

    ``value`` is never fetched for a peek -- migration pricing only needs
    sizes -- so it is always ``None`` here; use
    :meth:`RemoteNode.export_items` (or a routed ``get``) for payloads.
    """

    key: str
    last_access: float
    value_size: int
    value: None = None


class _RemoteSlabClass:
    """Wire-reported geometry of one slab class on a live node."""

    __slots__ = ("class_id", "chunk_size", "pages", "used_chunks", "mru_rows")

    def __init__(self, class_id: int, chunk_size: int) -> None:
        self.class_id = class_id
        self.chunk_size = chunk_size
        self.pages = 0
        self.used_chunks = 0
        # (key, last_access, value_size) rows in MRU order, from ts_dump.
        self.mru_rows: list[tuple[str, float, int]] = []

    @property
    def chunks_per_page(self) -> int:
        return PAGE_SIZE // self.chunk_size

    @property
    def total_chunks(self) -> int:
        return self.pages * self.chunks_per_page

    @property
    def free_chunks(self) -> int:
        return self.total_chunks - self.used_chunks


class _RemoteSlabs:
    """Slab allocator view reconstructed from ``stats slabs``."""

    __slots__ = ("classes", "total_pages")

    def __init__(
        self, chunk_sizes: list[int], total_pages: int
    ) -> None:
        self.classes = [
            _RemoteSlabClass(class_id, chunk_size)
            for class_id, chunk_size in enumerate(chunk_sizes)
        ]
        self.total_pages = total_pages

    @property
    def assigned_pages(self) -> int:
        return sum(slab_class.pages for slab_class in self.classes)

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.assigned_pages


class RemoteNode:
    """One live node, duck-typing the Master/Agent-facing node surface.

    Reads that drive planning (`dump_timestamps`, `items_in_mru_order`,
    `median_timestamp`, `page_fractions`, `peek`, the ``slabs``
    geometry) come from a metadata snapshot -- one ``stats``, one
    ``stats slabs``, and one ``ts_dump`` per populated slab class --
    refreshed lazily after any mutation through this object.  Mutations
    and bulk data (``export_items``, ``batch_import``, ``delete``,
    ``flush_all``) always go over the wire.

    The snapshot mirrors the trust model of the paper's Master, which
    also plans on a metadata dump that may drift from the live cache;
    drift is tolerated downstream (evicted keys are skipped at export).
    """

    def __init__(
        self,
        name: str,
        client: NodeClient,
        loop: EventLoopThread,
        min_chunk: int = 96,
        growth_factor: float = 1.25,
    ) -> None:
        self.name = name
        self.client = client
        self._loop = loop
        self._chunk_sizes = size_class_table(min_chunk, growth_factor)
        self._snapshot: _RemoteSlabs | None = None
        self._sizes: dict[str, int] = {}
        self._timestamps: dict[str, float] = {}
        self._memory_bytes: int | None = None
        self._curr_items = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _call(self, coro: Coroutine[Any, Any, Any]) -> Any:
        return self._loop.call(coro)

    def invalidate(self) -> None:
        """Drop the metadata snapshot; the next read refreshes it."""
        self._snapshot = None

    def refresh(self) -> _RemoteSlabs:
        """Fetch a fresh metadata snapshot from the live node."""
        stats = self._call(self.client.stats())
        self._memory_bytes = stats.get("limit_maxbytes", 0)
        self._curr_items = stats.get("curr_items", 0)
        slabs = _RemoteSlabs(
            self._chunk_sizes, self._memory_bytes // PAGE_SIZE
        )
        raw = self._call(self.client.stats_slabs())
        for name, value in raw.items():
            cid_str, _, field = name.partition(":")
            if not field:
                continue
            slab_class = slabs.classes[int(cid_str)]
            if field == "total_pages":
                slab_class.pages = value
            elif field == "used_chunks":
                slab_class.used_chunks = value
        self._sizes = {}
        self._timestamps = {}
        for slab_class in slabs.classes:
            if slab_class.pages == 0:
                continue
            rows = self._call(self.client.ts_dump(slab_class.class_id))
            slab_class.mru_rows = rows
            for key, last_access, size in rows:
                self._sizes[key] = size
                self._timestamps[key] = last_access
        self._snapshot = slabs
        return slabs

    @property
    def slabs(self) -> _RemoteSlabs:
        """Snapshot slab geometry (lazily refreshed)."""
        if self._snapshot is None:
            return self.refresh()
        return self._snapshot

    # ------------------------------------------------------------------
    # Metadata surface consumed by Agent / scoring / pricing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        slabs = self.slabs
        return sum(len(c.mru_rows) for c in slabs.classes)

    @property
    def curr_items(self) -> int:
        return len(self)

    @property
    def memory_bytes(self) -> int:
        if self._memory_bytes is None:
            self.refresh()
        assert self._memory_bytes is not None
        return self._memory_bytes

    def active_class_ids(self) -> list[int]:
        return [
            slab_class.class_id
            for slab_class in self.slabs.classes
            if slab_class.mru_rows
        ]

    def dump_timestamps(self, class_id: int) -> list[tuple[str, float]]:
        return [
            (key, last_access)
            for key, last_access, _ in self.slabs.classes[class_id].mru_rows
        ]

    def items_in_mru_order(self, class_id: int) -> list[_RemoteItem]:
        return [
            _RemoteItem(key=key, last_access=last_access, value_size=size)
            for key, last_access, size in self.slabs.classes[
                class_id
            ].mru_rows
        ]

    def dump_metadata(self) -> dict[int, list[tuple[str, float]]]:
        return {
            class_id: self.dump_timestamps(class_id)
            for class_id in self.active_class_ids()
        }

    def median_timestamp(self, class_id: int) -> float | None:
        rows = self.slabs.classes[class_id].mru_rows
        if not rows:
            return None
        return rows[len(rows) // 2][1]

    def page_fractions(self) -> dict[int, float]:
        slabs = self.slabs
        assigned = slabs.assigned_pages
        if assigned == 0:
            return {}
        return {
            slab_class.class_id: slab_class.pages / assigned
            for slab_class in slabs.classes
            if slab_class.pages > 0
        }

    def peek(self, key: str) -> _RemoteItem | None:
        """Snapshot metadata for ``key`` (no payload, no MRU effects)."""
        if self._snapshot is None:
            self.refresh()
        size = self._sizes.get(key)
        if size is None:
            return None
        return _RemoteItem(
            key=key,
            last_access=self._timestamps.get(key, 0.0),
            value_size=size,
        )

    def contains(self, key: str) -> bool:
        if self._snapshot is None:
            self.refresh()
        return key in self._sizes

    # ------------------------------------------------------------------
    # Wire operations
    # ------------------------------------------------------------------

    def get(self, key: str, now: float = 0.0) -> Any | None:
        """Routed ``get`` over the wire; ``now`` is accepted for
        interface parity but the server stamps its own clock."""
        return self._call(self.client.get(key))

    def get_many(
        self, keys: Iterable[str], now: float = 0.0
    ) -> list[Any | None]:
        return self._call(self.client.get_many(keys))

    def set(
        self,
        key: str,
        value: Any,
        value_size: int,
        now: float = 0.0,
        exptime: float = 0.0,
    ) -> bool:
        flags, payload = _as_payload(value)
        self.invalidate()
        return self._call(
            self.client.set(key, payload, flags=flags, exptime=exptime)
        )

    def set_many(
        self, entries: Iterable[tuple[str, Any, int]], now: float = 0.0
    ) -> int:
        wire_entries = []
        for key, value, _size in entries:
            flags, payload = _as_payload(value)
            wire_entries.append((key, flags, payload))
        self.invalidate()
        return self._call(self.client.set_many(wire_entries))

    def delete(self, key: str) -> bool:
        self.invalidate()
        return self._call(self.client.delete(key))

    def delete_many(self, keys: Iterable[str]) -> int:
        self.invalidate()
        return self._call(self.client.delete_many(keys))

    def flush_all(self) -> None:
        self.invalidate()
        self._call(self.client.flush_all())

    def export_items(self, keys: Iterable[str]) -> list[MigratedItem]:
        """Phase-3 export over the wire (``mig_export``)."""
        return self._call(self.client.mig_export(keys))

    def batch_import(
        self,
        migrated: Iterable[MigratedItem],
        mode: str = "merge",
        now: float = 0.0,
    ) -> int:
        """Phase-3 import over the wire (``batch_import``).

        ``now`` is accepted for interface parity; the live server stamps
        ``fresh``-mode imports with its own shared cluster clock.
        """
        self.invalidate()
        return self._call(self.client.batch_import(migrated, mode=mode))

    def wire_stats(self) -> dict[str, int]:
        """Raw ``stats`` counters from the live node."""
        return self._call(self.client.stats())

    def close(self) -> None:
        """Close this node's pooled connections."""
        self._call(self.client.close())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteNode({self.name!r}, "
            f"{self.client.host}:{self.client.port})"
        )


def _as_payload(value: Any) -> tuple[int, bytes]:
    """Coerce a cluster-level value to wire ``(flags, payload)``."""
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], (bytes, bytearray))
    ):
        flags = value[0] if isinstance(value[0], int) else 0
        return flags, bytes(value[1])
    if isinstance(value, (bytes, bytearray)):
        return 0, bytes(value)
    return 0, str(value).encode("utf-8")


class LiveCluster:
    """A pool of :class:`RemoteNode` with ketama routing.

    The membership, routing, and client-operation surface mirrors
    :class:`~repro.memcached.cluster.MemcachedCluster`; values returned
    by ``get`` are the wire's ``(flags, payload)`` tuples.

    Parameters
    ----------
    endpoints:
        ``{node_name: (host, port)}`` for every reachable live node,
        including spares that start outside the ring --
        :meth:`provision` can only attach nodes registered here, because
        a client cannot boot a remote VM.
    active:
        Names initially on the hash ring; defaults to every endpoint.
    vnodes / min_chunk / growth_factor:
        Ring and slab-geometry parameters; must match the servers'.
    timeout_s / retry / backoff_scale / pool_size:
        Per-node client transport settings
        (see :class:`~repro.net.client.NodeClient`).
    """

    def __init__(
        self,
        endpoints: dict[str, tuple[str, int]],
        active: Iterable[str] | None = None,
        vnodes: int = DEFAULT_VNODES,
        min_chunk: int = 96,
        growth_factor: float = 1.25,
        pool_size: int = 2,
        timeout_s: float = 5.0,
        retry: RetryPolicy | None = None,
        backoff_scale: float = 1.0,
        telemetry: Telemetry | None = None,
        sanitize: bool = False,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("LiveCluster needs at least one endpoint")
        self._endpoints = dict(endpoints)
        self.vnodes = vnodes
        self._min_chunk = min_chunk
        self._growth_factor = growth_factor
        self._pool_size = pool_size
        self._timeout_s = timeout_s
        self._retry = retry
        self._backoff_scale = backoff_scale
        self._telemetry = telemetry or NULL_TELEMETRY
        self.sanitizer = create_sanitizer(sanitize)
        self.loop = EventLoopThread(
            name="live-cluster", sanitizer=self.sanitizer
        ).start()
        self.nodes: dict[str, RemoteNode] = {}
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self._remap: dict[str, str] = {}
        names = list(active) if active is not None else sorted(endpoints)
        for name in self._endpoints:
            self.provision(name)
        for name in names:
            self.activate(name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def active_members(self) -> frozenset[str]:
        return self.ring.members

    @property
    def active_nodes(self) -> list[RemoteNode]:
        return [self.nodes[name] for name in sorted(self.ring.members)]

    def provision(self, name: str) -> RemoteNode:
        """Connect a registered endpoint as a cold node (off the ring)."""
        if name in self.nodes:
            raise MembershipError(f"node {name!r} already provisioned")
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise MembershipError(
                f"node {name!r} has no registered endpoint; a live "
                "cluster cannot boot servers, only attach to them"
            )
        host, port = endpoint
        client = NodeClient(
            name,
            host,
            port,
            pool_size=self._pool_size,
            timeout_s=self._timeout_s,
            retry=self._retry,
            backoff_scale=self._backoff_scale,
            telemetry=self._telemetry,
        )
        node = RemoteNode(
            name,
            client,
            self.loop,
            min_chunk=self._min_chunk,
            growth_factor=self._growth_factor,
        )
        self.nodes[name] = node
        return node

    def activate(self, name: str) -> None:
        if name not in self.nodes:
            raise MembershipError(f"node {name!r} not provisioned")
        self.ring.add_node(name)

    def deactivate(self, name: str) -> None:
        self.ring.remove_node(name)
        self._drop_stale_remaps()

    def destroy(self, name: str) -> None:
        """Flush the remote node and drop the connection (the live
        analogue of turning the VM off)."""
        node = self.nodes.pop(name, None)
        if node is None:
            raise MembershipError(f"node {name!r} not provisioned")
        if name in self.ring:
            self.ring.remove_node(name)
            self._drop_stale_remaps()
        try:
            node.flush_all()
        except TransportError:
            pass  # a crashed node is already as flushed as it gets
        node.close()

    def set_membership(self, names: Iterable[str]) -> None:
        names = list(names)
        missing = [name for name in names if name not in self.nodes]
        if missing:
            raise MembershipError(f"nodes not provisioned: {missing}")
        self.ring.set_members(names)
        self._drop_stale_remaps()

    # ------------------------------------------------------------------
    # Routing overrides (parity with MemcachedCluster)
    # ------------------------------------------------------------------

    def set_remap(self, key: str, node: str) -> None:
        if node not in self.ring:
            raise MembershipError(f"remap target {node!r} not active")
        if self.ring.node_for_key(key) == node:
            self._remap.pop(key, None)
        else:
            self._remap[key] = node

    def clear_remap(self, key: str) -> None:
        self._remap.pop(key, None)

    def clear_all_remaps(self) -> None:
        self._remap.clear()

    @property
    def remap_count(self) -> int:
        return len(self._remap)

    def _drop_stale_remaps(self) -> None:
        members = self.ring.members
        stale = [
            key
            for key, node in self._remap.items()
            if node not in members
        ]
        for key in stale:
            del self._remap[key]

    def ring_for(self, members: Iterable[str]) -> ConsistentHashRing:
        return ConsistentHashRing(members, vnodes=self.vnodes)

    # ------------------------------------------------------------------
    # Client operations (over the wire)
    # ------------------------------------------------------------------

    def route(self, key: str) -> str:
        if self._remap:
            override = self._remap.get(key)
            if override is not None:
                return override
        return self.ring.node_for_key(key)

    def route_many(self, keys: list[str]) -> list[str]:
        if not self._remap:
            return self.ring.lookup_many(keys)
        remap_get = self._remap.get
        lookup = self.ring.node_for_key
        owners: list[str] = []
        for key in keys:
            override = remap_get(key)
            owners.append(override if override is not None else lookup(key))
        return owners

    def get(self, key: str, now: float = 0.0) -> Any | None:
        return self.nodes[self.route(key)].get(key, now)

    def set(
        self, key: str, value: Any, value_size: int, now: float = 0.0
    ) -> bool:
        return self.nodes[self.route(key)].set(key, value, value_size, now)

    def delete(self, key: str) -> bool:
        return self.nodes[self.route(key)].delete(key)

    def get_many(
        self, keys: Iterable[str], now: float = 0.0
    ) -> list[Any | None]:
        keys = list(keys)
        owners = self.route_many(keys)
        groups: dict[str, list[str]] = {}
        for key, owner in zip(keys, owners):
            groups.setdefault(owner, []).append(key)
        cursors = {
            owner: iter(self.nodes[owner].get_many(bucket, now))
            for owner, bucket in groups.items()
        }
        return [next(cursors[owner]) for owner in owners]

    def set_many(
        self, entries: Iterable[tuple[str, Any, int]], now: float = 0.0
    ) -> int:
        entries = list(entries)
        owners = self.route_many([entry[0] for entry in entries])
        groups: dict[str, list[tuple[str, Any, int]]] = {}
        for entry, owner in zip(entries, owners):
            groups.setdefault(owner, []).append(entry)
        return sum(
            self.nodes[owner].set_many(batch, now)
            for owner, batch in groups.items()
        )

    def delete_many(self, keys: Iterable[str]) -> int:
        keys = list(keys)
        owners = self.route_many(keys)
        groups: dict[str, list[str]] = {}
        for key, owner in zip(keys, owners):
            groups.setdefault(owner, []).append(key)
        return sum(
            self.nodes[owner].delete_many(batch)
            for owner, batch in groups.items()
        )

    def multiget(
        self, keys: Iterable[str], now: float = 0.0
    ) -> tuple[dict[str, Any], list[str]]:
        keys = list(keys)
        hits: dict[str, Any] = {}
        misses: list[str] = []
        for key, value in zip(keys, self.get_many(keys, now)):
            if value is None:
                misses.append(key)
            else:
                hits[key] = value
        return hits, misses

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_items(self) -> int:
        return sum(len(node) for node in self.active_nodes)

    def aggregate_stats(self) -> NodeStats:
        """Wire counters summed over the pool, mapped onto NodeStats."""
        total = NodeStats()
        for node in self.nodes.values():
            stats = node.wire_stats()
            total.get_hits += stats.get("get_hits", 0)
            total.get_misses += stats.get("get_misses", 0)
            total.sets += stats.get("cmd_set", 0)
            total.deletes += stats.get("delete_hits", 0)
            total.evictions += stats.get("evictions", 0)
            total.expired += stats.get("expired_unfetched", 0)
        return total

    def refresh_all(self) -> None:
        """Force a fresh metadata snapshot on every node."""
        for node in self.nodes.values():
            node.refresh()

    def close(self) -> None:
        """Close every client connection and the I/O loop; idempotent."""
        for node in self.nodes.values():
            try:
                node.close()
            except Exception:
                continue  # a dead node must not block teardown
        self.loop.stop()

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "LiveCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiveCluster(active={sorted(self.ring.members)}, "
            f"pool={len(self.nodes)})"
        )
