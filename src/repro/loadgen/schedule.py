"""Deterministic open-loop request schedules.

A schedule is the full request tape decided *before* the run starts:
every operation gets an absolute send deadline on the run timeline, a
key drawn from a seeded Zipf popularity, and an op type drawn from a
seeded coin.  Fixing the tape up front is what makes the run open loop
(deadlines never move, however slow the backend is) and what makes two
runs with the same seed byte-comparable (the determinism tests hash the
tape with :func:`tape_sha256`).

Rates are either constant (``trace=None``: operation ``i`` is due at
``i / rate``) or shaped by a :class:`~repro.workloads.traces.RateTrace`,
in which case ``rate_rps`` is the *peak* rate and each second's offered
count follows the normalised trace, spread evenly within the second.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.keyspace import KeySpace
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.traces import RateTrace


@dataclass(frozen=True)
class ScheduledOp:
    """One planned request: what to send and exactly when."""

    index: int
    send_at_s: float
    op: str  # "get" | "set"
    key: str
    value_bytes: int  # payload size for sets; 0 for gets


def payload_for(key: str, value_bytes: int) -> bytes:
    """The deterministic payload every run stores under ``key``.

    Derived from the key alone so that seeding, load-time sets, and
    verification all agree on the bytes without sharing state.
    """
    if value_bytes <= 0:
        return b""
    stamp = (key + "#").encode("ascii")
    repeats = value_bytes // len(stamp) + 1
    return (stamp * repeats)[:value_bytes]


def _per_second_counts(
    rate_rps: float, duration_s: float, trace: RateTrace | None
) -> list[int]:
    """Offered request count for each whole second of the run."""
    seconds = int(np.ceil(duration_s))
    if trace is None:
        levels = np.ones(seconds)
    else:
        levels = trace.normalised().resampled(max(seconds, 1)).values
    counts: list[int] = []
    for second in range(seconds):
        # The last (partial) second offers proportionally fewer requests.
        width = min(1.0, duration_s - second)
        counts.append(int(round(rate_rps * levels[second] * width)))
    return counts


def build_schedule(
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    num_keys: int = 10_000,
    set_fraction: float = 0.1,
    value_bytes: int = 64,
    trace: RateTrace | None = None,
    zipf_alpha: float = 0.95,
) -> list[ScheduledOp]:
    """Plan the full request tape for one open-loop run.

    Deadlines are strictly non-decreasing; keys follow a seeded
    ``Zipf(zipf_alpha)`` over ``num_keys`` keys; a seeded coin marks
    ``set_fraction`` of operations as ``set`` (payload
    :func:`payload_for`), the rest as ``get``.  Identical arguments
    produce an identical tape -- no wall-clock input anywhere.
    """
    if rate_rps <= 0:
        raise ConfigurationError("rate_rps must be positive")
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    if not 0.0 <= set_fraction <= 1.0:
        raise ConfigurationError("set_fraction must be within [0, 1]")
    counts = _per_second_counts(rate_rps, duration_s, trace)
    total = sum(counts)
    if total == 0:
        raise ConfigurationError(
            f"rate {rate_rps}/s over {duration_s}s offers zero requests"
        )
    popularity = ZipfPopularity(num_keys, alpha=zipf_alpha, seed=seed)
    keys = KeySpace(num_keys).keys_for(popularity.sample(total))
    set_coin = np.random.default_rng(seed + 1).random(total) < set_fraction

    schedule: list[ScheduledOp] = []
    index = 0
    for second, count in enumerate(counts):
        if count <= 0:
            continue
        width = min(1.0, duration_s - second)
        gap = width / count
        for slot in range(count):
            is_set = bool(set_coin[index])
            schedule.append(
                ScheduledOp(
                    index=index,
                    send_at_s=round(second + slot * gap, 9),
                    op="set" if is_set else "get",
                    key=keys[index],
                    value_bytes=value_bytes if is_set else 0,
                )
            )
            index += 1
    return schedule


def tape_rows(schedule: list[ScheduledOp]) -> list[dict[str, Any]]:
    """The schedule as JSON rows -- deterministic fields only.

    This is the tape the determinism tests compare across runs, so it
    must never grow a wall-clock or pid-dependent field.
    """
    return [
        {
            "i": op.index,
            "t": op.send_at_s,
            "op": op.op,
            "key": op.key,
            "size": op.value_bytes,
        }
        for op in schedule
    ]


def tape_sha256(schedule: list[ScheduledOp]) -> str:
    """Canonical digest of the tape (sorted keys, no whitespace drift)."""
    digest = hashlib.sha256()
    for row in tape_rows(schedule):
        digest.update(
            json.dumps(row, sort_keys=True, separators=(",", ":")).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()
