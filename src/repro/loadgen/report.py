"""The load generator's JSON report schema.

One :class:`LoadReport` summarises one open-loop run: offered vs
achieved rate, per-op outcome counters, and three latency distributions
(all in milliseconds, quantiles estimated from
:class:`~repro.obs.metrics.Histogram` buckets):

- ``response_ms`` -- completion minus *scheduled* send time.  This is
  the coordinated-omission-free number: a request that waited behind a
  stalled backend is charged its whole wait.
- ``service_ms`` -- completion minus *actual* send time: what the wire
  round trip alone cost.
- ``lateness_ms`` -- actual minus scheduled send time: how far behind
  the dispatcher itself fell.

``to_dict`` / ``from_dict`` round-trip exactly (tested), so CI
artifacts can be re-read and gated on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

QUANTILE_LABELS = ("p50", "p95", "p99")
"""Quantiles reported for every latency distribution."""


@dataclass
class LoadReport:
    """Everything one open-loop run measured, JSON-serialisable."""

    mode: str  # "steady" | "migrate"
    offered_rate: float
    duration_s: float
    seed: int
    nodes: list[str]
    ops_total: int
    ops_sent: int
    ops_ok: int
    hits: int
    misses: int
    stored: int
    transport_errors: int
    wire_errors: int
    late_sends: int
    achieved_rate: float
    wall_seconds: float
    response_ms: dict[str, float | None]
    service_ms: dict[str, float | None]
    lateness_ms: dict[str, float | None]
    tape_sha256: str
    trace: str | None = None
    migration: dict[str, Any] | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def achieved_fraction(self) -> float:
        """Completed ops as a fraction of the offered tape."""
        if self.ops_total <= 0:
            return 0.0
        return self.ops_ok / self.ops_total

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dump; :meth:`from_dict` inverts it exactly."""
        return {
            "mode": self.mode,
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "nodes": list(self.nodes),
            "ops_total": self.ops_total,
            "ops_sent": self.ops_sent,
            "ops_ok": self.ops_ok,
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "transport_errors": self.transport_errors,
            "wire_errors": self.wire_errors,
            "late_sends": self.late_sends,
            "achieved_rate": self.achieved_rate,
            "wall_seconds": self.wall_seconds,
            "response_ms": dict(self.response_ms),
            "service_ms": dict(self.service_ms),
            "lateness_ms": dict(self.lateness_ms),
            "tape_sha256": self.tape_sha256,
            "trace": self.trace,
            "migration": (
                dict(self.migration) if self.migration is not None else None
            ),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LoadReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            mode=data["mode"],
            offered_rate=data["offered_rate"],
            duration_s=data["duration_s"],
            seed=data["seed"],
            nodes=list(data["nodes"]),
            ops_total=data["ops_total"],
            ops_sent=data["ops_sent"],
            ops_ok=data["ops_ok"],
            hits=data["hits"],
            misses=data["misses"],
            stored=data["stored"],
            transport_errors=data["transport_errors"],
            wire_errors=data["wire_errors"],
            late_sends=data["late_sends"],
            achieved_rate=data["achieved_rate"],
            wall_seconds=data["wall_seconds"],
            response_ms=dict(data["response_ms"]),
            service_ms=dict(data["service_ms"]),
            lateness_ms=dict(data["lateness_ms"]),
            tape_sha256=data["tape_sha256"],
            trace=data.get("trace"),
            migration=(
                dict(data["migration"])
                if data.get("migration") is not None
                else None
            ),
            extras=dict(data.get("extras", {})),
        )


def quantiles_ms(histogram: Any) -> dict[str, float | None]:
    """``{p50, p95, p99}`` of a seconds histogram, in milliseconds."""
    out: dict[str, float | None] = {}
    for label in QUANTILE_LABELS:
        q = int(label[1:]) / 100.0
        value = histogram.quantile(q)
        out[label] = None if value is None else round(value * 1000.0, 3)
    return out
