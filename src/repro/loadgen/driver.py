"""The open-loop dispatcher: fixed deadlines, recorded lateness.

:class:`LoadGenerator` replays a pre-built schedule (see
:mod:`repro.loadgen.schedule`) against live node endpoints.  The run is
**open loop**: deadlines were fixed when the tape was built and never
move.  Operations due within one dispatch tick are routed on the ketama
ring, grouped per node, and shipped as pipelined
:class:`~repro.net.client.NodeClient` batches.

Coordinated-omission discipline:

- the in-flight semaphore is acquired *before* the actual send time is
  stamped, so backpressure from a stalled backend shows up as recorded
  lateness on the ops it delayed -- late sends are counted, never
  rescheduled to a kinder deadline;
- ``response`` latency is measured from the *scheduled* send time, so a
  request that spent 2 s queued behind a stall is charged 2 s even
  though its own wire round trip was fast;
- ``service`` latency (actual send to completion) is recorded alongside,
  so the two can be compared to see where time went.

Membership is swappable mid-run (:meth:`LoadGenerator.set_membership`,
safe to call from another thread): the Master's post-switch membership
callback rebuilds the routing ring, which is how a scale-in under load
redirects traffic the moment the switch commits.  Errors are kept on a
timestamped timeline so the migration runner can compute the
``killed_at -> recovered_at`` degradation window.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Callable, Iterable

from repro.errors import ConfigurationError, TransportError, WireProtocolError
from repro.hashing.ketama import DEFAULT_VNODES, ConsistentHashRing
from repro.loadgen.report import LoadReport, quantiles_ms
from repro.loadgen.schedule import ScheduledOp, payload_for, tape_sha256
from repro.net.client import NodeClient
from repro.obs.metrics import LATENCY_SECONDS_BUCKETS, Histogram

DEFAULT_TICK_S = 0.01
"""Dispatch quantum: ops due within one tick ship as one batch wave."""

DEFAULT_LATE_THRESHOLD_S = 0.010
"""A send this far past its deadline counts as late."""


class LoadGenerator:
    """Open-loop driver over pipelined node clients.

    Build it with the target ``endpoints`` and the full ``schedule``,
    then ``asyncio.run(generator.run())`` (typically on a worker thread
    while a Master migrates on another).  Counters and histograms are
    mutated only on the generator's loop thread; other threads may read
    them after :meth:`run` returns, watch :attr:`started`, call
    :meth:`now`, or swap membership.
    """

    def __init__(
        self,
        endpoints: dict[str, tuple[str, int]],
        schedule: list[ScheduledOp],
        tick_s: float = DEFAULT_TICK_S,
        max_inflight: int = 32,
        pool_size: int = 4,
        timeout_s: float = 5.0,
        vnodes: int = DEFAULT_VNODES,
        late_threshold_s: float = DEFAULT_LATE_THRESHOLD_S,
        key_observer: Callable[[list[str]], None] | None = None,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("load generator needs endpoints")
        if not schedule:
            raise ConfigurationError("load generator needs a schedule")
        if tick_s <= 0:
            raise ConfigurationError("tick_s must be positive")
        self.endpoints = dict(endpoints)
        self.schedule = schedule
        self.tick_s = tick_s
        self.max_inflight = max(1, max_inflight)
        self.pool_size = pool_size
        self.timeout_s = timeout_s
        self.vnodes = vnodes
        self.late_threshold_s = late_threshold_s
        # Control-plane key feed: called on the loop thread with each
        # dispatch wave's keys, in schedule order (the AutoScaler's
        # profiling window samples the live request stream through it).
        self.key_observer = key_observer
        self._ring = ConsistentHashRing(sorted(endpoints), vnodes=vnodes)
        self._tasks: set[asyncio.Task[None]] = set()
        self._clients: dict[str, NodeClient] = {}
        self._anchor = 0.0
        self.started = threading.Event()
        # Outcome counters (loop-thread writes only).
        self.ops_total = len(schedule)
        self.ops_sent = 0
        self.ops_ok = 0
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.transport_errors = 0
        self.wire_errors = 0
        self.late_sends = 0
        self.wall_seconds = 0.0
        # (run-time seconds, node) for every failed batch -- the
        # migration runner's recovery detector.
        self.error_timeline: list[tuple[float, str]] = []
        # Per-second accounting for soak curves (loop-thread writes).
        self._second_ok: dict[int, int] = {}
        self._second_errors: dict[int, int] = {}
        self._second_response: dict[int, Histogram] = {}
        self.response_hist = Histogram(
            "loadgen_response_seconds", LATENCY_SECONDS_BUCKETS
        )
        self.service_hist = Histogram(
            "loadgen_service_seconds", LATENCY_SECONDS_BUCKETS
        )
        self.lateness_hist = Histogram(
            "loadgen_lateness_seconds", LATENCY_SECONDS_BUCKETS
        )

    # ------------------------------------------------------------------
    # Cross-thread surface
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the run started (valid from any thread)."""
        return time.perf_counter() - self._anchor

    def set_membership(self, members: Iterable[str]) -> None:
        """Swap the routing ring (thread-safe: one atomic rebind).

        Members must be a subset of the configured endpoints; the
        Master's ``subscribe_membership`` hook calls this with the
        post-switch member list so new traffic avoids retired nodes.
        """
        names = sorted(members)
        unknown = [name for name in names if name not in self.endpoints]
        if unknown:
            raise ConfigurationError(f"unknown members: {unknown}")
        self._ring = ConsistentHashRing(names, vnodes=self.vnodes)

    @property
    def members(self) -> frozenset[str]:
        """Current routing membership."""
        return self._ring.members

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------

    def _ticks(self) -> list[tuple[float, list[ScheduledOp]]]:
        """Group the tape into dispatch waves of one tick each."""
        grouped: dict[int, list[ScheduledOp]] = {}
        for op in self.schedule:
            grouped.setdefault(int(op.send_at_s / self.tick_s), []).append(op)
        return [
            (index * self.tick_s, grouped[index])
            for index in sorted(grouped)
        ]

    async def run(self) -> None:
        """Replay the whole tape; returns when every batch resolved."""
        self._clients = {
            name: NodeClient(
                name,
                host,
                port,
                pool_size=self.pool_size,
                timeout_s=self.timeout_s,
            )
            for name, (host, port) in self.endpoints.items()
        }
        inflight = asyncio.Semaphore(self.max_inflight)
        ticks = self._ticks()
        self._anchor = time.perf_counter()
        self.started.set()
        try:
            for deadline, ops in ticks:
                delay = deadline - self.now()
                if delay > 0:
                    await asyncio.sleep(delay)
                if self.key_observer is not None:
                    self.key_observer([op.key for op in ops])
                ring = self._ring  # one consistent ring per wave
                by_node: dict[str, list[ScheduledOp]] = {}
                for op in ops:
                    by_node.setdefault(
                        ring.node_for_key(op.key), []
                    ).append(op)
                for node, node_ops in by_node.items():
                    # Acquire BEFORE stamping the send: backpressure is
                    # recorded as lateness on the ops it delayed.
                    await inflight.acquire()
                    sent_at = self.now()
                    for op in node_ops:
                        lateness = max(0.0, sent_at - op.send_at_s)
                        self.lateness_hist.observe(lateness)
                        if lateness > self.late_threshold_s:
                            self.late_sends += 1
                    task = asyncio.create_task(
                        self._dispatch(inflight, node, node_ops, sent_at)
                    )
                    self._tasks.add(task)
                    task.add_done_callback(self._tasks.discard)
            while self._tasks:
                await asyncio.gather(
                    *list(self._tasks), return_exceptions=True
                )
        finally:
            self.wall_seconds = self.now()
            for client in self._clients.values():
                await client.close()

    async def _dispatch(
        self,
        inflight: asyncio.Semaphore,
        node: str,
        ops: list[ScheduledOp],
        sent_at: float,
    ) -> None:
        """Ship one node's wave as pipelined batches; account outcomes."""
        client = self._clients[node]
        self.ops_sent += len(ops)
        try:
            sets = [op for op in ops if op.op == "set"]
            gets = [op for op in ops if op.op == "get"]
            if sets:
                # Await first, then increment: ``x += await ...`` loads
                # ``x`` before suspending, so concurrent dispatch tasks
                # would overwrite each other's counts.
                stored = await client.set_many(
                    (op.key, 0, payload_for(op.key, op.value_bytes))
                    for op in sets
                )
                self.stored += stored
            if gets:
                values = await client.get_many([op.key for op in gets])
                found = sum(1 for value in values if value is not None)
                self.hits += found
                self.misses += len(gets) - found
            done_at = self.now()
            for op in ops:
                # Charge each op to its *scheduled* second: the curve
                # then follows the tape deterministically, and only the
                # latency values inside a bucket measure the host.
                second = int(op.send_at_s)
                second_hist = self._second_response.get(second)
                if second_hist is None:
                    second_hist = Histogram(
                        f"loadgen_response_seconds_t{second}",
                        LATENCY_SECONDS_BUCKETS,
                    )
                    self._second_response[second] = second_hist
                response = max(0.0, done_at - op.send_at_s)
                self.response_hist.observe(response)
                second_hist.observe(response)
                self.service_hist.observe(max(0.0, done_at - sent_at))
                self._second_ok[second] = (
                    self._second_ok.get(second, 0) + 1
                )
            self.ops_ok += len(ops)
        except TransportError:
            self.transport_errors += len(ops)
            failed_at = self.now()
            self.error_timeline.append((failed_at, node))
            second = int(failed_at)
            self._second_errors[second] = (
                self._second_errors.get(second, 0) + len(ops)
            )
        except WireProtocolError:
            self.wire_errors += len(ops)
            failed_at = self.now()
            self.error_timeline.append((failed_at, node))
            second = int(failed_at)
            self._second_errors[second] = (
                self._second_errors.get(second, 0) + len(ops)
            )
        finally:
            inflight.release()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def per_second_series(self) -> list[dict[str, float | int | None]]:
        """Ops/s + latency quantiles for every whole second of the run.

        The soak workflow's curve source: one row per second with the
        completed-op count, failed-op count, and p50/p99 response
        latency (ms) of the ops that completed in that second.  Seconds
        with no completions still appear (zeros), so a stall shows as a
        hole in the curve rather than a skipped row.
        """
        seconds = set(self._second_ok) | set(self._second_errors)
        if not seconds:
            return []
        rows: list[dict[str, float | int | None]] = []
        for second in range(min(seconds), max(seconds) + 1):
            hist = self._second_response.get(second)
            rows.append(
                {
                    "t": second,
                    "ops_ok": self._second_ok.get(second, 0),
                    "errors": self._second_errors.get(second, 0),
                    "p50_ms": (
                        quantiles_ms(hist)["p50"] if hist else None
                    ),
                    "p99_ms": (
                        quantiles_ms(hist)["p99"] if hist else None
                    ),
                }
            )
        return rows

    def report(
        self,
        mode: str,
        offered_rate: float,
        duration_s: float,
        seed: int,
        trace: str | None = None,
    ) -> LoadReport:
        """Summarise the finished run as a :class:`LoadReport`."""
        wall = self.wall_seconds or self.now()
        return LoadReport(
            mode=mode,
            offered_rate=offered_rate,
            duration_s=duration_s,
            seed=seed,
            nodes=sorted(self.endpoints),
            ops_total=self.ops_total,
            ops_sent=self.ops_sent,
            ops_ok=self.ops_ok,
            hits=self.hits,
            misses=self.misses,
            stored=self.stored,
            transport_errors=self.transport_errors,
            wire_errors=self.wire_errors,
            late_sends=self.late_sends,
            achieved_rate=(
                round(self.ops_ok / wall, 3) if wall > 0 else 0.0
            ),
            wall_seconds=round(wall, 3),
            response_ms=quantiles_ms(self.response_hist),
            service_ms=quantiles_ms(self.service_hist),
            lateness_ms=quantiles_ms(self.lateness_hist),
            tape_sha256=tape_sha256(self.schedule),
            trace=trace,
            extras={"per_second": self.per_second_series()},
        )
