"""Open-loop socket load generation for the live tier.

Closed-loop load generators (issue, wait, issue again) suffer from
*coordinated omission*: when the server stalls, the generator stalls
with it, so the very requests that would have seen the stall are never
issued and the measured tail is fiction.  This package drives the live
cluster **open loop**: every request has a send deadline fixed up front
by :func:`~repro.loadgen.schedule.build_schedule`, latency is measured
from that *scheduled* time, and a send that leaves late because the
backend or the generator fell behind is *recorded as late* -- never
silently rescheduled.

- :mod:`repro.loadgen.schedule` -- deterministic request tape: fixed-rate
  (optionally :class:`~repro.workloads.traces.RateTrace`-shaped)
  deadlines over a Zipf-popular key space, plus the tape digest the
  determinism tests compare;
- :mod:`repro.loadgen.driver` -- :class:`~repro.loadgen.driver.LoadGenerator`,
  the asyncio dispatcher: tick-batched pipelined sends through
  :class:`~repro.net.client.NodeClient`, ketama routing with live
  membership swaps, lateness/response/service histograms from
  :mod:`repro.obs.metrics`;
- :mod:`repro.loadgen.report` -- the JSON report schema
  (:class:`~repro.loadgen.report.LoadReport`) with a round-trippable
  ``to_dict``/``from_dict`` pair;
- :mod:`repro.loadgen.runner` -- end-to-end runs for the CLI and CI:
  steady-state load against a :class:`~repro.net.procs.ProcessClusterHarness`
  (or external endpoints), and the ``--migrate`` mode that scales in
  mid-load and reports the ``killed_at -> recovered_at`` degradation
  window.
"""

from __future__ import annotations

from repro.loadgen.driver import LoadGenerator
from repro.loadgen.report import LoadReport
from repro.loadgen.runner import run_load, run_load_migration
from repro.loadgen.schedule import (
    ScheduledOp,
    build_schedule,
    payload_for,
    tape_rows,
    tape_sha256,
)

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "ScheduledOp",
    "build_schedule",
    "payload_for",
    "run_load",
    "run_load_migration",
    "tape_rows",
    "tape_sha256",
]
