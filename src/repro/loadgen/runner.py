"""End-to-end load runs: steady state, and scale-in under load.

Two entry points back the CLI and CI:

- :func:`run_load` -- boot (or target) a cluster, seed the keyspace,
  replay an open-loop tape, return the :class:`~repro.loadgen.report.LoadReport`;
- :func:`run_load_migration` -- the ElMem experiment: a
  :class:`~repro.net.procs.ProcessClusterHarness` cluster absorbs load
  on every core while the *unmodified*
  :class:`~repro.core.master.Master` plans and executes a three-phase
  scale-in mid-run.  The Master's post-switch membership callback swaps
  the generator's routing ring, the retired node's process is then
  drained away, and the report carries a ``killed_at -> recovered_at``
  degradation window derived from the migration span and any trailing
  transport errors on the load timeline.

The load generator runs on a worker thread (its own asyncio loop); the
Master runs on the calling thread against a
:class:`~repro.net.cluster.LiveCluster` exactly as it would without any
load -- nothing about migration code knows the generator exists.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any

from repro.core.master import Master
from repro.errors import ConfigurationError
from repro.loadgen.driver import (
    DEFAULT_LATE_THRESHOLD_S,
    DEFAULT_TICK_S,
    LoadGenerator,
)
from repro.loadgen.report import LoadReport
from repro.loadgen.schedule import build_schedule, payload_for
from repro.memcached.slab import PAGE_SIZE
from repro.net.cluster import LiveCluster
from repro.net.procs import ProcessClusterHarness
from repro.workloads.traces import RateTrace, make_trace

SEED_BATCH = 2000
"""Keys per pipelined seeding batch."""

DEFAULT_MEMORY_PER_NODE = 8 * PAGE_SIZE
"""Node memory for self-hosted load runs (plenty for the default tape)."""


def _resolve_trace(trace: str | None) -> RateTrace | None:
    return None if trace is None else make_trace(trace)


def seed_keys(
    live: LiveCluster, keys: list[str], value_bytes: int
) -> int:
    """Store every distinct key once so the load's gets can hit."""
    distinct = sorted(set(keys))
    stored = 0
    for start in range(0, len(distinct), SEED_BATCH):
        batch = distinct[start : start + SEED_BATCH]
        stored += live.set_many(
            [
                (key, (0, payload_for(key, value_bytes)), value_bytes)
                for key in batch
            ]
        )
    return stored


def run_generator_thread(
    generator: LoadGenerator,
) -> tuple[threading.Thread, dict[str, BaseException]]:
    """Start ``generator.run()`` on a worker thread; returns the thread
    and a holder that carries any exception out of it."""
    failure: dict[str, BaseException] = {}

    def _worker() -> None:
        try:
            asyncio.run(generator.run())
        except BaseException as exc:  # re-raised on the caller thread
            failure["error"] = exc

    thread = threading.Thread(
        target=_worker, name="loadgen-driver", daemon=True
    )
    thread.start()
    return thread, failure


def join_generator(
    thread: threading.Thread,
    failure: dict[str, BaseException],
    duration_s: float,
) -> None:
    thread.join(timeout=duration_s + 120.0)
    if thread.is_alive():
        raise ConfigurationError("load generator did not finish in time")
    if "error" in failure:
        raise failure["error"]


def run_load(
    rate: float,
    duration_s: float,
    seed: int = 0,
    endpoints: dict[str, tuple[str, int]] | None = None,
    nodes: int = 3,
    memory_per_node: int = DEFAULT_MEMORY_PER_NODE,
    num_keys: int = 5000,
    set_fraction: float = 0.1,
    value_bytes: int = 64,
    trace: str | None = None,
    tick_s: float = DEFAULT_TICK_S,
    max_inflight: int = 32,
    timeout_s: float = 5.0,
    late_threshold_s: float = DEFAULT_LATE_THRESHOLD_S,
    seed_data: bool = True,
) -> LoadReport:
    """One steady-state open-loop run; returns its report.

    With ``endpoints`` the run targets an externally managed cluster;
    otherwise it boots ``nodes`` node *processes* for the duration.
    """
    schedule = build_schedule(
        rate,
        duration_s,
        seed=seed,
        num_keys=num_keys,
        set_fraction=set_fraction,
        value_bytes=value_bytes,
        trace=_resolve_trace(trace),
    )

    def _drive(targets: dict[str, tuple[str, int]]) -> LoadReport:
        if seed_data:
            with LiveCluster(targets, timeout_s=timeout_s) as live:
                seed_keys(
                    live, [op.key for op in schedule], value_bytes
                )
        generator = LoadGenerator(
            targets,
            schedule,
            tick_s=tick_s,
            max_inflight=max_inflight,
            timeout_s=timeout_s,
            late_threshold_s=late_threshold_s,
        )
        asyncio.run(generator.run())
        return generator.report(
            "steady", rate, duration_s, seed, trace=trace
        )

    if endpoints is not None:
        return _drive(dict(endpoints))
    if nodes < 1:
        raise ConfigurationError("need at least one node")
    names = [f"proc-{index:02d}" for index in range(nodes)]
    with ProcessClusterHarness(names, memory_per_node) as harness:
        return _drive(harness.endpoints)


def run_load_migration(
    rate: float,
    duration_s: float,
    seed: int = 7,
    nodes: int = 4,
    retire: int = 1,
    memory_per_node: int = DEFAULT_MEMORY_PER_NODE,
    num_keys: int = 5000,
    set_fraction: float = 0.1,
    value_bytes: int = 64,
    trace: str | None = None,
    migrate_at_frac: float = 0.35,
    tick_s: float = DEFAULT_TICK_S,
    max_inflight: int = 32,
    timeout_s: float = 5.0,
    late_threshold_s: float = DEFAULT_LATE_THRESHOLD_S,
) -> LoadReport:
    """Scale in ``retire`` of ``nodes`` node processes mid-load.

    The report's ``migration`` block records the plan outcome plus the
    degradation window: ``killed_at_s`` is when the Master's execute
    began on the load timeline, ``recovered_at_s`` is when both the
    migration and the last load-side transport error after it were
    behind us.
    """
    if nodes < 3:
        raise ConfigurationError(
            "a migration load run needs at least 3 nodes"
        )
    if not 0 < retire < nodes:
        raise ConfigurationError(
            f"retire must be in [1, {nodes - 1}], got {retire}"
        )
    if not 0.0 < migrate_at_frac < 1.0:
        raise ConfigurationError("migrate_at_frac must be within (0, 1)")
    schedule = build_schedule(
        rate,
        duration_s,
        seed=seed,
        num_keys=num_keys,
        set_fraction=set_fraction,
        value_bytes=value_bytes,
        trace=_resolve_trace(trace),
    )
    names = [f"proc-{index:02d}" for index in range(nodes)]
    with ProcessClusterHarness(names, memory_per_node) as harness:
        live = LiveCluster(harness.endpoints, timeout_s=timeout_s)
        try:
            seed_keys(live, [op.key for op in schedule], value_bytes)
            generator = LoadGenerator(
                harness.endpoints,
                schedule,
                tick_s=tick_s,
                max_inflight=max_inflight,
                timeout_s=timeout_s,
                late_threshold_s=late_threshold_s,
            )
            master = Master(live)
            master.subscribe_membership(generator.set_membership)
            thread, failure = run_generator_thread(generator)
            if not generator.started.wait(timeout=30.0):
                raise ConfigurationError("load generator failed to start")
            time.sleep(duration_s * migrate_at_frac)

            retiring = master.choose_retiring(retire)
            plan = master.plan_scale_in(retiring)
            killed_at = generator.now()
            migration_report = master.execute(plan)
            executed_at = generator.now()
            # The retired processes drain away for real: scale-in means
            # the OS process is gone, not just out of the ring.
            for name in plan.retiring:
                harness.stop_node(name)
            join_generator(thread, failure, duration_s)

            window_errors = [
                t for t, _ in generator.error_timeline if t >= killed_at
            ]
            recovered_at = max([executed_at, *window_errors])
            migration: dict[str, Any] = {
                "retired": list(plan.retiring),
                "membership_after": list(
                    migration_report.membership_after
                ),
                "outcome": migration_report.outcome,
                "items_exported": migration_report.items_exported,
                "items_imported": migration_report.items_imported,
                "killed_at_s": round(killed_at, 3),
                "recovered_at_s": round(recovered_at, 3),
                "window_s": round(recovered_at - killed_at, 3),
                "errors_in_window": len(window_errors),
            }
            report = generator.report(
                "migrate", rate, duration_s, seed, trace=trace
            )
            report.migration = migration
            return report
        finally:
            live.close()
