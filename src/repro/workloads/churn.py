"""Temporal popularity churn.

Production key popularity is not stationary: items rise and fall over
hours (one reason the paper's AutoScaler re-profiles the request trace
every minute instead of trusting old measurements).  This module wraps a
base popularity distribution with *churn*: at a configurable rate, the
popularity ranks of random key pairs are swapped, so the hot set drifts
while the overall skew (the rank-probability curve) is preserved.

Used by tests and the churn ablation to verify that ElMem's machinery
-- which keys hotness off MRU timestamps rather than static popularity
-- keeps working when the hot set moves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.popularity import PopularityDistribution


class ChurningPopularity(PopularityDistribution):
    """A popularity distribution whose hot set drifts over time.

    Parameters
    ----------
    base:
        The distribution providing the (fixed) multiset of
        probabilities; Zipf in practice.
    swaps_per_step:
        Key pairs whose probabilities are exchanged on each
        :meth:`advance` call.
    hot_bias:
        Fraction of swaps forced to involve one of the currently hottest
        1 % of keys, making the drift visible at the head of the
        distribution rather than only in the tail.
    """

    def __init__(
        self,
        base: PopularityDistribution,
        swaps_per_step: int = 100,
        hot_bias: float = 0.5,
        seed: int = 0,
    ) -> None:
        if swaps_per_step < 0:
            raise ConfigurationError("swaps_per_step must be >= 0")
        if not 0.0 <= hot_bias <= 1.0:
            raise ConfigurationError("hot_bias must be in [0, 1]")
        super().__init__(base.num_keys, base.probabilities.copy(), seed)
        self.swaps_per_step = swaps_per_step
        self.hot_bias = hot_bias
        self._churn_rng = np.random.default_rng(seed + 17)
        self.steps_advanced = 0

    def advance(self, steps: int = 1) -> None:
        """Apply ``steps`` rounds of churn to the probability vector."""
        if steps < 0:
            raise ConfigurationError("steps must be >= 0")
        hot_count = max(1, self.num_keys // 100)
        for _ in range(steps):
            self.steps_advanced += 1
            for _ in range(self.swaps_per_step):
                if self._churn_rng.random() < self.hot_bias:
                    hot_ranks = np.argpartition(
                        -self.probabilities, hot_count
                    )[:hot_count]
                    a = int(self._churn_rng.choice(hot_ranks))
                else:
                    a = int(self._churn_rng.integers(self.num_keys))
                b = int(self._churn_rng.integers(self.num_keys))
                self.probabilities[[a, b]] = self.probabilities[[b, a]]
        # Sampling uses the cumulative vector; rebuild it once per batch.
        self._cumulative = np.cumsum(self.probabilities)

    def hot_set(self, count: int) -> set[int]:
        """The ``count`` currently most popular key indices."""
        if count <= 0:
            return set()
        count = min(count, self.num_keys)
        return set(
            int(i)
            for i in np.argpartition(-self.probabilities, count - 1)[
                :count
            ]
        )


def hot_set_overlap(before: set[int], after: set[int]) -> float:
    """Jaccard overlap of two hot sets (1.0 = unchanged, 0.0 = disjoint)."""
    if not before and not after:
        return 1.0
    union = before | after
    if not union:
        return 1.0
    return len(before & after) / len(union)
