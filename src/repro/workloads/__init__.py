"""Workload models (Section V-A of the paper).

- key popularity: Zipf-like skew, as in the Facebook workloads;
- value sizes: Generalized Pareto with the paper's Facebook-ETC
  parameters (scale 214.476, shape 0.348148), values 1 B - 1 MB,
  keys fixed at 11 bytes;
- demand traces: synthetic per-second rate series shaped like the five
  normalised traces of Fig. 5 (Facebook SYS/ETC, SAP, NLANR, Microsoft);
- request generation: Poisson arrivals whose mean follows the trace, each
  web request touching a fixed number of KV pairs via multi-get.
"""

from repro.workloads.generator import RequestGenerator
from repro.workloads.keyspace import Dataset, KeySpace, build_dataset
from repro.workloads.popularity import (
    PopularityDistribution,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workloads.traces import RateTrace, TRACE_FACTORIES, make_trace
from repro.workloads.valuesize import GeneralizedParetoSizes

__all__ = [
    "Dataset",
    "GeneralizedParetoSizes",
    "KeySpace",
    "PopularityDistribution",
    "RateTrace",
    "RequestGenerator",
    "TRACE_FACTORIES",
    "UniformPopularity",
    "ZipfPopularity",
    "build_dataset",
    "make_trace",
]
