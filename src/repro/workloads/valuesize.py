"""Value-size distribution (Section V-A2 of the paper).

"The value sizes follow a Generalized Pareto distribution with scale
(sigma) of 214.476 and shape (kappa) of 0.348148, similar to the
distribution reported by Facebook", truncated to 1 byte - 1 MB; keys are
fixed at 11 bytes.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

FACEBOOK_ETC_SCALE = 214.476
FACEBOOK_ETC_SHAPE = 0.348148
KEY_LENGTH = 11
"""Fixed key size in bytes (paper Section V-A2)."""


class GeneralizedParetoSizes:
    """Sampler for per-key value sizes.

    Parameters
    ----------
    scale, shape:
        Generalized Pareto parameters; defaults are the paper's
        Facebook-ETC fit.
    min_size, max_size:
        Truncation bounds (1 byte to 1 MB in the paper).
    """

    def __init__(
        self,
        scale: float = FACEBOOK_ETC_SCALE,
        shape: float = FACEBOOK_ETC_SHAPE,
        min_size: int = 1,
        max_size: int = 1_000_000,
        seed: int = 0,
    ) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if not 1 <= min_size <= max_size:
            raise ConfigurationError("need 1 <= min_size <= max_size")
        self.scale = scale
        self.shape = shape
        self.min_size = min_size
        self.max_size = max_size
        self._rng = np.random.default_rng(seed)
        self._distribution = stats.genpareto(c=shape, loc=0.0, scale=scale)

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` truncated value sizes (integer bytes)."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        raw = self._distribution.rvs(size=count, random_state=self._rng)
        sizes = np.clip(np.ceil(raw), self.min_size, self.max_size)
        return sizes.astype(np.int64)

    def theoretical_mean(self) -> float:
        """Untruncated mean ``sigma / (1 - kappa)`` (finite for kappa<1)."""
        if self.shape >= 1.0:
            return float("inf")
        return self.scale / (1.0 - self.shape)

    def quantile(self, q: float) -> float:
        """Untruncated quantile of the value-size distribution."""
        if not 0.0 < q < 1.0:
            raise ConfigurationError("q must be in (0, 1)")
        return float(self._distribution.ppf(q))
