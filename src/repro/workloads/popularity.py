"""Key-popularity distributions.

Facebook's Memcached workloads are heavily skewed; a Zipf law is the
standard model (and what makes cache *hotness* meaningful: with uniform
popularity there would be nothing for FuseCache to select).  Sampling is
vectorised: an inverse-CDF lookup over a precomputed cumulative mass
array, O(log N) per sample.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class PopularityDistribution:
    """Base class: a probability mass over key indices ``0..n-1``."""

    def __init__(self, num_keys: int, probabilities: np.ndarray, seed: int) -> None:
        if num_keys <= 0:
            raise ConfigurationError("num_keys must be positive")
        if len(probabilities) != num_keys:
            raise ConfigurationError("probability vector length mismatch")
        self.num_keys = num_keys
        self.probabilities = probabilities / probabilities.sum()
        self._cumulative = np.cumsum(self.probabilities)
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` key indices i.i.d. from the distribution."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cumulative, uniforms, side="right")

    def probability(self, index: int) -> float:
        """Probability mass of key ``index``."""
        return float(self.probabilities[index])

    def rank_order(self) -> np.ndarray:
        """Key indices sorted most-popular first."""
        return np.argsort(-self.probabilities, kind="stable")

    def reseed(self, seed: int) -> None:
        """Reset the sampling stream (for reproducible replays)."""
        self._rng = np.random.default_rng(seed)


class ZipfPopularity(PopularityDistribution):
    """Zipf(alpha) over a finite key space.

    ``P(rank r) ~ 1 / r^alpha``; ``alpha`` around 0.9-1.0 matches
    published Memcached workload analyses.  Key indices are randomly
    permuted so popularity is not correlated with key order (and hence
    not with hash placement).
    """

    def __init__(
        self,
        num_keys: int,
        alpha: float = 0.95,
        seed: int = 0,
        shuffle: bool = True,
    ) -> None:
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.alpha = alpha
        ranks = np.arange(1, num_keys + 1, dtype=np.float64)
        weights = ranks**-alpha
        if shuffle:
            permutation = np.random.default_rng(seed + 1).permutation(num_keys)
            weights = weights[permutation]
        super().__init__(num_keys, weights, seed)


class UniformPopularity(PopularityDistribution):
    """Every key equally likely -- the no-skew ablation case."""

    def __init__(self, num_keys: int, seed: int = 0) -> None:
        super().__init__(num_keys, np.ones(num_keys), seed)


class NodeBiasedPopularity(PopularityDistribution):
    """A base distribution re-weighted by each key's owning cache node.

    Production Memcached tiers exhibit per-node *hot spots* -- some nodes
    end up owning disproportionately hot data (the problem systems like
    SPORE and MBal exist to fix, and the asymmetry visible in the paper's
    Fig. 7, where retiring the wrong node moves 86 % more items).  With
    purely hash-uniform placement every node's hotness distribution is
    statistically identical, which would erase that asymmetry; this
    wrapper reintroduces it by multiplying each key's probability by a
    weight attached to its owning node.

    Parameters
    ----------
    base:
        The underlying popularity (e.g. Zipf).
    owner_labels:
        ``owner_labels[i]`` names the node owning key ``i`` at workload-
        generation time (placement drift after scaling is intentional --
        the bias models history, not an invariant).
    node_weights:
        Multiplier per node name; nodes absent from the dict get 1.0.
    """

    def __init__(
        self,
        base: PopularityDistribution,
        owner_labels: list[str],
        node_weights: dict[str, float],
        seed: int = 0,
    ) -> None:
        if len(owner_labels) != base.num_keys:
            raise ConfigurationError("owner label per key required")
        multipliers = np.array(
            [node_weights.get(owner, 1.0) for owner in owner_labels]
        )
        if (multipliers <= 0).any():
            raise ConfigurationError("node weights must be positive")
        super().__init__(
            base.num_keys, base.probabilities * multipliers, seed
        )
        self.node_weights = dict(node_weights)


def lognormal_node_weights(
    node_names: list[str], sigma: float, seed: int = 0
) -> dict[str, float]:
    """Draw per-node hotness multipliers ``exp(N(0, sigma^2))``.

    ``sigma`` around 0.5-1.0 yields the 2-4x inter-node temperature
    spread reported for production cache clusters.
    """
    if sigma < 0:
        raise ConfigurationError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    return {
        name: float(np.exp(rng.normal(0.0, sigma)))
        for name in sorted(node_names)
    }
