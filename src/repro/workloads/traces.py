"""Demand traces shaped like the paper's Fig. 5.

The original traces (Facebook SYS/ETC, an SAP enterprise application,
NLANR/WITS, Microsoft storage) are proprietary; the paper itself only
shows *normalised* rates because "these are modified per system
capabilities".  Each factory below synthesises a per-second normalised
rate series with the qualitative shape the figure shows and the scaling
actions Section V-B exercises:

- **SYS**: high plateau, then a sharp sustained drop about a third in
  (drives the 10 -> 7 scale-in);
- **ETC**: drop then recovery (10 -> 9 scale-in followed by 9 -> 10
  scale-out);
- **SAP**: staircase decline (10 -> 9 -> 8);
- **NLANR**: rise then fall (8 -> 9 scale-out, then 9 -> 8 scale-in);
- **Microsoft**: gradual noisy decline (10 -> 9 -> 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class RateTrace:
    """A normalised request-rate series, one sample per second."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1 or len(self.values) == 0:
            raise ConfigurationError("trace must be a non-empty 1-D series")
        if (self.values < 0).any():
            raise ConfigurationError("trace rates must be non-negative")

    @property
    def duration_s(self) -> int:
        """Trace length in seconds."""
        return len(self.values)

    def normalised(self) -> "RateTrace":
        """Scale the series so its peak is 1.0 (Fig. 5 presentation)."""
        peak = self.values.max()
        if peak == 0:
            return RateTrace(self.name, self.values.copy())
        return RateTrace(self.name, self.values / peak)

    def scaled(self, peak_rps: float) -> np.ndarray:
        """Requests/second series with the peak mapped to ``peak_rps``."""
        return self.normalised().values * peak_rps

    def rate_at(self, second: int) -> float:
        """Normalised rate at ``second`` (clamped to the last sample)."""
        index = min(max(second, 0), len(self.values) - 1)
        return float(self.values[index])

    def resampled(self, duration_s: int) -> "RateTrace":
        """Linearly resample the series to ``duration_s`` samples."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        old_x = np.linspace(0.0, 1.0, num=len(self.values))
        new_x = np.linspace(0.0, 1.0, num=duration_s)
        return RateTrace(self.name, np.interp(new_x, old_x, self.values))

    @classmethod
    def from_csv(cls, path, name: str | None = None) -> "RateTrace":
        """Load a demand trace from a one-column (or ``t,rate``) CSV.

        Real deployments can replay their own measured request-rate
        series through the simulator this way; rows that fail to parse
        (headers) are skipped.
        """
        values = []
        with open(path) as handle:
            for line in handle:
                parts = line.strip().split(",")
                if not parts or not parts[-1]:
                    continue
                try:
                    values.append(float(parts[-1]))
                except ValueError:
                    continue
        if not values:
            raise ConfigurationError(f"no rate samples found in {path}")
        import os

        trace_name = name or os.path.splitext(os.path.basename(path))[0]
        return cls(trace_name, np.asarray(values))

    def to_csv(self, path) -> None:
        """Write the series as ``second,rate`` rows."""
        with open(path, "w") as handle:
            handle.write("second,rate\n")
            for second, rate in enumerate(self.values):
                handle.write(f"{second},{rate}\n")


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    padded = np.concatenate(
        (np.full(window - 1, values[0]), values)
    )
    return np.convolve(padded, kernel, mode="valid")


def _with_noise(
    values: np.ndarray, noise: float, seed: int
) -> np.ndarray:
    if noise <= 0:
        return values
    rng = np.random.default_rng(seed)
    jitter = rng.normal(1.0, noise, size=len(values))
    return np.clip(values * jitter, 0.0, None)


def _piecewise(
    duration_s: int, anchors: list[tuple[float, float]]
) -> np.ndarray:
    """Linear interpolation through ``(fraction_of_duration, level)``."""
    times = np.array([frac * (duration_s - 1) for frac, _ in anchors])
    levels = np.array([level for _, level in anchors])
    seconds = np.arange(duration_s)
    return np.interp(seconds, times, levels)


def sys_trace(
    duration_s: int = 3600, noise: float = 0.03, seed: int = 11
) -> RateTrace:
    """Facebook SYS: plateau, steep sustained drop around 1/3 in."""
    base = _piecewise(
        duration_s,
        [
            (0.00, 0.95),
            (0.30, 1.00),
            (0.34, 0.40),
            (0.60, 0.33),
            (1.00, 0.30),
        ],
    )
    return RateTrace(
        "SYS", _smooth(_with_noise(base, noise, seed), 15)
    )


def etc_trace(
    duration_s: int = 3600, noise: float = 0.03, seed: int = 13
) -> RateTrace:
    """Facebook ETC: diurnal dip then recovery."""
    base = _piecewise(
        duration_s,
        [
            (0.00, 1.00),
            (0.28, 0.95),
            (0.36, 0.45),
            (0.55, 0.42),
            (0.62, 0.50),
            (0.75, 0.95),
            (1.00, 1.00),
        ],
    )
    return RateTrace(
        "ETC", _smooth(_with_noise(base, noise, seed), 15)
    )


def sap_trace(
    duration_s: int = 3600, noise: float = 0.02, seed: int = 17
) -> RateTrace:
    """SAP enterprise application: staircase decline."""
    base = _piecewise(
        duration_s,
        [
            (0.00, 1.00),
            (0.30, 0.95),
            (0.36, 0.60),
            (0.58, 0.58),
            (0.66, 0.38),
            (1.00, 0.35),
        ],
    )
    return RateTrace(
        "SAP", _smooth(_with_noise(base, noise, seed), 15)
    )


def nlanr_trace(
    duration_s: int = 3600, noise: float = 0.04, seed: int = 19
) -> RateTrace:
    """NLANR/WITS: ramp up to a midday peak, then decline."""
    base = _piecewise(
        duration_s,
        [
            (0.00, 0.55),
            (0.25, 0.60),
            (0.35, 0.95),
            (0.55, 1.00),
            (0.66, 0.55),
            (1.00, 0.50),
        ],
    )
    return RateTrace(
        "NLANR", _smooth(_with_noise(base, noise, seed), 15)
    )


def microsoft_trace(
    duration_s: int = 3600, noise: float = 0.06, seed: int = 23
) -> RateTrace:
    """Microsoft storage: bursty, gradually declining demand."""
    base = _piecewise(
        duration_s,
        [
            (0.00, 1.00),
            (0.25, 0.90),
            (0.38, 0.55),
            (0.55, 0.50),
            (0.68, 0.35),
            (1.00, 0.32),
        ],
    )
    return RateTrace(
        "Microsoft", _smooth(_with_noise(base, noise, seed), 10)
    )


TRACE_FACTORIES = {
    "sys": sys_trace,
    "etc": etc_trace,
    "sap": sap_trace,
    "nlanr": nlanr_trace,
    "microsoft": microsoft_trace,
}


def make_trace(name: str, duration_s: int = 3600, **kwargs) -> RateTrace:
    """Build one of the five paper traces by name."""
    try:
        factory = TRACE_FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace {name!r}; choose from {sorted(TRACE_FACTORIES)}"
        ) from None
    return factory(duration_s=duration_s, **kwargs)
