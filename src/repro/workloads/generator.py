"""Request-stream generation.

The paper's load generator (httperf) issues PHP web requests whose mean
rate follows the demand trace with exponential interarrival times; each
web request needs a fixed number of KV pairs fetched via multi-get
(Section V-A).  Exponential interarrivals make per-second request counts
Poisson, which is how the generator draws them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.keyspace import Dataset
from repro.workloads.popularity import PopularityDistribution

DEFAULT_ITEMS_PER_REQUEST = 4


class RequestGenerator:
    """Per-second batches of web requests over a dataset.

    Parameters
    ----------
    dataset:
        The key space being requested.
    popularity:
        Distribution over key indices.
    items_per_request:
        KV pairs fetched per web request (fixed, as in the paper).
    """

    def __init__(
        self,
        dataset: Dataset,
        popularity: PopularityDistribution,
        items_per_request: int = DEFAULT_ITEMS_PER_REQUEST,
        seed: int = 0,
    ) -> None:
        if popularity.num_keys != dataset.num_keys:
            raise ConfigurationError(
                "popularity and dataset key counts differ"
            )
        if items_per_request < 1:
            raise ConfigurationError("items_per_request must be >= 1")
        self.dataset = dataset
        self.popularity = popularity
        self.items_per_request = items_per_request
        self._rng = np.random.default_rng(seed)

    def requests_for_second(self, rate_rps: float) -> list[list[str]]:
        """Web requests arriving within one second at mean rate ``rate_rps``.

        Returns a list of key batches, one per web request.
        """
        if rate_rps < 0:
            raise ConfigurationError("rate_rps must be non-negative")
        count = int(self._rng.poisson(rate_rps))
        if count == 0:
            return []
        indices = self.popularity.sample(count * self.items_per_request)
        keys = self.dataset.keyspace.keys_for(indices)
        step = self.items_per_request
        return [keys[i : i + step] for i in range(0, len(keys), step)]

    def key_stream(self, total_keys: int) -> list[str]:
        """A flat stream of ``total_keys`` requested keys (for profiling)."""
        indices = self.popularity.sample(total_keys)
        return self.dataset.keyspace.keys_for(indices)
