"""The dataset: keys, their value sizes, and the backing store.

The paper's dataset is ~19 million KV pairs (~50 GB on disk) with 11-byte
keys; simulations scale the count down while keeping the same key and
value-size distributions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.database.kvstore import BackingStore
from repro.errors import ConfigurationError
from repro.memcached.items import ITEM_OVERHEAD
from repro.workloads.valuesize import KEY_LENGTH, GeneralizedParetoSizes


# Key spaces at or below this size precompute the full index -> key-string
# table on first batched use; per-sample f-string formatting dominates the
# request-generation hot loop otherwise.  Above the limit (the paper-scale
# 19M-key dataset) the table would cost ~GBs, so fall back to formatting.
KEY_TABLE_LIMIT = 4_000_000


class KeySpace:
    """Fixed-width key namespace: index ``i`` <-> an 11-byte key string."""

    def __init__(self, num_keys: int) -> None:
        if num_keys <= 0:
            raise ConfigurationError("num_keys must be positive")
        if num_keys > 10**(KEY_LENGTH - 1):
            raise ConfigurationError(
                f"too many keys for {KEY_LENGTH}-byte keys"
            )
        self.num_keys = num_keys
        self._key_table: list[str] | None = None

    def key(self, index: int) -> str:
        """The key string for ``index`` (always 11 bytes)."""
        if not 0 <= index < self.num_keys:
            raise IndexError(f"key index {index} out of range")
        return f"k{index:0{KEY_LENGTH - 1}d}"

    def materialize(self) -> list[str]:
        """The full index -> key table, built once and cached."""
        table = self._key_table
        if table is None:
            width = KEY_LENGTH - 1
            table = [f"k{i:0{width}d}" for i in range(self.num_keys)]
            self._key_table = table
        return table

    def keys_for(self, indices: Iterable[int]) -> list[str]:
        """Key strings for a batch of indices (the generator hot path).

        Identical output to calling :meth:`key` per index; small key
        spaces are served from the cached key table.
        """
        if self.num_keys <= KEY_TABLE_LIMIT:
            table = self.materialize()
            return [table[index] for index in indices]
        key = self.key
        return [key(int(index)) for index in indices]

    def index(self, key: str) -> int:
        """Inverse of :meth:`key`."""
        return int(key[1:])

    def keys(self):
        """Iterate every key string."""
        return (self.key(i) for i in range(self.num_keys))


@dataclass
class Dataset:
    """A key space, each key's value size, and the backing store."""

    keyspace: KeySpace
    value_sizes: np.ndarray
    store: BackingStore

    @property
    def num_keys(self) -> int:
        """Number of distinct KV pairs."""
        return self.keyspace.num_keys

    def value_size(self, index: int) -> int:
        """Value bytes of key ``index``."""
        return int(self.value_sizes[index])

    def average_value_bytes(self) -> float:
        """Mean value size over the dataset."""
        return float(self.value_sizes.mean())

    def average_item_bytes(self) -> float:
        """Mean cached footprint: key + value + item overhead."""
        return KEY_LENGTH + ITEM_OVERHEAD + self.average_value_bytes()

    def average_chunk_bytes(
        self, min_chunk: int = 96, growth_factor: float = 1.25
    ) -> float:
        """Mean *chunk-rounded* footprint under a slab geometry.

        Memcached bills every item the full chunk of its size class, so
        capacity planning with raw item bytes under-provisions badly
        (coarse growth factors waste ~2x).  This is the right
        ``bytes_per_item`` for the AutoScaler's memory-for-hit-rate
        conversion.
        """
        from repro.memcached.slab import size_class_table

        table = np.array(size_class_table(min_chunk, growth_factor))
        totals = self.value_sizes + (KEY_LENGTH + ITEM_OVERHEAD)
        indices = np.searchsorted(table, totals, side="left")
        indices = np.minimum(indices, len(table) - 1)
        return float(table[indices].mean())

    def total_bytes(self) -> int:
        """Key+value bytes across the dataset (the on-disk size)."""
        return int(self.value_sizes.sum()) + KEY_LENGTH * self.num_keys


def build_dataset(
    num_keys: int,
    sizes: GeneralizedParetoSizes | None = None,
    seed: int = 0,
    max_value_size: int | None = None,
) -> Dataset:
    """Generate a dataset with Generalized-Pareto value sizes.

    ``max_value_size`` optionally tightens the truncation (simulations
    with small nodes cap values so single items cannot dominate a node).
    """
    sampler = sizes or GeneralizedParetoSizes(
        seed=seed,
        max_size=max_value_size or 1_000_000,
    )
    keyspace = KeySpace(num_keys)
    value_sizes = sampler.sample(num_keys)
    if max_value_size is not None:
        value_sizes = np.minimum(value_sizes, max_value_size)
    records = {
        keyspace.key(i): (f"v{i}", int(value_sizes[i]))
        for i in range(num_keys)
    }
    return Dataset(keyspace, value_sizes, BackingStore(records))
