"""Bandwidth-limited transfer timing.

Timing model: a flow of ``B`` bytes over one connection takes
``setup + B / bandwidth`` seconds; when several flows traverse the same
node's NIC concurrently they share that NIC fairly, so a phase of flows
completes when the most loaded NIC finishes.  This matches how the paper's
Agents pipe tarballs between nodes in parallel during migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.errors import ConfigurationError

GBIT = 125_000_000
"""Bytes per second of one gigabit."""


@dataclass(frozen=True)
class Flow:
    """One point-to-point transfer of ``size_bytes`` from ``src`` to ``dst``."""

    src: str
    dst: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError("flow size must be non-negative")
        if self.src == self.dst:
            raise ConfigurationError("flow endpoints must differ")


class NetworkModel:
    """Cluster network with homogeneous per-node NIC bandwidth.

    Parameters
    ----------
    nic_bandwidth_bps:
        Bytes/second each node can send (and, independently, receive).
        The paper's OpenStack VMs are on a shared 1 Gbit fabric.
    connection_setup_s:
        Per-flow overhead (ssh handshake, tar spawn).
    """

    def __init__(
        self,
        nic_bandwidth_bps: float = 1.0 * GBIT,
        connection_setup_s: float = 0.5,
    ) -> None:
        if nic_bandwidth_bps <= 0:
            raise ConfigurationError("nic_bandwidth_bps must be positive")
        if connection_setup_s < 0:
            raise ConfigurationError("connection_setup_s must be >= 0")
        self.nic_bandwidth_bps = nic_bandwidth_bps
        self.connection_setup_s = connection_setup_s

    def flow_time(self, size_bytes: int) -> float:
        """Seconds for one flow with the NIC to itself."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        return self.connection_setup_s + size_bytes / self.nic_bandwidth_bps

    def phase_time(self, flows: Iterable[Flow]) -> float:
        """Completion time of a set of concurrent flows.

        Each NIC's finish time is the bytes it must move divided by its
        bandwidth; the phase ends when the busiest NIC drains.  Setup
        costs for flows sharing a source are paid sequentially per source
        (one ssh spawn at a time), concurrently across sources.
        """
        egress: dict[str, int] = {}
        ingress: dict[str, int] = {}
        setups: dict[str, int] = {}
        any_flow = False
        for flow in flows:
            any_flow = True
            egress[flow.src] = egress.get(flow.src, 0) + flow.size_bytes
            ingress[flow.dst] = ingress.get(flow.dst, 0) + flow.size_bytes
            setups[flow.src] = setups.get(flow.src, 0) + 1
        if not any_flow:
            return 0.0
        per_node_times = []
        for node, sent in egress.items():
            duration = (
                setups[node] * self.connection_setup_s
                + sent / self.nic_bandwidth_bps
            )
            per_node_times.append(duration)
        for node, received in ingress.items():
            per_node_times.append(received / self.nic_bandwidth_bps)
        return max(per_node_times)
