"""Bandwidth-limited transfer timing.

Timing model: a flow of ``B`` bytes over one connection takes
``setup + B / bandwidth`` seconds; when several flows traverse the same
node's NIC concurrently they share that NIC fairly, so a phase of flows
completes when the most loaded NIC finishes.  This matches how the paper's
Agents pipe tarballs between nodes in parallel during migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.errors import ConfigurationError, FaultError, FlowTimeoutError
from repro.obs.metrics import NULL_METRICS

GBIT = 125_000_000
"""Bytes per second of one gigabit."""

FLOW_SECONDS_BUCKETS = (0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)
"""Histogram edges for per-flow attempt durations."""


@dataclass(frozen=True)
class Flow:
    """One point-to-point transfer of ``size_bytes`` from ``src`` to ``dst``."""

    src: str
    dst: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError("flow size must be non-negative")
        if self.src == self.dst:
            raise ConfigurationError("flow endpoints must differ")


@dataclass(frozen=True)
class FlowResult:
    """Outcome of attempting one flow under the current fault state.

    ``duration_s`` is always the simulated time the attempt consumed:
    the transfer time on success, the setup cost of a connection that was
    refused, or the full timeout spent waiting on a flow that never
    finished.
    """

    ok: bool
    duration_s: float
    error: str | None = None  # None | "failed" | "timeout"


class NetworkModel:
    """Cluster network with homogeneous per-node NIC bandwidth.

    Parameters
    ----------
    nic_bandwidth_bps:
        Bytes/second each node can send (and, independently, receive).
        The paper's OpenStack VMs are on a shared 1 Gbit fabric.
    connection_setup_s:
        Per-flow overhead (ssh handshake, tar spawn).
    flow_timeout_s:
        Per-flow deadline: an attempt whose modeled duration would exceed
        this fails with a timeout after exactly ``flow_timeout_s`` of
        simulated waiting.  ``None`` (the default) disables timeouts.
    fault_hook:
        Optional callable ``(src, dst, now) -> "fail" | factor`` consulted
        per attempt -- typically
        :meth:`FaultInjector.flow_disposition
        <repro.faults.injector.FaultInjector.flow_disposition>`.
        ``"fail"`` refuses the connection; a numeric factor scales the
        flow's bandwidth (0 stalls it into a timeout).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  Each
        :meth:`attempt_flow` call updates ``flows_attempted_total``,
        ``flows_failed_total{error=...}``, and the
        ``flow_attempt_seconds`` histogram; counters are resolved once
        here so the per-attempt cost is a single ``inc``.
    """

    def __init__(
        self,
        nic_bandwidth_bps: float = 1.0 * GBIT,
        connection_setup_s: float = 0.5,
        flow_timeout_s: float | None = None,
        fault_hook: Callable[[str, str, float], object] | None = None,
        metrics=None,
    ) -> None:
        if nic_bandwidth_bps <= 0:
            raise ConfigurationError("nic_bandwidth_bps must be positive")
        if connection_setup_s < 0:
            raise ConfigurationError("connection_setup_s must be >= 0")
        if flow_timeout_s is not None and flow_timeout_s <= 0:
            raise ConfigurationError("flow_timeout_s must be positive")
        self.nic_bandwidth_bps = nic_bandwidth_bps
        self.connection_setup_s = connection_setup_s
        self.flow_timeout_s = flow_timeout_s
        self.fault_hook = fault_hook
        metrics = metrics or NULL_METRICS
        self._m_attempts = metrics.counter(
            "flows_attempted_total", "Point-to-point flow attempts"
        )
        self._m_failed = {
            "failed": metrics.counter(
                "flows_failed_total",
                "Flow attempts that did not complete",
                error="failed",
            ),
            "timeout": metrics.counter(
                "flows_failed_total", error="timeout"
            ),
        }
        self._m_seconds = metrics.histogram(
            "flow_attempt_seconds",
            "Simulated duration of each flow attempt",
            buckets=FLOW_SECONDS_BUCKETS,
        )

    def flow_time(self, size_bytes: int) -> float:
        """Seconds for one flow with the NIC to itself."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        return self.connection_setup_s + size_bytes / self.nic_bandwidth_bps

    def attempt_flow(self, flow: Flow, now: float = 0.0) -> FlowResult:
        """Try one flow under the current fault state (non-raising).

        The happy path returns ``FlowResult(ok=True)`` with the usual
        setup-plus-bandwidth duration.  An active ``fault_hook`` can
        refuse the connection (the attempt burns the setup cost) or
        throttle it; a throttled or stalled flow that cannot finish
        within :attr:`flow_timeout_s` burns the full timeout instead.
        """
        result = self._attempt(flow, now)
        self._m_attempts.inc()
        self._m_seconds.observe(result.duration_s)
        if not result.ok:
            self._m_failed[result.error or "failed"].inc()
        return result

    def _attempt(self, flow: Flow, now: float) -> FlowResult:
        disposition: object = 1.0
        if self.fault_hook is not None:
            disposition = self.fault_hook(flow.src, flow.dst, now)
        if disposition == "fail":
            return FlowResult(
                ok=False, duration_s=self.connection_setup_s, error="failed"
            )
        factor = float(disposition)  # type: ignore[arg-type]
        if factor <= 0.0:
            # A dead-stopped flow can only end by timing out; with no
            # timeout configured, charge the setup cost and fail.
            stalled = self.flow_timeout_s or self.connection_setup_s
            return FlowResult(ok=False, duration_s=stalled, error="timeout")
        duration = (
            self.connection_setup_s
            + flow.size_bytes / (self.nic_bandwidth_bps * factor)
        )
        if self.flow_timeout_s is not None and duration > self.flow_timeout_s:
            return FlowResult(
                ok=False, duration_s=self.flow_timeout_s, error="timeout"
            )
        return FlowResult(ok=True, duration_s=duration)

    def transfer(self, flow: Flow, now: float = 0.0) -> float:
        """Raising variant of :meth:`attempt_flow`.

        Returns the flow duration on success; raises
        :class:`~repro.errors.FlowTimeoutError` on timeout and
        :class:`~repro.errors.FaultError` on a refused connection.
        """
        result = self.attempt_flow(flow, now=now)
        if result.ok:
            return result.duration_s
        if result.error == "timeout":
            raise FlowTimeoutError(
                f"flow {flow.src} -> {flow.dst} ({flow.size_bytes} B) "
                f"timed out after {result.duration_s:.1f}s"
            )
        raise FaultError(
            f"flow {flow.src} -> {flow.dst} failed (connection refused)"
        )

    def phase_time(self, flows: Iterable[Flow]) -> float:
        """Completion time of a set of concurrent flows.

        Each NIC's finish time is the bytes it must move divided by its
        bandwidth; the phase ends when the busiest NIC drains.  Setup
        costs for flows sharing a source are paid sequentially per source
        (one ssh spawn at a time), concurrently across sources.
        """
        egress: dict[str, int] = {}
        ingress: dict[str, int] = {}
        setups: dict[str, int] = {}
        any_flow = False
        for flow in flows:
            any_flow = True
            egress[flow.src] = egress.get(flow.src, 0) + flow.size_bytes
            ingress[flow.dst] = ingress.get(flow.dst, 0) + flow.size_bytes
            setups[flow.src] = setups.get(flow.src, 0) + 1
        if not any_flow:
            return 0.0
        per_node_times = []
        for node, sent in egress.items():
            duration = (
                setups[node] * self.connection_setup_s
                + sent / self.nic_bandwidth_bps
            )
            per_node_times.append(duration)
        for node, received in ingress.items():
            per_node_times.append(received / self.nic_bandwidth_bps)
        return max(per_node_times)
