"""Network transfer model for migration timing.

ElMem's migration moves metadata and KV data between nodes over the
cluster network (tarball piped over ssh in the paper).  The model charges
per-flow bandwidth and per-connection setup cost, and lets concurrent
flows through one NIC share its bandwidth -- enough fidelity to reproduce
the ~2 minute migration overhead breakdown of Section V-B2.
"""

from repro.netsim.transfer import Flow, FlowResult, NetworkModel

__all__ = ["Flow", "FlowResult", "NetworkModel"]
