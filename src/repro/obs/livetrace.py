"""Cross-process trace propagation for the live tier.

The simulator tracer in :mod:`repro.obs.trace` records a single in-process
span tree against the simulated clock.  The live tier (``repro.net``,
``repro.proxy``) spans multiple OS processes connected by the memcached text
protocol, so it needs a different shape:

* a request entering :class:`~repro.proxy.server.ProxyServer` draws a
  ``trace_id`` (sampled, seeded, deterministic),
* the proxy's :class:`~repro.net.client.NodeClient` prepends an optional
  ``trace <trace_id> <span_id>\\r\\n`` framing line to the wire request,
* the backend's :class:`~repro.memcached.protocol.TextProtocolServer` parses
  the frame and records a server-side span parented on the client span,
* every process exports its spans as JSONL and ``repro obs`` stitches the
  files back into one tree per trace id.

Span timestamps use ``time.time()`` (unix wall clock) rather than
``perf_counter`` so spans recorded by different processes on the same host
are directly comparable.
"""

from __future__ import annotations

import json
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "CURRENT_CONTEXT",
    "NULL_LIVE_TRACER",
    "SPAN_ID_MAX",
    "TRACE_ID_MAX",
    "LiveSpan",
    "LiveTracer",
    "StitchedTrace",
    "TraceContext",
    "current_context",
    "parse_trace_args",
    "read_live_spans",
    "stitch_spans",
    "trace_to_span_tree",
    "write_live_jsonl",
]

#: Maximum accepted lengths for the hex ids in a ``trace`` wire frame.  Our
#: generator emits 16 hex chars; the caps leave headroom for W3C-style 128-bit
#: trace ids while still bounding hostile input.
TRACE_ID_MAX = 32
SPAN_ID_MAX = 16

_HEX_DIGITS = frozenset("0123456789abcdef")


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The (trace_id, span_id) pair carried across a process boundary."""

    trace_id: str
    span_id: str

    def wire_prefix(self) -> bytes:
        """Render the ``trace`` framing line prepended to a wire request."""
        return f"trace {self.trace_id} {self.span_id}\r\n".encode("ascii")


def _valid_hex(token: str, max_len: int) -> bool:
    return 0 < len(token) <= max_len and all(ch in _HEX_DIGITS for ch in token)


def parse_trace_args(args: Sequence[str]) -> TraceContext | None:
    """Validate the arguments of a ``trace`` wire frame.

    Returns ``None`` for anything malformed: wrong arity, non-hex digits,
    uppercase (the wire format is lowercase-only), or oversized fields.
    Rejection is deterministic -- no partial parses.
    """
    if len(args) != 2:
        return None
    trace_id, span_id = args
    if not _valid_hex(trace_id, TRACE_ID_MAX):
        return None
    if not _valid_hex(span_id, SPAN_ID_MAX):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


#: Ambient trace context for the current asyncio task.  ``ProxyServer`` sets
#: it around request dispatch; ``NodeClient`` reads it when writing to the
#: wire.  Context vars propagate through ``await`` within one task but not
#: across threads, so thread-bridged callers (live migration) pass contexts
#: explicitly instead.
CURRENT_CONTEXT: ContextVar[TraceContext | None] = ContextVar(
    "repro_live_trace_context", default=None
)


def current_context() -> TraceContext | None:
    """Return the ambient :class:`TraceContext`, if any."""
    return CURRENT_CONTEXT.get()


class LiveSpan:
    """A single span recorded by one process, stitched later by trace id."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "process",
        "attributes",
        "start_s",
        "end_s",
        "_tracer",
    )

    def __init__(
        self,
        *,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        process: str,
        tracer: "LiveTracer | None" = None,
        start_s: float | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.process = process
        self.attributes = attributes or {}
        self.start_s = time.time() if start_s is None else start_s
        self.end_s: float | None = None
        self._tracer = tracer

    @property
    def context(self) -> TraceContext:
        """The context a child process should be handed for this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def end(self, end_s: float | None = None) -> None:
        if self.end_s is not None:
            return
        self.end_s = time.time() if end_s is None else end_s
        if self._tracer is not None:
            self._tracer._record(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "live_span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "process": self.process,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LiveSpan":
        span = cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            name=str(data.get("name", "?")),
            process=str(data.get("process", "?")),
            start_s=float(data.get("start_s", 0.0)),
            attributes=dict(data.get("attributes") or {}),
        )
        span.end_s = data.get("end_s")
        if span.end_s is not None:
            span.end_s = float(span.end_s)
        return span


class LiveTracer:
    """Seeded, sampled recorder of :class:`LiveSpan` objects for one process.

    A single :class:`random.Random` drives both the sampling decision and id
    generation, so a fixed ``seed`` yields a fully deterministic trace
    stream for a deterministic workload.
    """

    __slots__ = ("process", "sample_rate", "spans", "enabled", "_rng")

    def __init__(
        self,
        process: str = "repro",
        *,
        sample_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.process = process
        self.sample_rate = max(0.0, min(1.0, sample_rate))
        self.spans: list[LiveSpan] = []
        self.enabled = True
        self._rng = Random(seed)

    def _record(self, span: LiveSpan) -> None:
        self.spans.append(span)

    def _new_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    def start_trace(self, name: str, **attributes: Any) -> LiveSpan | None:
        """Begin a new sampled trace; returns ``None`` when not sampled."""
        if self.sample_rate <= 0.0:
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        trace_id = self._new_id()
        return LiveSpan(
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=None,
            name=name,
            process=self.process,
            tracer=self,
            attributes=dict(attributes) if attributes else None,
        )

    def start_span(
        self,
        name: str,
        parent: TraceContext,
        *,
        start_s: float | None = None,
        **attributes: Any,
    ) -> LiveSpan:
        """Begin a child span of an already-sampled trace (always recorded)."""
        return LiveSpan(
            trace_id=parent.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id,
            name=name,
            process=self.process,
            tracer=self,
            start_s=start_s,
            attributes=dict(attributes) if attributes else None,
        )


class _NullLiveTracer:
    """Disabled tracer: never samples, records nothing."""

    __slots__ = ()
    enabled = False
    process = "null"
    sample_rate = 0.0
    spans: list[LiveSpan] = []

    def start_trace(self, name: str, **attributes: Any) -> LiveSpan | None:
        return None

    def start_span(
        self,
        name: str,
        parent: TraceContext,
        *,
        start_s: float | None = None,
        **attributes: Any,
    ) -> LiveSpan:
        # Reached only if a caller holds a foreign context while local
        # tracing is off; record nothing but keep the chain intact.
        return LiveSpan(
            trace_id=parent.trace_id,
            span_id=parent.span_id,
            parent_id=parent.span_id,
            name=name,
            process="null",
            tracer=None,
            start_s=start_s,
        )


NULL_LIVE_TRACER = _NullLiveTracer()


def write_live_jsonl(
    path: str | Path,
    tracer: "LiveTracer | _NullLiveTracer",
    *,
    metrics: Any = None,
    append: bool = False,
) -> int:
    """Export one process's spans (and optional metrics snapshot) as JSONL.

    Returns the number of span lines written.  ``metrics`` may be a
    ``MetricsRegistry``; its snapshot is embedded as ``live_metric`` lines so
    one file carries the whole process's observability output.
    """
    target = Path(path)
    lines: list[str] = []
    if not append:
        meta = {
            "type": "live_meta",
            "process": getattr(tracer, "process", "?"),
            "sample_rate": getattr(tracer, "sample_rate", 0.0),
        }
        lines.append(json.dumps(meta, sort_keys=True))
    spans = list(getattr(tracer, "spans", ()))
    for span in spans:
        lines.append(json.dumps(span.to_dict(), sort_keys=True))
    if metrics is not None and getattr(metrics, "enabled", False):
        for snap in metrics.snapshot():
            record = {"type": "live_metric", **snap}
            lines.append(json.dumps(record, sort_keys=True, default=repr))
    mode = "a" if append else "w"
    with target.open(mode, encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(spans)


def read_live_spans(paths: Iterable[str | Path]) -> list[LiveSpan]:
    """Read ``live_span`` lines from one or more JSONL files.

    Other line types (``live_meta``, ``live_metric``, simulator trace lines)
    are skipped, so mixed dumps stitch cleanly.
    """
    spans: list[LiveSpan] = []
    for path in paths:
        with Path(path).open("r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    data = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                if isinstance(data, dict) and data.get("type") == "live_span":
                    spans.append(LiveSpan.from_dict(data))
    return spans


@dataclass(slots=True)
class StitchedTrace:
    """All spans sharing one trace id, ordered by start time."""

    trace_id: str
    spans: list[LiveSpan] = field(default_factory=list)

    @property
    def processes(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.process, None)
        return list(seen)

    @property
    def start_s(self) -> float:
        return min(span.start_s for span in self.spans)

    @property
    def end_s(self) -> float:
        return max(span.end_s if span.end_s is not None else span.start_s for span in self.spans)

    def roots(self) -> list[LiveSpan]:
        ids = {span.span_id for span in self.spans}
        return [s for s in self.spans if s.parent_id is None or s.parent_id not in ids]

    def children(self, span: LiveSpan) -> list[LiveSpan]:
        return [s for s in self.spans if s.parent_id == span.span_id]


def trace_to_span_tree(trace: StitchedTrace) -> Any:
    """Convert a stitched trace into a sim :class:`~repro.obs.trace.Span`
    tree (wall clock rebased to the trace start) so
    :func:`repro.obs.timeline.render_timeline` can draw it."""
    from repro.obs.trace import Span

    t0 = trace.start_s

    def convert(span: LiveSpan) -> dict[str, Any]:
        end_s = span.end_s if span.end_s is not None else span.start_s
        return {
            "name": f"{span.process}:{span.name}",
            "start_wall_s": span.start_s - t0,
            "end_wall_s": end_s - t0,
            "attributes": dict(span.attributes),
            "events": [],
            "children": [convert(c) for c in trace.children(span)],
        }

    roots = trace.roots()
    if len(roots) == 1:
        return Span.from_dict(convert(roots[0]))
    synthetic = {
        "name": f"trace {trace.trace_id}",
        "start_wall_s": 0.0,
        "end_wall_s": trace.end_s - t0,
        "attributes": {"spans": len(trace.spans)},
        "events": [],
        "children": [convert(root) for root in roots],
    }
    return Span.from_dict(synthetic)


def stitch_spans(spans: Iterable[LiveSpan]) -> list[StitchedTrace]:
    """Group spans by trace id into :class:`StitchedTrace` objects."""
    by_trace: dict[str, StitchedTrace] = {}
    for span in spans:
        trace = by_trace.setdefault(span.trace_id, StitchedTrace(trace_id=span.trace_id))
        trace.spans.append(span)
    traces = list(by_trace.values())
    for trace in traces:
        trace.spans.sort(key=lambda s: (s.start_s, s.span_id))
    traces.sort(key=lambda t: t.start_s)
    return traces
