"""ASCII rendering of span trees: timelines and summary tables.

Built on the same Unicode block vocabulary as
:mod:`repro.analysis.asciiplot` -- each span becomes one row whose bar is
positioned proportionally inside the root span's window, with ``·``
marks where span events (retries, faults) landed.  The sim clock is the
default x-axis because that is the timeline the paper's figures use; the
wall clock is available for profiling the reproduction itself.
"""

from __future__ import annotations

from repro.analysis.asciiplot import BLOCKS

from repro.obs.trace import Span, SpanEvent

HALF_BLOCK = BLOCKS[4]  # "▄": a span too short for a full cell


def _window(span: Span, clock: str) -> tuple[float, float] | None:
    """The span's (start, end) on the chosen clock, if recorded."""
    if clock == "sim":
        if span.start_sim_s is None:
            return None
        end = (
            span.end_sim_s
            if span.end_sim_s is not None
            else span.start_sim_s
        )
        return span.start_sim_s, end
    end = (
        span.end_wall_s
        if span.end_wall_s is not None
        else span.start_wall_s
    )
    return span.start_wall_s, end


def _event_time(event: SpanEvent, clock: str) -> float | None:
    return event.sim_s if clock == "sim" else event.wall_s


def _label(span: Span, depth: int) -> str:
    label = "  " * depth + span.name
    for key in ("src", "dst"):
        if key in span.attributes:
            label = (
                "  " * depth
                + f"{span.name} {span.attributes.get('src', '?')}"
                + f"->{span.attributes.get('dst', '?')}"
            )
            break
    return label


def render_timeline(
    root: Span, width: int = 60, clock: str = "sim"
) -> str:
    """Render one span tree as an indented bar timeline.

    Each row shows the span's position within the root's window and its
    duration on the chosen clock (``"sim"`` or ``"wall"``); span events
    are overlaid as ``·`` marks.
    """
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
    rows: list[tuple[int, Span]] = []

    def collect(span: Span, depth: int) -> None:
        rows.append((depth, span))
        for child in span.children:
            collect(child, depth + 1)

    collect(root, 0)

    windows = [_window(span, clock) for _, span in rows]
    bounded = [w for w in windows if w is not None]
    if not bounded:
        return f"{root.name}: no {clock}-clock data recorded"
    t0 = min(w[0] for w in bounded)
    t1 = max(w[1] for w in bounded)
    span_total = (t1 - t0) or 1.0
    label_width = max(len(_label(span, depth)) for depth, span in rows)
    unit = "s" if clock == "sim" else "s wall"

    lines = [
        f"{root.name} timeline ({clock} clock, "
        f"{t0:.1f}{unit} .. {t1:.1f}{unit})"
    ]
    for (depth, span), window in zip(rows, windows):
        label = _label(span, depth).ljust(label_width)
        if window is None:
            lines.append(f"{label} |{' ' * width}| (no {clock} data)")
            continue
        start, end = window
        lo = int((start - t0) / span_total * width)
        hi = int((end - t0) / span_total * width)
        lo = max(0, min(lo, width - 1))
        hi = max(lo, min(hi, width))
        bar = [" "] * width
        if hi == lo:
            bar[lo] = HALF_BLOCK
        else:
            for i in range(lo, hi):
                bar[i] = "█"
        for event in span.events:
            when = _event_time(event, clock)
            if when is None:
                continue
            index = int((when - t0) / span_total * width)
            if 0 <= index < width:
                bar[index] = "·"
        duration = end - start
        suffix = f"{duration:9.2f}{unit}"
        extras = []
        if span.events:
            extras.append(f"{len(span.events)} events")
        outcome = span.attributes.get("outcome")
        if outcome:
            extras.append(str(outcome))
        note = f"  ({', '.join(extras)})" if extras else ""
        lines.append(f"{label} |{''.join(bar)}| {suffix}{note}")
    return "\n".join(lines)


def summary_table(spans: list[Span], clock: str = "sim") -> str:
    """Aggregate a list of span trees into a per-name duration table."""
    totals: dict[str, list[float]] = {}
    event_counts: dict[str, int] = {}
    for root in spans:
        for span in root.walk():
            window = _window(span, clock)
            if window is not None:
                totals.setdefault(span.name, []).append(
                    window[1] - window[0]
                )
            event_counts[span.name] = (
                event_counts.get(span.name, 0) + len(span.events)
            )
    if not totals:
        return "(no spans)"
    header = (
        f"{'span':20s} {'count':>5s} {'total_s':>10s} "
        f"{'mean_s':>10s} {'events':>6s}"
    )
    lines = [header]
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        durations = totals[name]
        lines.append(
            f"{name:20s} {len(durations):5d} {sum(durations):10.2f} "
            f"{sum(durations) / len(durations):10.2f} "
            f"{event_counts.get(name, 0):6d}"
        )
    return "\n".join(lines)
