"""Fleet metrics scraping over the ``stats obs`` wire command.

Every live process (node server or proxy) renders its metrics registry
as Prometheus text behind ``stats obs``; the payload rides in standard
``VALUE`` framing so ordinary memcached clients can fetch it.  This
module provides the other side:

- :func:`scrape_text` -- one blocking-socket scrape of one endpoint;
- :func:`parse_prometheus` -- text exposition back into samples;
- :class:`MetricsScraper` -- polls a fleet and aggregates same-named
  samples across processes (counters/buckets sum, gauges keep the last
  value per endpoint).

The scraper is synchronous on purpose: it is the read side used by the
``repro top`` dashboard and by CI smoke jobs, which live outside the
cluster's event loops.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import TransportError
from repro.obs.metrics import bucket_quantile

CRLF = b"\r\n"

__all__ = [
    "MetricsScraper",
    "Sample",
    "histogram_quantile",
    "parse_prometheus",
    "scrape_text",
]


def scrape_text(
    host: str, port: int, timeout_s: float = 5.0
) -> str:
    """Fetch one endpoint's ``stats obs`` Prometheus page.

    Raises :class:`~repro.errors.TransportError` when the endpoint is
    unreachable or answers with something other than the expected
    ``VALUE obs 0 <len>`` framing.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            sock.sendall(b"stats obs" + CRLF)
            buffer = b""
            # Header line first: VALUE obs 0 <len>
            while CRLF not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    raise TransportError(
                        f"{host}:{port} closed during stats obs header"
                    )
                buffer += chunk
            header, _, buffer = buffer.partition(CRLF)
            parts = header.split()
            if len(parts) != 4 or parts[0] != b"VALUE" or parts[1] != b"obs":
                raise TransportError(
                    f"{host}:{port} unexpected stats obs header: {header!r}"
                )
            size = int(parts[3])
            # Payload + CRLF + END + CRLF.
            needed = size + 2 + 3 + 2
            while len(buffer) < needed:
                chunk = sock.recv(65536)
                if not chunk:
                    raise TransportError(
                        f"{host}:{port} closed during stats obs payload"
                    )
                buffer += chunk
            return buffer[:size].decode("utf-8")
    except (OSError, ValueError) as exc:
        raise TransportError(
            f"stats obs scrape of {host}:{port} failed: {exc!r}"
        ) from exc


@dataclass(frozen=True)
class Sample:
    """One parsed Prometheus sample line."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


def _parse_labels(raw: str) -> tuple[tuple[str, str], ...]:
    """Parse ``a="b",c="d"`` honouring ``\\\\``/``\\"``/``\\n`` escapes."""
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(raw):
        eq = raw.index("=", i)
        name = raw[i:eq].strip().lstrip(",").strip()
        if raw[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {raw!r}")
        value_chars: list[str] = []
        j = eq + 2
        while j < len(raw):
            ch = raw[j]
            if ch == "\\" and j + 1 < len(raw):
                escaped = raw[j + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        labels.append((name, "".join(value_chars)))
        i = j + 1
    return tuple(sorted(labels))


def parse_prometheus(text: str) -> list[Sample]:
    """Parse text exposition format back into :class:`Sample` rows.

    ``# HELP`` / ``# TYPE`` comments are skipped; histogram ``_bucket``/
    ``_sum``/``_count`` series come back as ordinary samples under their
    suffixed names.
    """
    samples: list[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            labels_raw, _, value_raw = rest.rpartition("}")
            labels = _parse_labels(labels_raw)
        else:
            name, _, value_raw = line.partition(" ")
            labels = ()
        value_raw = value_raw.strip()
        if value_raw == "+Inf":
            value = float("inf")
        elif value_raw == "-Inf":
            value = float("-inf")
        else:
            value = float(value_raw)
        samples.append(Sample(name=name.strip(), labels=labels, value=value))
    return samples


def histogram_quantile(
    samples: Iterable[Sample], name: str, q: float, **match: str
) -> float | None:
    """Quantile estimate from ``<name>_bucket`` samples.

    ``match`` narrows by label equality (e.g. ``node="n0"``); buckets
    sharing the remaining labels are summed first, mirroring a
    ``histogram_quantile(sum by (le) (...))`` PromQL query.
    """
    buckets: dict[float, float] = {}
    for sample in samples:
        if sample.name != f"{name}_bucket":
            continue
        labels = sample.labels_dict
        if any(labels.get(k) != v for k, v in match.items()):
            continue
        le_raw = labels.get("le")
        if le_raw is None:
            continue
        le = float("inf") if le_raw == "+Inf" else float(le_raw)
        buckets[le] = buckets.get(le, 0.0) + sample.value
    if not buckets:
        return None
    ordered = sorted(buckets)
    bounds = tuple(b for b in ordered if b != float("inf"))
    if not bounds:
        return None
    # Cumulative bucket values back to per-bucket counts.
    cumulative = [buckets[le] for le in ordered]
    counts: list[int] = []
    previous = 0.0
    for value in cumulative:
        counts.append(int(round(max(0.0, value - previous))))
        previous = value
    if len(counts) == len(bounds):
        counts.append(0)
    total = sum(counts)
    return bucket_quantile(bounds, counts, total, q)


@dataclass
class MetricsScraper:
    """Polls a fleet of ``stats obs`` endpoints and aggregates samples.

    Parameters
    ----------
    endpoints:
        ``{label: (host, port)}`` of every process to scrape.  Labels
        are free-form (node names, "proxy", ...).
    timeout_s:
        Per-endpoint socket budget; unreachable endpoints are recorded
        in :attr:`errors` instead of raising.
    """

    endpoints: Mapping[str, tuple[str, int]]
    timeout_s: float = 5.0
    errors: dict[str, str] = field(default_factory=dict)

    def scrape(self) -> dict[str, list[Sample]]:
        """One poll of every endpoint -> ``{label: samples}``.

        Endpoints that fail to answer are skipped and noted in
        :attr:`errors` (cleared at the start of each poll).
        """
        self.errors = {}
        results: dict[str, list[Sample]] = {}
        for label, (host, port) in self.endpoints.items():
            try:
                results[label] = parse_prometheus(
                    scrape_text(host, port, self.timeout_s)
                )
            except TransportError as exc:
                self.errors[label] = str(exc)
        return results

    def aggregate(
        self, scraped: Mapping[str, list[Sample]] | None = None
    ) -> list[Sample]:
        """Sum same ``(name, labels)`` samples across endpoints.

        Summing is correct for counters and histogram buckets, which is
        what fleet dashboards read; per-endpoint gauges stay
        distinguishable through their own labels (every sample our
        components register carries a ``node``/``backend`` label).
        """
        if scraped is None:
            scraped = self.scrape()
        merged: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        for samples in scraped.values():
            for sample in samples:
                key = (sample.name, sample.labels)
                merged[key] = merged.get(key, 0.0) + sample.value
        return [
            Sample(name=name, labels=labels, value=value)
            for (name, labels), value in sorted(merged.items())
        ]
