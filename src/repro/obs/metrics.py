"""Named counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out metric instances keyed by
``(name, labels)``; instrumented code resolves its metrics once (at
construction time) and then pays a single ``inc``/``set``/``observe``
call on the hot path.  With telemetry disabled the registry is the
:data:`NULL_METRICS` singleton whose metrics are shared no-op objects --
``benchmarks/bench_obs_overhead.py`` verifies the disabled-mode cost is
negligible next to a real cache operation.

Metric naming follows Prometheus conventions (``*_total`` counters,
``*_seconds`` histograms); :func:`repro.obs.export.to_prometheus`
renders the registry in text exposition format.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ConfigurationError

LabelKey = tuple[tuple[str, str], ...]

DEFAULT_SECONDS_BUCKETS = (
    0.005,
    0.025,
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)
"""Default histogram bounds, sized for migration-phase durations."""

LATENCY_SECONDS_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)
"""Fine-grained bounds for per-hop request latencies (100us .. 2.5s)."""


def bucket_quantile(
    bounds: tuple[float, ...],
    counts: list[int],
    count: int,
    q: float,
) -> float | None:
    """Linear-interpolated quantile from ``le``-bucket counts.

    ``counts`` has ``len(bounds) + 1`` entries (last = +Inf overflow).
    Returns ``None`` when no observations were recorded.  Observations in
    the overflow bucket clamp to the highest finite bound -- the histogram
    cannot know how far past it they landed.  Shared by live histograms
    and by :mod:`repro.obs.scrape`, which rebuilds bucket counts from
    Prometheus text.
    """
    if count <= 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("quantile must be within [0, 1]")
    rank = q * count
    running = 0
    for i, bucket_count in enumerate(counts):
        if bucket_count <= 0:
            continue
        previous = running
        running += bucket_count
        if running >= rank:
            if i >= len(bounds):
                return bounds[-1]
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = (rank - previous) / bucket_count
            return lower + (upper - lower) * fraction
    return bounds[-1]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"
    enabled = True

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """Value that can go up and down (backlogs, node counts)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"
    enabled = True

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the current value by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``bounds`` are upper bucket edges; an observation lands in the first
    bucket whose bound is ``>= value`` (so a value exactly on an edge
    counts toward that edge's bucket), and values above every bound land
    in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    kind = "histogram"
    enabled = True

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        labels: LabelKey = (),
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                "histogram bounds must be non-empty and ascending"
            )
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs including ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate (``None`` when empty)."""
        return bucket_quantile(self.bounds, self.counts, self.count, q)


class _NullMetric:
    """Shared sink for every metric call when telemetry is disabled."""

    __slots__ = ()

    kind = "null"
    enabled = False
    name = ""
    labels: LabelKey = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> list:
        return []

    def quantile(self, q: float) -> None:
        return None


NULL_METRIC = _NullMetric()
"""Shared no-op counter/gauge/histogram."""


class MetricsRegistry:
    """Hands out and remembers metric instances keyed by name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def _get(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: dict[str, Any],
        factory: Callable[[LabelKey], Any],
    ) -> Any:
        registered = self._kinds.get(name)
        if registered is not None and registered != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {registered}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(key[1])
            self._metrics[key] = metric
            self._kinds[name] = kind
            if help_text:
                self._help[name] = help_text
        return metric

    def counter(
        self, name: str, help: str = "", **labels: Any
    ) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        return self._get(
            "counter", name, help, labels, lambda lk: Counter(name, lk)
        )

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """Get-or-create the gauge ``name`` with ``labels``."""
        return self._get(
            "gauge", name, help, labels, lambda lk: Gauge(name, lk)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``."""
        return self._get(
            "histogram",
            name,
            help,
            labels,
            lambda lk: Histogram(name, buckets, lk),
        )

    def help_for(self, name: str) -> str:
        """Registered help text for ``name`` ('' when none)."""
        return self._help.get(name, "")

    def kind_of(self, name: str) -> str | None:
        """Metric type registered under ``name``."""
        return self._kinds.get(name)

    def collect(self) -> Iterator[Any]:
        """All metric instances, grouped by name, labels sorted."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-serialisable samples of every registered metric."""
        samples: list[dict[str, Any]] = []
        for metric in self.collect():
            sample: dict[str, Any] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if metric.kind == "histogram":
                sample["sum"] = metric.sum
                sample["count"] = metric.count
                sample["buckets"] = [
                    [le, count] for le, count in metric.cumulative()[:-1]
                ]
            else:
                sample["value"] = metric.value
            samples.append(sample)
        return samples


class _NullRegistry:
    """Registry stand-in whose metrics all no-op."""

    __slots__ = ()

    enabled = False

    def counter(
        self, name: str, help: str = "", **labels: Any
    ) -> _NullMetric:
        return NULL_METRIC

    def gauge(
        self, name: str, help: str = "", **labels: Any
    ) -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = (),
        **labels: Any,
    ) -> _NullMetric:
        return NULL_METRIC

    def help_for(self, name: str) -> str:
        return ""

    def kind_of(self, name: str) -> None:
        return None

    def collect(self) -> Iterator[Any]:
        return iter(())

    def snapshot(self) -> list:
        return []


NULL_METRICS = _NullRegistry()
"""Shared no-op registry; the default wired into every component."""
