"""Telemetry exporters: JSONL structured events and Prometheus text.

One JSONL file captures a whole run: a ``meta`` line, one ``span`` line
per root span tree (children embedded), one ``event`` line per run-level
event, and one ``metric`` line per registered metric sample.  The format
round-trips through :func:`read_jsonl`, which is what the ``repro obs``
CLI subcommand renders.

:func:`to_prometheus` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the text exposition format (``# HELP`` / ``# TYPE`` / samples), with
the spec's escaping rules for help text and label values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, SpanEvent, Tracer

FORMAT_VERSION = 1


@dataclass
class ObsDump:
    """Parsed contents of one telemetry JSONL file."""

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    events: list[SpanEvent] = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)


def write_jsonl(
    path: str | Path,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write one run's telemetry as JSON lines; returns the path."""
    path = Path(path)
    lines: list[str] = [
        json.dumps(
            {"type": "meta", "version": FORMAT_VERSION, **(meta or {})}
        )
    ]
    if tracer is not None:
        for event in tracer.events:
            lines.append(
                json.dumps({"type": "event", **event.to_dict()})
            )
        for span in tracer.roots:
            lines.append(
                json.dumps({"type": "span", "tree": span.to_dict()})
            )
    if metrics is not None:
        for sample in metrics.snapshot():
            lines.append(json.dumps({"type": "metric", **sample}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | Path) -> ObsDump:
    """Parse a file written by :func:`write_jsonl`."""
    dump = ObsDump()
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                dump.meta = {
                    k: v for k, v in record.items() if k != "type"
                }
            elif kind == "span":
                dump.spans.append(Span.from_dict(record["tree"]))
            elif kind == "event":
                dump.events.append(SpanEvent.from_dict(record))
            elif kind == "metric":
                dump.metrics.append(
                    {k: v for k, v in record.items() if k != "type"}
                )
    return dump


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(metrics: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen: set[str] = set()
    for metric in metrics.collect():
        if metric.name not in seen:
            seen.add(metric.name)
            help_text = metrics.help_for(metric.name)
            if help_text:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(help_text)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for le, count in metric.cumulative():
                labels = _format_labels(
                    metric.labels, f'le="{_format_value(le)}"'
                )
                lines.append(f"{metric.name}_bucket{labels} {count}")
            plain = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}_sum{plain} {_format_value(metric.sum)}"
            )
            lines.append(f"{metric.name}_count{plain} {metric.count}")
        else:
            labels = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
