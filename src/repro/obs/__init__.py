"""Observability for the ElMem reproduction.

The package bundles three layers:

- :mod:`repro.obs.trace` -- nested spans with wall- and sim-clock
  durations, recording each migration as a tree;
- :mod:`repro.obs.metrics` -- named counters/gauges/histograms with a
  no-op disabled mode;
- :mod:`repro.obs.export` / :mod:`repro.obs.timeline` -- JSONL and
  Prometheus exporters plus an ASCII span-timeline renderer (the
  ``repro obs`` CLI subcommand).

Components take a :class:`Telemetry` handle (tracer + registry pair).
The default is :data:`NULL_TELEMETRY`, whose members absorb every call,
so instrumentation costs almost nothing unless a run opts in via
:func:`create_telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    NULL_METRICS,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanEvent,
    Tracer,
)


@dataclass(frozen=True)
class Telemetry:
    """A tracer + metrics registry pair threaded through the stack."""

    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS

    @property
    def enabled(self) -> bool:
        """True when either layer actually records."""
        return bool(self.tracer.enabled or self.metrics.enabled)


NULL_TELEMETRY = Telemetry()
"""Disabled telemetry: every recording call is a no-op."""


def create_telemetry() -> Telemetry:
    """A fresh enabled tracer + registry for one run."""
    return Telemetry(tracer=Tracer(), metrics=MetricsRegistry())


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "Telemetry",
    "Tracer",
    "create_telemetry",
]
