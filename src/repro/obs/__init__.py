"""Observability for the ElMem reproduction.

The package bundles four layers:

- :mod:`repro.obs.trace` -- nested spans with wall- and sim-clock
  durations, recording each migration as a tree;
- :mod:`repro.obs.livetrace` -- sampled cross-process spans propagated
  over the wire (``trace <trace_id> <span_id>`` framing) and stitched
  back together by trace id;
- :mod:`repro.obs.metrics` -- named counters/gauges/histograms with a
  no-op disabled mode and bucket-interpolated quantiles;
- :mod:`repro.obs.export` / :mod:`repro.obs.timeline` /
  :mod:`repro.obs.scrape` -- JSONL and Prometheus exporters, an ASCII
  span-timeline renderer (the ``repro obs`` CLI subcommand), and the
  ``stats obs`` fleet scraper behind ``repro top``.

Components take a :class:`Telemetry` handle (tracer + registry + live
tracer triple).  The default is :data:`NULL_TELEMETRY`, whose members
absorb every call, so instrumentation costs almost nothing unless a run
opts in via :func:`create_telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.livetrace import (
    CURRENT_CONTEXT,
    LiveSpan,
    LiveTracer,
    NULL_LIVE_TRACER,
    TraceContext,
    current_context,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_SECONDS_BUCKETS,
    MetricsRegistry,
    NULL_METRIC,
    NULL_METRICS,
    bucket_quantile,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanEvent,
    Tracer,
)


@dataclass(frozen=True)
class Telemetry:
    """A tracer + metrics registry + live tracer threaded through the stack."""

    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS
    live: object = NULL_LIVE_TRACER

    @property
    def enabled(self) -> bool:
        """True when any layer actually records."""
        return bool(
            self.tracer.enabled or self.metrics.enabled or self.live.enabled
        )


NULL_TELEMETRY = Telemetry()
"""Disabled telemetry: every recording call is a no-op."""


def create_telemetry(
    process: str = "repro",
    *,
    live_trace: bool = False,
    trace_sample: float = 1.0,
    trace_seed: int = 0,
) -> Telemetry:
    """A fresh enabled tracer + registry for one run.

    ``live_trace=True`` additionally attaches a :class:`LiveTracer` for
    cross-process wire tracing, sampling at ``trace_sample`` with a
    deterministic ``trace_seed``.
    """
    live: object = NULL_LIVE_TRACER
    if live_trace:
        live = LiveTracer(process, sample_rate=trace_sample, seed=trace_seed)
    return Telemetry(tracer=Tracer(), metrics=MetricsRegistry(), live=live)


__all__ = [
    "CURRENT_CONTEXT",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_SECONDS_BUCKETS",
    "LiveSpan",
    "LiveTracer",
    "MetricsRegistry",
    "NULL_LIVE_TRACER",
    "NULL_METRIC",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "bucket_quantile",
    "create_telemetry",
    "current_context",
]
