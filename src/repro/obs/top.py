"""The ``repro top`` terminal dashboard for a live proxy fleet.

Polls the proxy's ``stats obs`` Prometheus page (which, under
:class:`~repro.proxy.server.ProxyHarness`, also carries the in-process
backends' samples) plus each backend's plain ``stats`` counters, and
renders a memcached-``top``-style panel:

- fleet ops/s and hit rate with sparkline history,
- per-backend round-trip p50/p95/p99 from the proxy's client histograms,
- breaker states, replica counts, degradation counters.

Rendering is a pure function of two consecutive samples, so tests drive
it with canned scrapes; the CLI loop just polls and reprints.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.asciiplot import sparkline
from repro.errors import TransportError
from repro.obs.scrape import (
    Sample,
    histogram_quantile,
    parse_prometheus,
    scrape_text,
)
from repro.proxy.breaker import STATE_CODES

CRLF = b"\r\n"

_STATE_NAMES = {code: name for name, code in STATE_CODES.items()}

__all__ = ["FleetSample", "TopDashboard", "scrape_stats"]


def scrape_stats(
    host: str, port: int, timeout_s: float = 5.0
) -> dict[str, int]:
    """One blocking ``stats`` scrape -> integer counters.

    Used for per-backend hit rates (``get_hits``/``get_misses``) and for
    the proxy's own ``stats`` snapshot (breaker states, hot keys).
    """
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            sock.sendall(b"stats" + CRLF)
            buffer = b""
            while b"END" + CRLF not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    raise TransportError(
                        f"{host}:{port} closed during stats"
                    )
                buffer += chunk
    except OSError as exc:
        raise TransportError(
            f"stats scrape of {host}:{port} failed: {exc!r}"
        ) from exc
    stats: dict[str, int] = {}
    for line in buffer.decode("utf-8", "replace").splitlines():
        parts = line.split()
        if len(parts) == 3 and parts[0] == "STAT":
            try:
                stats[parts[1]] = int(parts[2])
            except ValueError:
                continue
    return stats


def _counter_total(samples: Iterable[Sample], name: str, **match: str) -> float:
    total = 0.0
    for sample in samples:
        if sample.name != name:
            continue
        labels = sample.labels_dict
        if any(labels.get(k) != v for k, v in match.items()):
            continue
        total += sample.value
    return total


@dataclass
class FleetSample:
    """One poll of the fleet: proxy prom samples + stats snapshots."""

    at_s: float
    prom: list[Sample] = field(default_factory=list)
    proxy_stats: dict[str, int] = field(default_factory=dict)
    node_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)


class TopDashboard:
    """Poll/render loop state for ``repro top``.

    Parameters
    ----------
    proxy:
        The proxy's ``(host, port)``; its ``stats obs`` page is the
        primary metrics source.
    nodes:
        Optional ``{name: (host, port)}`` of backends to scrape plain
        ``stats`` from directly (per-node hit rates).  ``repro serve``
        prints these endpoints on boot.
    history:
        Sparkline window length (polls retained).
    """

    def __init__(
        self,
        proxy: tuple[str, int],
        nodes: Mapping[str, tuple[str, int]] | None = None,
        timeout_s: float = 5.0,
        history: int = 60,
    ) -> None:
        self.proxy = proxy
        self.nodes = dict(nodes or {})
        self.timeout_s = timeout_s
        self.history = max(2, history)
        self.ops_history: list[float] = []
        self.p99_history: list[float] = []
        self._previous: FleetSample | None = None

    # -- polling -------------------------------------------------------

    def sample(self, at_s: float | None = None) -> FleetSample:
        """Scrape the fleet once and fold the result into history."""
        result = FleetSample(
            at_s=time.monotonic() if at_s is None else at_s
        )
        host, port = self.proxy
        try:
            result.prom = parse_prometheus(
                scrape_text(host, port, self.timeout_s)
            )
        except TransportError as exc:
            result.errors["proxy obs"] = str(exc)
        try:
            result.proxy_stats = scrape_stats(host, port, self.timeout_s)
        except TransportError as exc:
            result.errors["proxy stats"] = str(exc)
        for name, (node_host, node_port) in self.nodes.items():
            try:
                result.node_stats[name] = scrape_stats(
                    node_host, node_port, self.timeout_s
                )
            except TransportError as exc:
                result.errors[f"node {name}"] = str(exc)
        self.ingest(result)
        return result

    def ingest(self, current: FleetSample) -> None:
        """Fold one poll (live or canned) into sparkline history."""
        previous = self._previous
        self._previous = current
        if previous is not None:
            elapsed = max(1e-9, current.at_s - previous.at_s)
            delta = _counter_total(
                current.prom, "proxy_requests_total"
            ) - _counter_total(previous.prom, "proxy_requests_total")
            self.ops_history.append(max(0.0, delta / elapsed))
        p99 = histogram_quantile(current.prom, "proxy_route_seconds", 0.99)
        if p99 is not None:
            self.p99_history.append(p99 * 1000.0)
        del self.ops_history[: -self.history]
        del self.p99_history[: -self.history]

    # -- rendering -----------------------------------------------------

    def _backend_names(self, current: FleetSample) -> list[str]:
        names = set(self.nodes)
        for sample in current.prom:
            labels = sample.labels_dict
            for key in ("node", "backend"):
                value = labels.get(key)
                if value:
                    names.add(value)
        names.discard("proxy")
        return sorted(names)

    def render(self, current: FleetSample, width: int = 78) -> str:
        """Render one poll as a full dashboard frame."""
        lines: list[str] = []
        ops = self.ops_history[-1] if self.ops_history else 0.0
        stats = current.proxy_stats
        gets = stats.get("proxy_gets", 0)
        degraded = stats.get("degraded_gets", 0)
        lines.append(
            f"repro top · proxy {self.proxy[0]}:{self.proxy[1]} · "
            f"{ops:8.1f} ops/s · backends "
            f"{stats.get('active_backends', 0)} · hot keys "
            f"{stats.get('hot_keys', 0)}"
        )
        if self.ops_history:
            lines.append(
                " ops/s " + sparkline(self.ops_history, width=width - 8)
            )
        if self.p99_history:
            lines.append(
                " p99ms " + sparkline(self.p99_history, width=width - 8)
            )
        route_p99 = histogram_quantile(
            current.prom, "proxy_route_seconds", 0.99
        )
        lines.append(
            f" route p99 {_fmt_ms(route_p99)} · gets {gets} · "
            f"degraded {degraded} · fanout {stats.get('fanout_reads', 0)} · "
            f"coalesced {stats.get('coalesce_followers', 0)}"
        )
        lines.append("")
        lines.append(
            f" {'backend':<10} {'state':<9} {'rt p50':>9} {'rt p95':>9} "
            f"{'rt p99':>9} {'reqs':>8} {'hit%':>6} {'items':>8}"
        )
        for name in self._backend_names(current):
            state_code = stats.get(f"breaker_state_{name}")
            if state_code is None:
                state_code = int(
                    _counter_total(
                        current.prom, "proxy_breaker_state", backend=name
                    )
                )
            state = _STATE_NAMES.get(state_code, "?")
            p50 = histogram_quantile(
                current.prom, "net_client_roundtrip_seconds", 0.50, node=name
            )
            p95 = histogram_quantile(
                current.prom, "net_client_roundtrip_seconds", 0.95, node=name
            )
            p99 = histogram_quantile(
                current.prom, "net_client_roundtrip_seconds", 0.99, node=name
            )
            requests = int(
                _counter_total(
                    current.prom, "net_client_requests_total", node=name
                )
            )
            node_stats = current.node_stats.get(name, {})
            hits = node_stats.get("get_hits", 0)
            misses = node_stats.get("get_misses", 0)
            looked = hits + misses
            hit_pct = f"{100.0 * hits / looked:5.1f}" if looked else "    -"
            items = node_stats.get("curr_items", 0)
            lines.append(
                f" {name:<10} {state:<9} {_fmt_ms(p50):>9} "
                f"{_fmt_ms(p95):>9} {_fmt_ms(p99):>9} {requests:>8} "
                f"{hit_pct:>6} {items:>8}"
            )
        for source, error in sorted(current.errors.items()):
            lines.append(f" ! {source}: {error}")
        return "\n".join(lines)


def _fmt_ms(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000.0:.2f}ms"
