"""Nested span tracing with wall-clock *and* sim-clock durations.

ElMem's interesting behaviour lives inside a migration: where the
dump -> fusecache -> import -> switch pipeline spent its time, which
(src, dst) pairs retried, and which faults landed mid-flight.  A
:class:`Tracer` records each migration as a tree of :class:`Span` s
carrying two clocks:

- **wall** time (``time.perf_counter`` relative to the tracer's epoch):
  how long the *simulator* actually computed, for profiling the
  reproduction itself;
- **sim** time (the experiment's modeled seconds): where the phase sits
  on the experiment timeline, which is what the paper's figures plot.

Spans hold attributes, point-in-time :class:`SpanEvent` s (retries,
faults, flow failures), and children.  When tracing is disabled the
module-level :data:`NULL_TRACER` / :data:`NULL_SPAN` singletons absorb
every call as a no-op, so instrumented code pays one attribute lookup
and an empty method call per span operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (retry, fault, failure)."""

    name: str
    wall_s: float
    sim_s: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            wall_s=data.get("wall_s", 0.0),
            sim_s=data.get("sim_s"),
            attributes=dict(data.get("attributes", {})),
        )


class Span:
    """One timed operation, possibly containing child spans."""

    __slots__ = (
        "name",
        "attributes",
        "events",
        "children",
        "start_wall_s",
        "end_wall_s",
        "start_sim_s",
        "end_sim_s",
        "_epoch",
    )

    enabled = True

    def __init__(
        self,
        name: str,
        epoch: float = 0.0,
        sim_s: float | None = None,
        **attributes: Any,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes)
        self.events: list[SpanEvent] = []
        self.children: list[Span] = []
        self._epoch = epoch
        self.start_wall_s = time.perf_counter() - epoch
        self.end_wall_s: float | None = None
        self.start_sim_s = sim_s
        self.end_sim_s: float | None = None

    # -- recording -------------------------------------------------------

    def child(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> "Span":
        """Open a child span; the caller must :meth:`end` it."""
        span = Span(name, epoch=self._epoch, sim_s=sim_s, **attributes)
        self.children.append(span)
        return span

    def event(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> SpanEvent:
        """Record a point-in-time event on this span."""
        record = SpanEvent(
            name=name,
            wall_s=time.perf_counter() - self._epoch,
            sim_s=sim_s,
            attributes=dict(attributes),
        )
        self.events.append(record)
        return record

    def set(self, **attributes: Any) -> None:
        """Merge attributes into the span."""
        self.attributes.update(attributes)

    def sim_window(self, start: float, end: float) -> None:
        """Pin the span to an explicit sim-clock interval.

        Planning computes modeled phase durations *after* doing the real
        work, so phase spans get their sim window assigned post hoc while
        their wall clock measured the actual computation.
        """
        self.start_sim_s = start
        self.end_sim_s = end

    def end(self, sim_s: float | None = None) -> None:
        """Close the span (idempotent for the wall clock)."""
        if self.end_wall_s is None:
            self.end_wall_s = time.perf_counter() - self._epoch
        if sim_s is not None:
            self.end_sim_s = sim_s

    # -- reading ---------------------------------------------------------

    @property
    def ended(self) -> bool:
        """True once :meth:`end` has been called."""
        return self.end_wall_s is not None

    @property
    def wall_s(self) -> float:
        """Wall-clock duration (up to now while still open)."""
        end = (
            self.end_wall_s
            if self.end_wall_s is not None
            else time.perf_counter() - self._epoch
        )
        return end - self.start_wall_s

    @property
    def sim_s(self) -> float | None:
        """Sim-clock duration, when both endpoints were recorded."""
        if self.start_sim_s is None or self.end_sim_s is None:
            return None
        return self.end_sim_s - self.start_sim_s

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant (or self) with ``name``, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable nested form (children embedded)."""
        return {
            "name": self.name,
            "start_wall_s": self.start_wall_s,
            "end_wall_s": self.end_wall_s,
            "start_sim_s": self.start_sim_s,
            "end_sim_s": self.end_sim_s,
            "attributes": self.attributes,
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree written by :meth:`to_dict`."""
        span = cls.__new__(cls)
        span.name = data["name"]
        span.attributes = dict(data.get("attributes", {}))
        span.events = [
            SpanEvent.from_dict(event) for event in data.get("events", [])
        ]
        span.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        span._epoch = 0.0
        span.start_wall_s = data.get("start_wall_s", 0.0)
        span.end_wall_s = data.get("end_wall_s")
        span.start_sim_s = data.get("start_sim_s")
        span.end_sim_s = data.get("end_sim_s")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, children={len(self.children)}, "
            f"events={len(self.events)})"
        )


class _NullSpan:
    """Absorbs every span operation when tracing is disabled."""

    __slots__ = ()

    enabled = False
    name = ""
    attributes: dict[str, Any] = {}
    events: tuple = ()
    children: tuple = ()
    start_sim_s = None
    end_sim_s = None
    sim_s = None
    wall_s = 0.0
    ended = True

    def child(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> "_NullSpan":
        return self

    def event(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> None:
        return None

    def set(self, **attributes: Any) -> None:
        return None

    def sim_window(self, start: float, end: float) -> None:
        return None

    def end(self, sim_s: float | None = None) -> None:
        return None

    def walk(self):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list:
        return []


NULL_SPAN = _NullSpan()
"""Shared no-op span; safe to use as a default everywhere."""


class Tracer:
    """Collects root spans and run-level events for one experiment."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.roots: list[Span] = []
        self.events: list[SpanEvent] = []

    def root(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> Span:
        """Open a new top-level span (e.g. one migration)."""
        span = Span(name, epoch=self._epoch, sim_s=sim_s, **attributes)
        self.roots.append(span)
        return span

    def event(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> SpanEvent:
        """Record a run-level event not tied to any span (e.g. an
        autoscaler decision or an injected fault)."""
        record = SpanEvent(
            name=name,
            wall_s=time.perf_counter() - self._epoch,
            sim_s=sim_s,
            attributes=dict(attributes),
        )
        self.events.append(record)
        return record

    def find_roots(self, name: str) -> list[Span]:
        """Root spans with the given name, in recording order."""
        return [span for span in self.roots if span.name == name]


class _NullTracer:
    """Absorbs every tracer operation when tracing is disabled."""

    __slots__ = ()

    enabled = False
    roots: tuple = ()
    events: tuple = ()

    def root(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> _NullSpan:
        return NULL_SPAN

    def event(
        self, name: str, sim_s: float | None = None, **attributes: Any
    ) -> None:
        return None

    def find_roots(self, name: str) -> list:
        return []


NULL_TRACER = _NullTracer()
"""Shared no-op tracer; the default wired into every component."""
