"""Terminal plots of per-second metric series.

The paper's figures are time series (hit rate and p95 RT around scaling
events).  For environments without a plotting stack, this module renders
them as Unicode block charts -- enough to *see* the baseline's spike and
ElMem's blip straight from ``python -m repro run --plot``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """One-line block chart of ``values`` downsampled to ``width``."""
    finite = [v for v in values if v is not None and not math.isnan(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo or 1.0
    buckets = _downsample(values, width)
    chars = []
    for bucket in buckets:
        if bucket is None:
            chars.append(" ")
            continue
        level = int((bucket - lo) / span * (len(BLOCKS) - 1))
        chars.append(BLOCKS[max(0, min(level, len(BLOCKS) - 1))])
    return "".join(chars)


def _downsample(
    values: Sequence[float], width: int
) -> list[float | None]:
    """Max-pool ``values`` into ``width`` buckets (max preserves spikes)."""
    if width <= 0:
        raise ValueError("width must be positive")
    count = len(values)
    if count == 0:
        return []
    buckets: list[float | None] = []
    per_bucket = max(1, count // width)
    for start in range(0, count, per_bucket):
        window = [
            v
            for v in values[start : start + per_bucket]
            if v is not None and not math.isnan(v)
        ]
        buckets.append(max(window) if window else None)
        if len(buckets) == width:
            break
    return buckets


def chart(
    values: Sequence[float],
    title: str,
    width: int = 80,
    height: int = 8,
    markers: Sequence[float] | None = None,
    log_scale: bool = False,
) -> str:
    """Multi-line block chart with axis labels.

    ``markers`` are x-positions (as fractions of the series length, or
    absolute indices when > 1) rendered as a ``^`` row -- used for
    scaling-action times.  ``log_scale`` plots log10 of the values,
    which is how a 100x RT spike stays readable next to a 1 ms baseline.
    """
    finite = [
        v for v in values if v is not None and not math.isnan(v)
    ]
    if not finite:
        return f"{title}\n(no data)"
    transform = (lambda v: math.log10(max(v, 1e-9))) if log_scale else (
        lambda v: v
    )
    transformed = [
        transform(v) if v is not None and not math.isnan(v) else None
        for v in values
    ]
    t_finite = [v for v in transformed if v is not None]
    lo, hi = min(t_finite), max(t_finite)
    span = hi - lo or 1.0
    buckets = _downsample(transformed, width)

    rows = []
    for row in range(height, 0, -1):
        threshold = lo + span * (row - 1) / height
        line = []
        for bucket in buckets:
            if bucket is None:
                line.append(" ")
            elif bucket >= threshold + span / height:
                line.append("█")
            elif bucket >= threshold:
                fraction = (bucket - threshold) / (span / height)
                line.append(
                    BLOCKS[
                        max(
                            1,
                            min(
                                int(fraction * (len(BLOCKS) - 1)),
                                len(BLOCKS) - 1,
                            ),
                        )
                    ]
                )
            else:
                line.append(" ")
        rows.append("".join(line))

    label_hi = f"{10**hi:.3g}" if log_scale else f"{hi:.3g}"
    label_lo = f"{10**lo:.3g}" if log_scale else f"{lo:.3g}"
    out = [f"{title}  [max {label_hi}, min {label_lo}]"]
    out.extend(rows)
    if markers:
        marker_row = [" "] * len(buckets)
        for mark in markers:
            index = (
                int(mark / len(values) * len(buckets))
                if mark > 1
                else int(mark * len(buckets))
            )
            if 0 <= index < len(marker_row):
                marker_row[index] = "^"
        out.append("".join(marker_row))
    return "\n".join(out)
