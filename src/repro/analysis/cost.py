"""Cost/energy analysis of Memcached (Section II-B of the paper).

Facebook-style cache nodes carry 72 GB of DRAM on one Xeon socket, while
web/application nodes carry 12 GB on two sockets.  Normalising the power
numbers of Fan et al. to per-GB and per-socket components, the paper
estimates ~204 W (peak) for a web node versus ~299 W for a cache node
(+47 %); on EC2, memory-optimised instances cost $0.166/hr versus
$0.10/hr for compute-optimised (+66 %).  This module encodes that model
and the resulting savings of an elastic tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

# Power components solved from the paper's two data points:
#   web node:   2 sockets + 12 GB = 204 W
#   cache node: 1 socket + 72 GB = 299 W
POWER_PER_GB_W = 197.0 / 66.0
POWER_PER_SOCKET_W = (204.0 - 12.0 * POWER_PER_GB_W) / 2.0

EC2_COMPUTE_HOURLY = 0.10
"""$/hr of a compute-optimised (web tier) instance, large size."""

EC2_MEMORY_HOURLY = 0.166
"""$/hr of a memory-optimised (Memcached) instance, large size."""


@dataclass(frozen=True)
class ServerSpec:
    """Hardware shape of one node."""

    cpu_sockets: int
    memory_gb: float

    def __post_init__(self) -> None:
        if self.cpu_sockets < 1 or self.memory_gb <= 0:
            raise ConfigurationError("invalid server spec")


WEB_NODE = ServerSpec(cpu_sockets=2, memory_gb=12)
MEMCACHED_NODE = ServerSpec(cpu_sockets=1, memory_gb=72)


def power_watts(spec: ServerSpec) -> float:
    """Peak power draw of ``spec`` under the normalised Fan et al. model."""
    return (
        spec.cpu_sockets * POWER_PER_SOCKET_W
        + spec.memory_gb * POWER_PER_GB_W
    )


def power_premium() -> float:
    """Cache node power relative to a web node minus one (paper: ~47 %)."""
    return power_watts(MEMCACHED_NODE) / power_watts(WEB_NODE) - 1.0


def cost_premium() -> float:
    """Cache node rental relative to a web node minus one (paper: ~66 %)."""
    return EC2_MEMORY_HOURLY / EC2_COMPUTE_HOURLY - 1.0


def energy_kwh(node_series: np.ndarray, interval_s: float = 1.0) -> float:
    """Energy of a cache tier whose size over time is ``node_series``.

    ``node_series[i]`` is the active node count during interval ``i``.
    """
    node_series = np.asarray(node_series, dtype=np.float64)
    if (node_series < 0).any():
        raise ConfigurationError("node counts must be non-negative")
    node_seconds = float(node_series.sum()) * interval_s
    return node_seconds * power_watts(MEMCACHED_NODE) / 3.6e6


def rental_cost_usd(
    node_series: np.ndarray, interval_s: float = 1.0
) -> float:
    """Cloud rental cost of the tier over the series."""
    node_series = np.asarray(node_series, dtype=np.float64)
    node_hours = float(node_series.sum()) * interval_s / 3600.0
    return node_hours * EC2_MEMORY_HOURLY


def savings_vs_static(
    node_series: np.ndarray, static_nodes: int | None = None
) -> float:
    """Fractional cost/energy savings of elastic vs static provisioning.

    Static provisioning holds ``static_nodes`` (default: the series peak)
    for the whole window; both cost and energy scale with node-seconds,
    so one ratio covers both.
    """
    node_series = np.asarray(node_series, dtype=np.float64)
    if len(node_series) == 0:
        raise ConfigurationError("empty node series")
    peak = float(node_series.max()) if static_nodes is None else static_nodes
    if peak <= 0:
        return 0.0
    return 1.0 - float(node_series.mean()) / peak
