"""Assembling the reproduction report.

Every benchmark under ``benchmarks/`` writes its table to
``benchmarks/out/<name>.txt``.  This module gathers those artifacts,
pairs them with the paper's reported numbers, and renders a single
digest -- the data behind EXPERIMENTS.md -- so the paper-vs-measured
comparison can be regenerated from a fresh benchmark run with
``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: Paper artifact -> (report file, the paper's headline claim).
ARTIFACTS: dict[str, tuple[str, str]] = {
    "Fig. 2 (post-scaling degradation)": (
        "fig2_postscaling",
        "baseline peak ~1000ms vs ElMem ~130ms; restoration >30min vs ~2min",
    ),
    "Fig. 5 (demand traces)": (
        "fig5_traces",
        "five normalised traces: SYS, ETC, SAP, NLANR, Microsoft",
    ),
    "Fig. 6 (all traces, baseline vs ElMem)": (
        "fig6_all_traces",
        "degradation reduction 88-97% scale-in, ~81% scale-out",
    ),
    "Fig. 7 (node choice)": (
        "fig7_node_choice",
        "random choice +57% items migrated, worst +86%",
    ),
    "Fig. 8 (migration approaches)": (
        "fig8_migration_approaches",
        "ElMem ~70% better than Naive, ~64% better than CacheScale",
    ),
    "Sec. IV-B (FuseCache complexity)": (
        "fusecache_complexity",
        "O(k (log n)^2) vs O(n log k); wins when n >> k",
    ),
    "Sec. V-B2 (overhead breakdown)": (
        "overhead_breakdown",
        "~2 minutes: 2s score, 50s dump, 7s metadata, <2s FuseCache, "
        "45s migrate, 8s import",
    ),
    "Sec. II-B (cost/energy)": (
        "cost_energy",
        "cache node +47% power, +66% rental cost vs web node",
    ),
    "Sec. II-C (elasticity potential)": (
        "elasticity_potential",
        "perfect elasticity saves 30-70% of cache nodes",
    ),
    "Sec. III-B (AutoScaler cost)": (
        "autoscaler_mimir",
        "re-profiling + sizing takes under a second",
    ),
    "Sec. V-B2 (scalability in k)": (
        "scalability_scoring",
        "scoring O(s*k); FuseCache linear in k",
    ),
}

ABLATIONS: dict[str, str] = {
    "ablation_import_mode": "batch-import semantics (merge/prepend/fresh)",
    "ablation_hashing": "ketama vs rendezvous placement",
    "ablation_profilers": "exact vs MIMIR vs SHARDS curves",
    "ablation_node_bias": "hot-spot spread vs node-choice value",
}


@dataclass
class ArtifactReport:
    """One paper artifact with its measured report (if available)."""

    title: str
    paper_claim: str
    measured: str | None

    @property
    def available(self) -> bool:
        """Whether the benchmark has been run."""
        return self.measured is not None


def load_reports(out_dir: str | Path) -> list[ArtifactReport]:
    """Read all artifact reports from a benchmark output directory."""
    out_dir = Path(out_dir)
    reports = []
    for title, (stem, claim) in ARTIFACTS.items():
        path = out_dir / f"{stem}.txt"
        measured = path.read_text().rstrip() if path.exists() else None
        reports.append(ArtifactReport(title, claim, measured))
    return reports


def render_digest(out_dir: str | Path) -> str:
    """Render the full paper-vs-measured digest as text."""
    lines: list[str] = ["ElMem reproduction: paper vs measured", "=" * 60]
    for report in load_reports(out_dir):
        lines.append("")
        lines.append(f"## {report.title}")
        lines.append(f"paper: {report.paper_claim}")
        if report.available:
            lines.append("measured:")
            lines.extend(
                "  " + line for line in report.measured.splitlines()
            )
        else:
            lines.append(
                "measured: (not yet run -- "
                "`pytest benchmarks/ --benchmark-only`)"
            )
    out_dir = Path(out_dir)
    extras = [
        stem for stem in ABLATIONS if (out_dir / f"{stem}.txt").exists()
    ]
    if extras:
        lines.append("")
        lines.append("## Ablations")
        for stem in extras:
            lines.append("")
            lines.append(f"### {ABLATIONS[stem]}")
            lines.extend(
                "  " + line
                for line in (out_dir / f"{stem}.txt")
                .read_text()
                .rstrip()
                .splitlines()
            )
    return "\n".join(lines)
