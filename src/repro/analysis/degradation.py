"""Post-scaling performance degradation metrics (Sections II-D, V-B1).

The paper quantifies the damage of a scaling action with three measures,
all computed on the per-second 95th-percentile RT series:

- **peak RT**: the highest tail RT after the scaling decision;
- **restoration time**: how long until tail RT returns to (a small
  multiple of) its pre-scaling stable level and stays there;
- **average post-scaling degradation**: the mean *excess* tail RT over
  the stable level across the post-scaling window.  The headline result
  -- "ElMem reduces post-scaling degradation by ~90 %" -- is the relative
  reduction of this quantity versus the no-migration baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsCollector


@dataclass
class DegradationSummary:
    """Post-scaling damage of one experiment run."""

    stable_rt_ms: float
    peak_rt_ms: float
    restoration_time_s: float | None
    average_post_rt_ms: float
    average_excess_rt_ms: float
    window_s: float

    def as_row(self) -> dict[str, float | None]:
        """Flat dict for report tables."""
        return {
            "stable_rt_ms": self.stable_rt_ms,
            "peak_rt_ms": self.peak_rt_ms,
            "restoration_time_s": self.restoration_time_s,
            "average_post_rt_ms": self.average_post_rt_ms,
            "average_excess_rt_ms": self.average_excess_rt_ms,
        }


def _finite(series: np.ndarray) -> np.ndarray:
    return series[np.isfinite(series)]


def stable_rt_ms(
    metrics: MetricsCollector, before: float, window_s: float = 120.0
) -> float:
    """Median p95 RT over the window ending at the scaling decision."""
    window = metrics.between(before - window_s, before)
    series = _finite(window.p95_series_ms())
    if len(series) == 0:
        raise ConfigurationError("no finite RT samples before scaling")
    return float(np.median(series))


def summarize_post_scaling(
    metrics: MetricsCollector,
    scale_time: float,
    horizon_s: float = 600.0,
    stable_window_s: float = 120.0,
    restoration_factor: float = 1.5,
    restoration_hold_s: int = 30,
) -> DegradationSummary:
    """Compute all degradation metrics around one scaling action.

    ``restoration`` is the first instant after which p95 RT stays below
    ``restoration_factor * stable`` for ``restoration_hold_s`` consecutive
    seconds; ``None`` when the series never settles within the horizon.
    """
    stable = stable_rt_ms(metrics, scale_time, stable_window_s)
    window = metrics.between(scale_time, scale_time + horizon_s)
    times = window.times()
    series = window.p95_series_ms()
    mask = np.isfinite(series)
    if not mask.any():
        raise ConfigurationError("no finite RT samples after scaling")
    times, series = times[mask], series[mask]

    threshold = restoration_factor * stable
    restoration: float | None = None
    below = series <= threshold
    run = 0
    for index in range(len(series)):
        run = run + 1 if below[index] else 0
        if run >= restoration_hold_s:
            restoration = float(
                times[index - restoration_hold_s + 1] - scale_time
            )
            break

    excess = np.clip(series - stable, 0.0, None)
    return DegradationSummary(
        stable_rt_ms=stable,
        peak_rt_ms=float(series.max()),
        restoration_time_s=restoration,
        average_post_rt_ms=float(series.mean()),
        average_excess_rt_ms=float(excess.mean()),
        window_s=horizon_s,
    )


def degradation_reduction(
    baseline: DegradationSummary, improved: DegradationSummary
) -> float:
    """Relative reduction in average excess tail RT (the paper's ~90 %).

    1.0 means the improved policy removed all post-scaling degradation;
    0.0 means no improvement; negative means it made things worse.
    """
    if baseline.average_excess_rt_ms <= 0:
        return 0.0
    return 1.0 - improved.average_excess_rt_ms / baseline.average_excess_rt_ms


def peak_reduction(
    baseline: DegradationSummary, improved: DegradationSummary
) -> float:
    """Relative reduction of the post-scaling RT peak."""
    if baseline.peak_rt_ms <= 0:
        return 0.0
    return 1.0 - improved.peak_rt_ms / baseline.peak_rt_ms
