"""Analysis utilities for the paper's evaluation.

- :mod:`repro.analysis.degradation` -- peak RT, restoration time, and the
  post-scaling degradation reduction that is the paper's headline number.
- :mod:`repro.analysis.cost` -- the Section II-B cost/energy model
  (Memcached nodes are ~66 % costlier and ~47 % more power-hungry than
  web-tier nodes).
- :mod:`repro.analysis.elasticity` -- the Section II-C estimate that a
  perfectly elastic tier saves 30-70 % of cache nodes.
"""

from repro.analysis.cost import (
    EC2_COMPUTE_HOURLY,
    EC2_MEMORY_HOURLY,
    ServerSpec,
    power_watts,
)
from repro.analysis.degradation import (
    DegradationSummary,
    degradation_reduction,
    summarize_post_scaling,
)
from repro.analysis.elasticity import elastic_node_series, node_savings

__all__ = [
    "DegradationSummary",
    "EC2_COMPUTE_HOURLY",
    "EC2_MEMORY_HOURLY",
    "ServerSpec",
    "degradation_reduction",
    "elastic_node_series",
    "node_savings",
    "power_watts",
    "summarize_post_scaling",
]
