"""Pinned micro-benchmarks and the performance regression gate.

``repro bench --gate`` (and the ``benchmarks/perf_gate.py`` wrapper) runs
four micro-benchmarks of the hot-path performance engine:

1. **cache ops** -- single vs batched ``get``/``set`` throughput on a
   routed cluster (``get_many``/``set_many`` vs per-op calls);
2. **ring routing** -- cold (``uncached_lookup``) vs cached
   (``node_for_key``) consistent-hash lookups per second;
3. **FuseCache** -- comparison count and wall time of the
   median-of-medians selection, fitted against ``k * (log2 N)^2``;
4. **end-to-end** -- simulated seconds per wall second on a scaled-down
   Fig. 2 scenario;
5. **process cluster** -- pipelined ``set`` blast throughput of the
   multi-process harness vs the single-loop harness at equal node count
   (the shared-nothing deployment must actually scale across cores;
   the >= 2x floor is waived on machines with fewer than 4 cores, where
   there is nothing to scale across).

The *gated* metrics are machine-independent ratios: the batched/single
speedups and the cached/cold speedup must stay above hard floors (the PR
acceptance bar is >= 2x), and the FuseCache fit constant must not grow
past its committed baseline by more than its tolerance.  Absolute ops/sec
numbers are recorded for information but only softly compared, because CI
machines vary.

Results are written to ``BENCH_latest.json``; the committed reference lives
in ``benchmarks/bench_baseline.json`` (refresh with ``--update-baseline``).
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

DEFAULT_BASELINE_PATH = "benchmarks/bench_baseline.json"
DEFAULT_OUT_PATH = "BENCH_latest.json"

RESULT_VERSION = 1


@dataclass(frozen=True)
class MetricSpec:
    """How one benchmark metric is judged.

    ``floor`` is an absolute hard gate (value must be >= floor, or
    <= floor when ``higher_is_better`` is false).  ``baseline_slack`` is
    a relative gate against the committed baseline: a higher-is-better
    metric must reach ``baseline * baseline_slack``; a lower-is-better
    metric must stay under ``baseline * baseline_slack``.  Metrics with
    neither are informational.

    ``waived_by``/``waive_below`` make a gate conditional on the
    *environment*: when the named companion metric measures below the
    threshold, the gate passes with a "waived" note instead of being
    enforced (e.g. a multi-core speedup floor on a single-core runner).
    """

    name: str
    description: str
    higher_is_better: bool = True
    floor: float | None = None
    baseline_slack: float | None = None
    waived_by: str | None = None
    waive_below: float | None = None

    @property
    def gated(self) -> bool:
        return self.floor is not None or self.baseline_slack is not None


SPECS: tuple[MetricSpec, ...] = (
    MetricSpec(
        "batched_get_speedup",
        "cluster.get_many vs the pre-change per-op get stack "
        "(uncached routing, per-op node calls)",
        floor=2.0,
        baseline_slack=0.5,
    ),
    MetricSpec(
        "batched_set_speedup",
        "cluster.set_many vs the pre-change per-op set stack "
        "(uncached routing, per-op node calls)",
        floor=2.0,
        baseline_slack=0.5,
    ),
    MetricSpec(
        "sameline_get_speedup",
        "cluster.get_many vs per-op cluster.get on the current stack",
    ),
    MetricSpec(
        "sameline_set_speedup",
        "cluster.set_many vs per-op cluster.set on the current stack",
    ),
    MetricSpec(
        "cached_ring_speedup",
        "cached vs uncached ring lookup throughput ratio",
        floor=2.0,
        baseline_slack=0.5,
    ),
    MetricSpec(
        "proc_cluster_speedup",
        "multi-process vs single-loop pipelined set throughput at "
        "equal node count (waived below 4 cores)",
        floor=2.0,
        waived_by="proc_bench_cores",
        waive_below=4.0,
    ),
    MetricSpec(
        "single_loop_set_kops",
        "pipelined set blast against the single-loop harness (kops/s)",
    ),
    MetricSpec(
        "proc_cluster_set_kops",
        "pipelined set blast against the process cluster (kops/s)",
    ),
    MetricSpec(
        "proc_bench_cores",
        "CPU cores visible to the process-cluster benchmark",
    ),
    MetricSpec(
        "fusecache_fit_constant",
        "FuseCache comparisons / (k * (log2 N)^2)",
        higher_is_better=False,
        floor=12.0,
        baseline_slack=1.5,
    ),
    MetricSpec(
        "legacy_single_get_kops",
        "pre-change per-op get throughput, uncached routing (kops/s)",
    ),
    MetricSpec(
        "legacy_single_set_kops",
        "pre-change per-op set throughput, uncached routing (kops/s)",
    ),
    MetricSpec(
        "single_get_kops",
        "per-op cluster.get throughput (kops/s)",
    ),
    MetricSpec(
        "batched_get_kops",
        "cluster.get_many throughput (kops/s)",
    ),
    MetricSpec(
        "single_set_kops",
        "per-op cluster.set throughput (kops/s)",
    ),
    MetricSpec(
        "batched_set_kops",
        "cluster.set_many throughput (kops/s)",
    ),
    MetricSpec(
        "uncached_ring_klookups",
        "cold ring lookups (klookups/s)",
    ),
    MetricSpec(
        "cached_ring_klookups",
        "warm ring lookups (klookups/s)",
    ),
    MetricSpec(
        "fusecache_comparisons",
        "FuseCache comparisons at the pinned problem size",
    ),
    MetricSpec(
        "fusecache_ms",
        "FuseCache wall time at the pinned problem size (ms)",
    ),
    MetricSpec(
        "e2e_ticks_per_s",
        "simulated seconds per wall second, Fig. 2 mini scenario",
    ),
    MetricSpec(
        "live_proxy_p99_overhead",
        "proxy get p99 with disabled telemetry vs the uninstrumented "
        "router path (ratio; the live-obs instrumentation tax)",
        higher_is_better=False,
        floor=1.05,
    ),
    MetricSpec(
        "live_proxy_get_p99_ms",
        "proxy get p99 over localhost TCP, disabled telemetry (ms)",
    ),
    MetricSpec(
        "live_proxy_traced_p99_ms",
        "proxy get p99 with live metrics + 1% trace sampling (ms)",
    ),
)

SPEC_INDEX = {spec.name: spec for spec in SPECS}


def _best_seconds(run: Callable[[], Any], repeats: int) -> float:
    """Wall time of ``run``, best of ``repeats`` (noise suppression)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _chunks(values: list, size: int) -> list[list]:
    return [values[i : i + size] for i in range(0, len(values), size)]


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def bench_cache_ops(quick: bool) -> dict[str, float]:
    """Single vs batched get/set throughput on a 4-node cluster.

    The gated speedups compare ``get_many``/``set_many`` against the
    *pre-change* per-op stack -- per-key routing on a ring without the
    lookup cache plus per-op node calls, which is what the seed tree
    executed -- by temporarily swapping in a cache-disabled ring.  The
    same-stack per-op numbers (cached routing) are also recorded.
    """
    import random

    from repro.hashing.ketama import ConsistentHashRing
    from repro.memcached.cluster import MemcachedCluster

    num_keys = 8_000 if quick else 20_000
    ops = 16_000 if quick else 48_000
    repeats = 2 if quick else 3
    batch = 64
    names = [f"node-{i:03d}" for i in range(4)]
    cluster = MemcachedCluster(
        names,
        memory_per_node=16 << 20,
        growth_factor=3.0,
    )
    keys = [f"k{i:010d}" for i in range(num_keys)]
    value_size = 120
    entries = [(key, f"v{key}", value_size) for key in keys]
    cluster.set_many(entries, now=0.0)

    rng = random.Random(11)
    workload = rng.choices(keys, k=ops)
    batches = _chunks(workload, batch)

    def single_get() -> None:
        get = cluster.get
        for key in workload:
            get(key, 1.0)

    def batched_get() -> None:
        get_many = cluster.get_many
        for chunk in batches:
            get_many(chunk, 1.0)

    set_workload = [(key, "w", value_size) for key in workload]
    set_batches = _chunks(set_workload, batch)

    def single_set() -> None:
        set_op = cluster.set
        for key, value, size in set_workload:
            set_op(key, value, size, 2.0)

    def batched_set() -> None:
        set_many = cluster.set_many
        for chunk in set_batches:
            set_many(chunk, 2.0)

    # Pre-change reference: same membership, no lookup cache (every
    # route pays the hash + binary search, as the seed tree did).
    cached_ring = cluster.ring
    legacy_ring = ConsistentHashRing(
        names, vnodes=cluster.vnodes, lookup_cache_size=0
    )
    cluster.ring = legacy_ring
    single_get()  # warm the md5 digest cache
    legacy_get_rate = ops / _best_seconds(single_get, repeats)
    legacy_set_rate = ops / _best_seconds(single_set, repeats)
    cluster.ring = cached_ring

    single_get()  # warm the routing cache before timing
    single_rate = ops / _best_seconds(single_get, repeats)
    batched_rate = ops / _best_seconds(batched_get, repeats)
    single_set_rate = ops / _best_seconds(single_set, repeats)
    batched_set_rate = ops / _best_seconds(batched_set, repeats)
    return {
        "legacy_single_get_kops": legacy_get_rate / 1e3,
        "legacy_single_set_kops": legacy_set_rate / 1e3,
        "single_get_kops": single_rate / 1e3,
        "batched_get_kops": batched_rate / 1e3,
        "batched_get_speedup": batched_rate / legacy_get_rate,
        "sameline_get_speedup": batched_rate / single_rate,
        "single_set_kops": single_set_rate / 1e3,
        "batched_set_kops": batched_set_rate / 1e3,
        "batched_set_speedup": batched_set_rate / legacy_set_rate,
        "sameline_set_speedup": batched_set_rate / single_set_rate,
    }


def bench_ring(quick: bool) -> dict[str, float]:
    """Cold vs cached consistent-hash lookups per second."""
    from repro.hashing.ketama import ConsistentHashRing

    num_keys = 8_000 if quick else 25_000
    repeats = 2 if quick else 3
    ring = ConsistentHashRing([f"node-{i:03d}" for i in range(10)])
    keys = [f"k{i:010d}" for i in range(num_keys)]

    def cold() -> None:
        lookup = ring.uncached_lookup
        for key in keys:
            lookup(key)

    def cached() -> None:
        lookup = ring.node_for_key
        for key in keys:
            lookup(key)

    cold()  # warm the md5 digest cache so "cold" isolates the bisect
    cached()  # populate the per-membership lookup cache
    cold_rate = num_keys / _best_seconds(cold, repeats)
    cached_rate = num_keys / _best_seconds(cached, repeats)
    return {
        "uncached_ring_klookups": cold_rate / 1e3,
        "cached_ring_klookups": cached_rate / 1e3,
        "cached_ring_speedup": cached_rate / cold_rate,
    }


def bench_fusecache(quick: bool) -> dict[str, float]:
    """FuseCache cost at a pinned problem size, fitted to k*(log2 N)^2."""
    from repro.core.fusecache import fuse_cache_detailed

    k = 8
    per_list = 4_096 if quick else 16_384
    repeats = 2 if quick else 3
    lists = [
        [float(per_list * k - (j * k + i)) for j in range(per_list)]
        for i in range(k)
    ]
    total = per_list * k
    pick = total // 2

    result = fuse_cache_detailed(lists, pick)
    elapsed = _best_seconds(lambda: fuse_cache_detailed(lists, pick), repeats)
    fit = result.comparisons / (k * math.log2(total) ** 2)
    return {
        "fusecache_comparisons": float(result.comparisons),
        "fusecache_ms": elapsed * 1e3,
        "fusecache_fit_constant": fit,
    }


def bench_e2e(quick: bool) -> dict[str, float]:
    """Simulated seconds per wall second on a mini Fig. 2 scenario."""
    from repro.sim.experiment import ExperimentConfig, run_experiment

    duration = 20 if quick else 60
    config = ExperimentConfig(
        duration_s=duration,
        num_keys=20_000,
        initial_nodes=4,
        peak_request_rate=120.0,
        schedule=[(float(duration // 3), 3)],
        policy="elmem",
        seed=9,
        warmup_seconds=5,
    )
    start = time.perf_counter()
    run_experiment(config)
    elapsed = time.perf_counter() - start
    return {"e2e_ticks_per_s": duration / elapsed}


_BENCH_KEYS = [f"bench:{i:04d}" for i in range(64)]


async def _bench_seed(client: Any) -> None:
    payload = b"x" * 64
    for key in _BENCH_KEYS:
        await client.set(key, payload)


async def _bench_drive(client: Any, count: int) -> list[float]:
    """Per-op ``get`` latencies, timed inside the event loop."""
    latencies = []
    get = client.get
    perf = time.perf_counter
    keys = _BENCH_KEYS
    for i in range(count):
        key = keys[i % len(keys)]
        start = perf()
        await get(key)
        latencies.append(perf() - start)
    return latencies


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _live_proxy_p99_s(telemetry: Any, ops: int) -> float:
    """p99 of a proxied ``get`` over localhost TCP with ``telemetry``."""
    from repro.net.client import NodeClient
    from repro.proxy.server import ProxyHarness

    harness = ProxyHarness(
        ["bench-00", "bench-01"],
        memory_per_node=1 << 20,
        telemetry=telemetry,
    )
    with harness:
        host, port = harness.proxy_endpoint
        client = NodeClient("bench", host, port, timeout_s=5.0)
        loop = harness.loop
        try:
            loop.call(_bench_seed(client), timeout=30.0)
            loop.call(_bench_drive(client, max(ops // 4, 50)), timeout=60.0)
            return _p99(loop.call(_bench_drive(client, ops), timeout=300.0))
        finally:
            loop.call(client.close(), timeout=5.0)


def bench_live_proxy(quick: bool) -> dict[str, float]:
    """Observability tax on the live proxy ``get`` path (p99 ratio).

    The gated ``live_proxy_p99_overhead`` compares the shipped
    "observability off" configuration (disabled telemetry through the
    normal entry points) against an *uninstrumented* router whose
    timing wrapper is monkeypatched away -- the same trick
    ``benchmarks/bench_obs_overhead.py`` plays on ``MemcachedNode``.

    Localhost socket p99 is noisy (scheduler jitter dwarfs the
    nanosecond instrumentation branches), so the two modes are
    interleaved in small alternating blocks on ONE harness -- both
    pools sample the same machine conditions -- and the ratio of pooled
    p99s is taken per pass, best (min) of three passes.  The traced
    mode (live metrics + 1% sampling) boots its own harness because
    telemetry is bound at construction; its p99 is informational only,
    as is the absolute disabled-mode p99 (absolute numbers track
    machine speed, not code changes).
    """
    import types

    from repro.net.client import NodeClient
    from repro.obs import NULL_TELEMETRY, create_telemetry
    from repro.proxy.router import ProxyRouter
    from repro.proxy.server import ProxyHarness

    blocks = 40 if quick else 60
    block_ops = 150 if quick else 250
    passes = 3

    def _toggle(router: Any, uninstrumented: bool) -> None:
        if uninstrumented:
            router.get = types.MethodType(ProxyRouter._get_inner, router)
        else:
            try:
                del router.get  # back to the class's instrumented wrapper
            except AttributeError:
                pass

    harness = ProxyHarness(
        ["bench-00", "bench-01"],
        memory_per_node=1 << 20,
        telemetry=NULL_TELEMETRY,
    )
    ratio = math.inf
    disabled_pool: list[float] = []
    with harness:
        host, port = harness.proxy_endpoint
        client = NodeClient("bench", host, port, timeout_s=5.0)
        loop = harness.loop
        router = harness.router
        try:
            loop.call(_bench_seed(client), timeout=30.0)
            loop.call(_bench_drive(client, 600), timeout=60.0)
            for _ in range(passes):
                upool: list[float] = []
                dpool: list[float] = []
                for block in range(blocks):
                    order = (
                        (True, upool), (False, dpool)
                    ) if block % 2 == 0 else (
                        (False, dpool), (True, upool)
                    )
                    for uninstrumented, pool in order:
                        _toggle(router, uninstrumented)
                        pool.extend(
                            loop.call(
                                _bench_drive(client, block_ops),
                                timeout=120.0,
                            )
                        )
                _toggle(router, False)
                ratio = min(ratio, _p99(dpool) / _p99(upool))
                disabled_pool.extend(dpool)
        finally:
            loop.call(client.close(), timeout=5.0)

    traced = _live_proxy_p99_s(
        create_telemetry(
            "bench-proxy", live_trace=True, trace_sample=0.01, trace_seed=17
        ),
        blocks * block_ops,
    )
    return {
        "live_proxy_p99_overhead": ratio,
        "live_proxy_get_p99_ms": _p99(disabled_pool) * 1e3,
        "live_proxy_traced_p99_ms": traced * 1e3,
    }


def _recv_exact(sock: Any, size: int) -> bytes:
    """Read exactly ``size`` bytes from a blocking socket."""
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        data = sock.recv(min(remaining, 1 << 16))
        if not data:
            raise ConnectionError("server closed mid-response")
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


def _blast_worker(
    host: str,
    port: int,
    batches: int,
    batch: int,
    value_bytes: int,
    barrier: Any,
) -> None:
    """One raw-socket driver process: pipelined ``set`` chunks only.

    Spawn-safe module-level entrypoint.  The wire bytes and the exact
    expected response are precomputed, so the driver's own per-op cost
    is a memcpy -- symmetric for both harnesses, leaving the server side
    as the measured bottleneck.
    """
    import socket

    payload = b"y" * value_bytes
    chunk = b"".join(
        f"set blast{i:05d} 0 0 {value_bytes}\r\n".encode()
        + payload
        + b"\r\n"
        for i in range(batch)
    )
    expected = b"STORED\r\n" * batch
    sock = socket.create_connection((host, port))
    try:
        sock.sendall(chunk)  # warm the connection + slab classes
        if _recv_exact(sock, len(expected)) != expected:
            raise AssertionError("unexpected warmup response")
        barrier.wait(timeout=60.0)
        for _ in range(batches):
            sock.sendall(chunk)
            if _recv_exact(sock, len(expected)) != expected:
                raise AssertionError("unexpected set response")
    finally:
        sock.close()


def _blast_cluster(
    endpoints: dict[str, tuple[str, int]],
    batches: int,
    batch: int,
    value_bytes: int,
) -> float:
    """Aggregate set ops/s with one blast driver process per node.

    The parent joins the start barrier too: the clock starts when every
    driver is connected and warmed, and stops when the last one exits.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(len(endpoints) + 1)
    workers = [
        ctx.Process(
            target=_blast_worker,
            args=(host, port, batches, batch, value_bytes, barrier),
            name=f"blast-{name}",
        )
        for name, (host, port) in sorted(endpoints.items())
    ]
    for worker in workers:
        worker.start()
    try:
        barrier.wait(timeout=120.0)
        start = time.perf_counter()
        for worker in workers:
            worker.join(timeout=600.0)
        elapsed = time.perf_counter() - start
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=5.0)
    if any(worker.exitcode != 0 for worker in workers):
        raise RuntimeError("a blast driver failed")
    return len(workers) * batches * batch / elapsed


def visible_cores() -> int:
    """CPU cores available to this process (affinity-aware)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def bench_proc_cluster(quick: bool) -> dict[str, float]:
    """Multi-process vs single-loop serving throughput, equal nodes.

    Both harnesses run the same three node servers and absorb the same
    pipelined ``set`` blast from one raw-socket driver process per node.
    The single-loop harness serves every node on one thread, so its
    aggregate rate is pinned to one core; the process harness should
    scale with cores.  The speedup is gated (>= 2x) only on machines
    with at least 4 cores -- below that the deployment difference cannot
    express itself and ``proc_cluster_speedup`` is waived.
    """
    from repro.net.procs import ProcessClusterHarness
    from repro.net.server import LiveClusterHarness

    nodes = 3
    batch = 64
    batches = 50 if quick else 150
    value_bytes = 64
    names = [f"bench-{index:02d}" for index in range(nodes)]
    memory_per_node = 16 << 20

    with LiveClusterHarness(names, memory_per_node) as single:
        single_rate = _blast_cluster(
            single.endpoints, batches, batch, value_bytes
        )
    with ProcessClusterHarness(names, memory_per_node) as procs:
        proc_rate = _blast_cluster(
            procs.endpoints, batches, batch, value_bytes
        )
    return {
        "proc_bench_cores": float(visible_cores()),
        "single_loop_set_kops": single_rate / 1e3,
        "proc_cluster_set_kops": proc_rate / 1e3,
        "proc_cluster_speedup": proc_rate / single_rate,
    }


def run_benchmarks(quick: bool = False) -> dict[str, float]:
    """Run every micro-benchmark and merge the metric dicts."""
    metrics: dict[str, float] = {}
    metrics.update(bench_cache_ops(quick))
    metrics.update(bench_ring(quick))
    metrics.update(bench_fusecache(quick))
    metrics.update(bench_e2e(quick))
    metrics.update(bench_live_proxy(quick))
    metrics.update(bench_proc_cluster(quick))
    return metrics


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------


@dataclass
class GateRow:
    """Verdict for one metric.

    ``waived``/``waived_by``/``probe_value``/``waive_below`` record a
    conditional pass: the probed companion metric (for example
    ``proc_bench_cores``) fell below the spec's threshold, so the floor
    was not enforced.  The probe value travels into
    ``BENCH_latest.json`` and the gate summary line so a waived pass is
    auditable, not silent.
    """

    name: str
    value: float
    baseline: float | None
    gated: bool
    passed: bool
    detail: str
    waived: bool = False
    waived_by: str | None = None
    probe_value: float | None = None
    waive_below: float | None = None


def evaluate_gate(
    metrics: dict[str, float],
    baseline: dict[str, float] | None,
) -> list[GateRow]:
    """Judge measured ``metrics`` against the specs and the baseline."""
    rows: list[GateRow] = []
    for spec in SPECS:
        value = metrics.get(spec.name)
        if value is None:
            rows.append(
                GateRow(spec.name, float("nan"), None, spec.gated,
                        not spec.gated, "metric missing from run")
            )
            continue
        base = baseline.get(spec.name) if baseline else None
        if spec.waived_by is not None and spec.waive_below is not None:
            companion = metrics.get(spec.waived_by)
            if companion is not None and companion < spec.waive_below:
                rows.append(
                    GateRow(
                        spec.name, value, base, spec.gated, True,
                        f"waived: {spec.waived_by}={companion:g} < "
                        f"{spec.waive_below:g}",
                        waived=True,
                        waived_by=spec.waived_by,
                        probe_value=companion,
                        waive_below=spec.waive_below,
                    )
                )
                continue
        passed = True
        reasons: list[str] = []
        if spec.floor is not None:
            if spec.higher_is_better:
                ok = value >= spec.floor
                reasons.append(f"floor >= {spec.floor:g}")
            else:
                ok = value <= spec.floor
                reasons.append(f"ceiling <= {spec.floor:g}")
            passed = passed and ok
        if spec.baseline_slack is not None and base is not None:
            limit = base * spec.baseline_slack
            if spec.higher_is_better:
                ok = value >= limit
                reasons.append(f"baseline slack >= {limit:.3g}")
            else:
                ok = value <= limit
                reasons.append(f"baseline slack <= {limit:.3g}")
            passed = passed and ok
        detail = "; ".join(reasons) if reasons else "informational"
        rows.append(
            GateRow(spec.name, value, base, spec.gated, passed, detail)
        )
    return rows


def load_baseline(path: str | Path) -> dict[str, float] | None:
    """Committed baseline metrics, or ``None`` when absent."""
    path = Path(path)
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    return payload.get("metrics", payload)


def write_results(
    path: str | Path,
    metrics: dict[str, float],
    rows: list[GateRow],
    quick: bool,
) -> Path:
    """Persist one run (``BENCH_latest.json``)."""
    path = Path(path)
    payload = {
        "version": RESULT_VERSION,
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": quick,
        },
        "metrics": {k: round(v, 4) for k, v in sorted(metrics.items())},
        "gate": {
            "passed": all(r.passed for r in rows if r.gated),
            "failures": [
                {"name": r.name, "value": round(r.value, 4),
                 "baseline": r.baseline, "detail": r.detail}
                for r in rows
                if r.gated and not r.passed
            ],
            "waivers": [
                {"name": r.name, "value": round(r.value, 4),
                 "waived_by": r.waived_by, "probe_value": r.probe_value,
                 "waive_below": r.waive_below}
                for r in rows
                if r.waived
            ],
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def write_baseline(path: str | Path, metrics: dict[str, float]) -> Path:
    """Refresh the committed baseline file."""
    path = Path(path)
    payload = {
        "version": RESULT_VERSION,
        "metrics": {k: round(v, 4) for k, v in sorted(metrics.items())},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def render_rows(rows: list[GateRow]) -> str:
    """Human-readable gate table."""
    lines = [
        f"{'metric':26s} {'value':>12s} {'baseline':>12s}  verdict",
    ]
    for row in rows:
        base = f"{row.baseline:12.3f}" if row.baseline is not None else (
            " " * 11 + "-"
        )
        verdict = (
            ("PASS" if row.passed else "FAIL") if row.gated else "info"
        )
        lines.append(
            f"{row.name:26s} {row.value:12.3f} {base}  "
            f"{verdict}  ({row.detail})"
        )
    return "\n".join(lines)


def run_gate(
    quick: bool = False,
    gate: bool = True,
    out_path: str | Path = DEFAULT_OUT_PATH,
    baseline_path: str | Path = DEFAULT_BASELINE_PATH,
    update_baseline: bool = False,
) -> tuple[bool, str]:
    """Full pipeline: benchmark, judge, persist.  Returns (ok, report)."""
    metrics = run_benchmarks(quick)
    baseline = load_baseline(baseline_path) if gate else None
    rows = evaluate_gate(metrics, baseline)
    written = write_results(out_path, metrics, rows, quick)
    lines = [render_rows(rows), f"results -> {written}"]
    if update_baseline:
        lines.append(
            f"baseline -> {write_baseline(baseline_path, metrics)}"
        )
    ok = all(row.passed for row in rows if row.gated) or not gate
    if gate:
        summary = "gate: PASS" if ok else "gate: FAIL (see failures above)"
        waived = [row for row in rows if row.waived]
        if waived:
            notes = ", ".join(
                f"{row.name} [{row.waived_by}={row.probe_value:g} < "
                f"{row.waive_below:g}]"
                for row in waived
            )
            summary += f" (waived: {notes})"
        lines.append(summary)
        if baseline is None:
            lines.append(
                f"note: no baseline at {baseline_path}; only hard floors "
                "were enforced"
            )
    return ok, "\n".join(lines)
