"""Potential benefits of an elastic Memcached tier (Section II-C).

The paper's preliminary analysis: a *perfectly elastic* tier -- one that
instantly resizes to the optimal node count and consolidates all hot
data -- would run with 30-70 % fewer cache nodes on Facebook-like
traces.  This module reproduces that estimate by applying the AutoScaler
sizing rule (Eq. 1 + the hit-rate curve) at every point of a demand
trace.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cache_analysis.mrc import HitRateCurve, memory_for_hit_rate
from repro.core.autoscaler import min_hit_rate
from repro.errors import ConfigurationError
from repro.workloads.traces import RateTrace


def elastic_node_series(
    trace: RateTrace,
    peak_kv_rate: float,
    db_capacity_rps: float,
    curve: HitRateCurve,
    bytes_per_item: float,
    node_memory_bytes: int,
    min_nodes: int = 1,
    hit_rate_margin: float = 0.01,
) -> np.ndarray:
    """Optimal node count at every second of ``trace``.

    For each second: Eq. (1) gives the minimum hit rate at that rate,
    the hit-rate curve gives the memory achieving it, and dividing by
    per-node memory gives the node count a perfectly elastic tier would
    run.
    """
    if node_memory_bytes <= 0:
        raise ConfigurationError("node_memory_bytes must be positive")
    rates = trace.normalised().values * peak_kv_rate
    series = np.empty(len(rates), dtype=np.int64)
    cache: dict[float, int] = {}
    for index, rate in enumerate(rates):
        p_min = min(
            min_hit_rate(float(rate), db_capacity_rps) + hit_rate_margin,
            0.999,
        )
        rounded = round(p_min, 3)
        nodes = cache.get(rounded)
        if nodes is None:
            required = memory_for_hit_rate(curve, rounded, bytes_per_item)
            if required is None:
                required = int(curve.max_capacity * bytes_per_item)
            nodes = max(min_nodes, math.ceil(required / node_memory_bytes))
            cache[rounded] = nodes
        series[index] = nodes
    return series


def node_savings(node_series: np.ndarray, static_nodes: int | None = None) -> float:
    """Fraction of node-seconds saved versus static peak provisioning."""
    node_series = np.asarray(node_series, dtype=np.float64)
    if len(node_series) == 0:
        raise ConfigurationError("empty node series")
    peak = (
        float(node_series.max()) if static_nodes is None else float(static_nodes)
    )
    if peak <= 0:
        return 0.0
    return 1.0 - float(node_series.mean()) / peak
