"""Declarative fault descriptions and seeded fault schedules.

A :class:`FaultSpec` names one planned misbehaviour at one point in
simulated time: a node crash, a node whose dump/import throughput stalls,
or a network flow that fails outright or is throttled.  A
:class:`FaultSchedule` is a time-ordered list of specs; the seeded
:meth:`FaultSchedule.random` generator makes whole fault campaigns
reproducible from a single integer, which is what lets the fault-sweep
benchmark (and the acceptance tests) replay the exact same failure story
twice and demand identical migration reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

FAULT_KINDS = frozenset(
    {"node_crash", "node_stall", "flow_fail", "flow_throttle"}
)
"""The misbehaviours the injector knows how to apply."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at ``at_s`` seconds of simulated time.

    Parameters
    ----------
    at_s:
        Simulated time at which the fault begins.
    kind:
        One of :data:`FAULT_KINDS`.
    node:
        Target of ``node_crash`` / ``node_stall``.
    src / dst:
        Endpoint filters for flow faults; ``None`` matches any endpoint,
        so ``FaultSpec(10, "flow_fail", src="node-002")`` fails every
        flow leaving ``node-002``.
    factor:
        Throughput multiplier for ``node_stall`` / ``flow_throttle``
        (0 < factor < 1 slows; 0 is a dead stop that times flows out).
    duration_s:
        How long a stall/throttle/flow fault stays active; ``None``
        means it never clears.  Ignored for ``node_crash`` (crashes are
        permanent).
    """

    at_s: float
    kind: str
    node: str | None = None
    src: str | None = None
    dst: str | None = None
    factor: float = 0.5
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        if self.at_s < 0:
            raise ConfigurationError("fault at_s must be non-negative")
        if self.kind in ("node_crash", "node_stall") and not self.node:
            raise ConfigurationError(f"{self.kind} requires a target node")
        if self.factor < 0:
            raise ConfigurationError("fault factor must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigurationError("fault duration_s must be positive")

    @property
    def expires_at(self) -> float:
        """Simulated time the fault clears (``inf`` when permanent)."""
        if self.kind == "node_crash" or self.duration_s is None:
            return math.inf
        return self.at_s + self.duration_s

    def active(self, now: float) -> bool:
        """True while the fault is in effect at ``now``."""
        return self.at_s <= now < self.expires_at

    def matches_flow(self, src: str, dst: str) -> bool:
        """True if this (flow) fault applies to a ``src -> dst`` flow."""
        if self.kind not in ("flow_fail", "flow_throttle"):
            return False
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass
class FaultSchedule:
    """A time-ordered fault campaign for one simulation run."""

    specs: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.specs = sorted(self.specs, key=lambda spec: spec.at_s)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def add(self, spec: FaultSpec) -> None:
        """Insert one spec, keeping the schedule time-ordered."""
        self.specs.append(spec)
        self.specs.sort(key=lambda item: item.at_s)

    def pending(self, now: float) -> list[FaultSpec]:
        """Specs that have not yet fired at ``now``."""
        return [spec for spec in self.specs if spec.at_s > now]

    @classmethod
    def random(
        cls,
        nodes: list[str],
        duration_s: float,
        seed: int = 0,
        intensity: float = 0.5,
        max_crash_fraction: float = 0.5,
    ) -> "FaultSchedule":
        """Generate a seeded campaign over ``nodes`` for ``duration_s``.

        ``intensity`` scales the expected fault count (roughly
        ``intensity * len(nodes)`` faults, spread uniformly over the
        middle 80% of the run so faults land while migrations are in
        flight, not at t=0).  Crashes are capped at
        ``max_crash_fraction`` of the fleet so a hot sweep cannot kill
        the whole tier.  The same ``(nodes, duration_s, seed,
        intensity)`` tuple always yields the identical schedule.
        """
        if intensity < 0:
            raise ConfigurationError("intensity must be >= 0")
        if not nodes or duration_s <= 0 or intensity == 0:
            return cls([])
        rng = random.Random(seed)
        count = max(1, round(intensity * len(nodes)))
        crash_budget = max(1, int(len(nodes) * max_crash_fraction))
        crashed: set[str] = set()
        specs: list[FaultSpec] = []
        kinds = ["node_crash", "node_stall", "flow_fail", "flow_throttle"]
        for _ in range(count):
            at_s = rng.uniform(0.1 * duration_s, 0.9 * duration_s)
            kind = rng.choice(kinds)
            if kind == "node_crash" and len(crashed) >= crash_budget:
                kind = "node_stall"
            node = rng.choice(nodes)
            if kind == "node_crash":
                crashed.add(node)
                specs.append(FaultSpec(at_s, kind, node=node))
            elif kind == "node_stall":
                specs.append(
                    FaultSpec(
                        at_s,
                        kind,
                        node=node,
                        factor=rng.uniform(0.05, 0.5),
                        duration_s=rng.uniform(30.0, 180.0),
                    )
                )
            elif kind == "flow_fail":
                specs.append(
                    FaultSpec(
                        at_s,
                        kind,
                        src=node,
                        duration_s=rng.uniform(10.0, 120.0),
                    )
                )
            else:
                specs.append(
                    FaultSpec(
                        at_s,
                        kind,
                        src=node,
                        factor=rng.uniform(0.05, 0.5),
                        duration_s=rng.uniform(30.0, 180.0),
                    )
                )
        return cls(specs)
