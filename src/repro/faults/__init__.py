"""Seeded, clock-driven fault injection for robustness experiments.

ElMem's claim is that warm migration completes *before* the scaling
action; this package supplies the adversary that claim must survive.
Faults are declared up front (:class:`FaultSpec` / :class:`FaultSchedule`,
reproducible from one seed) and applied by the :class:`FaultInjector` as
simulated time advances: node crashes, dump/import stalls, and per-flow
network failures or throttling.  The Master's retry/deadline machinery
and the migration policies consume the injector's query side to decide
when to retry, skip, or degrade a migration to plain cold scaling.
"""

from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.sockets import SocketFaultPolicy
from repro.faults.spec import FAULT_KINDS, FaultSchedule, FaultSpec

__all__ = [
    "AppliedFault",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "SocketFaultPolicy",
]
