"""Socket-layer fault injection for the live TCP tier.

The simulated injector (:mod:`repro.faults.injector`) misbehaves inside
the simulated timeline; :class:`SocketFaultPolicy` replays the same
declarative :class:`~repro.faults.spec.FaultSpec` vocabulary against
real connections instead.  A :class:`~repro.net.server.NodeServer`
consults the policy once per received chunk and applies the verdict:

========================  ==================================================
spec kind                 socket behaviour while active
========================  ==================================================
``node_crash``            the connection is aborted (and every later one)
``flow_fail``             connections to the matching destination node are
                          aborted mid-request
``node_stall``            each chunk is delayed before it is parsed
``flow_throttle``         same, scoped by the ``dst`` filter
========================  ==================================================

``src`` filters are ignored: at the socket layer the server only knows
the peer's ephemeral address, not which logical node (if any) originated
the flow.  Times are wall clock, anchored at construction (or an
explicit ``clock``), because the live tier has no simulated timeline.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.faults.spec import FaultSchedule, FaultSpec

DispositionKind = str
"""``"pass"``, ``"drop"``, or ``"delay"``."""

DEAD_STOP_DELAY_S = 3600.0
"""Per-chunk delay for a ``factor == 0`` stall: effectively a server
that never answers, so clients exercise their timeout path."""


class SocketFaultPolicy:
    """Maps a seeded fault schedule onto live socket behaviour.

    Parameters
    ----------
    schedule:
        The fault campaign; ``at_s``/``duration_s`` are interpreted as
        wall-clock seconds since the policy was anchored.
    base_delay_s:
        Per-chunk delay unit for stalls/throttles.  The applied delay is
        ``base_delay_s * (1/factor - 1)`` (a ``factor`` of 0.5 doubles
        per-chunk latency), or :data:`DEAD_STOP_DELAY_S` when the factor
        is zero.
    clock:
        Zero-argument wall-clock source; defaults to
        :func:`time.monotonic`.  Tests inject a fake to step time.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        base_delay_s: float = 0.05,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.schedule = schedule
        self.base_delay_s = base_delay_s
        self._clock = clock or time.monotonic
        self._anchor = self._clock()

    def elapsed(self) -> float:
        """Wall-clock seconds since the policy was anchored."""
        return self._clock() - self._anchor

    def _targets(self, spec: FaultSpec, node: str) -> bool:
        if spec.kind in ("node_crash", "node_stall"):
            return spec.node == node
        # Flow faults: the socket layer can only see the destination.
        return spec.dst is None or spec.dst == node

    def disposition(self, node: str) -> tuple[DispositionKind, float]:
        """The verdict for one chunk arriving at ``node`` right now.

        Returns ``("drop", 0.0)`` when the connection must be aborted,
        ``("delay", seconds)`` when the chunk must be held back, and
        ``("pass", 0.0)`` otherwise.  Drops win over delays.
        """
        now = self.elapsed()
        delay = 0.0
        for spec in self.schedule:
            if not spec.active(now) or not self._targets(spec, node):
                continue
            if spec.kind in ("node_crash", "flow_fail"):
                return "drop", 0.0
            if spec.factor <= 0.0:
                delay = max(delay, DEAD_STOP_DELAY_S)
            else:
                delay = max(
                    delay, self.base_delay_s * (1.0 / spec.factor - 1.0)
                )
        if delay > 0.0:
            return "delay", delay
        return "pass", 0.0
