"""Clock-driven application of a :class:`FaultSchedule` to a live cluster.

The :class:`FaultInjector` sits between the simulator clock and the
cluster/network: :meth:`FaultInjector.advance` applies every fault whose
time has come (crashing nodes, opening stall and flow-fault windows), and
the query side -- :meth:`rate_factor` and :meth:`flow_disposition` -- is
consulted by the Master and the :class:`~repro.netsim.transfer.NetworkModel`
while a migration executes, so injected faults translate into retries,
failed flows, and blown deadlines rather than silent success.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.spec import FaultSchedule, FaultSpec
from repro.memcached.cluster import MemcachedCluster
from repro.obs import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class AppliedFault:
    """Audit-trail entry: one spec the injector acted on."""

    spec: FaultSpec
    applied_at: float
    detail: str


class FaultInjector:
    """Applies a fault schedule to a cluster as simulated time advances.

    The injector is deliberately conservative about one thing: it never
    crashes the last node still on the hash ring.  A fault campaign is
    meant to stress the migration protocol, not to model total cluster
    loss (which no migration policy could survive); such crashes are
    recorded as suppressed in :attr:`applied`.
    """

    def __init__(
        self,
        cluster: MemcachedCluster,
        schedule: FaultSchedule,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.telemetry = telemetry or NULL_TELEMETRY
        self.applied: list[AppliedFault] = []
        self.killed: list[str] = []
        self._cursor = 0
        self._stalls: list[FaultSpec] = []
        self._flow_faults: list[FaultSpec] = []

    # ------------------------------------------------------------------
    # Clock side
    # ------------------------------------------------------------------

    def advance(self, now: float) -> list[AppliedFault]:
        """Apply every scheduled fault with ``at_s <= now``; return them."""
        fired: list[AppliedFault] = []
        specs = self.schedule.specs
        while self._cursor < len(specs) and specs[self._cursor].at_s <= now:
            spec = specs[self._cursor]
            self._cursor += 1
            fired.append(self._apply(spec, now))
        return fired

    def _apply(self, spec: FaultSpec, now: float) -> AppliedFault:
        if spec.kind == "node_crash":
            detail = self._crash(spec.node or "", now)
        elif spec.kind == "node_stall":
            self._stalls.append(spec)
            detail = f"stalled {spec.node} to {spec.factor:.2f}x"
        elif spec.kind == "flow_fail":
            self._flow_faults.append(spec)
            detail = f"failing flows {spec.src or '*'} -> {spec.dst or '*'}"
        else:  # flow_throttle
            self._flow_faults.append(spec)
            detail = (
                f"throttling flows {spec.src or '*'} -> {spec.dst or '*'} "
                f"to {spec.factor:.2f}x"
            )
        record = AppliedFault(spec=spec, applied_at=now, detail=detail)
        self.applied.append(record)
        self.telemetry.tracer.event(
            "fault.injected",
            sim_s=now,
            kind=spec.kind,
            detail=detail,
        )
        self.telemetry.metrics.counter(
            "faults_injected_total",
            "Faults the campaign actually applied",
            kind=spec.kind,
        ).inc()
        return record

    def _crash(self, name: str, now: float) -> str:
        if name not in self.cluster.nodes:
            return f"crash of {name} was a no-op (already gone)"
        active = self.cluster.active_members
        if name in active and len(active) <= 1:
            return f"crash of {name} suppressed (last active node)"
        self.cluster.destroy(name)
        self.killed.append(name)
        return f"crashed {name}"

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------

    def alive(self, name: str) -> bool:
        """True while ``name`` is still provisioned on the cluster."""
        return name in self.cluster.nodes

    def rate_factor(self, node: str, now: float) -> float:
        """Combined dump/import throughput multiplier for ``node``.

        Overlapping stalls multiply (two 0.5x stalls make 0.25x); a node
        with no active stall runs at 1.0.
        """
        factor = 1.0
        for spec in self._stalls:
            if spec.node == node and spec.active(now):
                factor *= spec.factor
        return factor

    def flow_disposition(self, src: str, dst: str, now: float):
        """How the network should treat one ``src -> dst`` flow at ``now``.

        Returns the string ``"fail"`` when an active ``flow_fail`` spec
        matches, otherwise the combined throttle factor (1.0 = clean).
        This is the callable wired into
        :attr:`NetworkModel.fault_hook <repro.netsim.transfer.NetworkModel>`.
        """
        factor = 1.0
        for spec in self._flow_faults:
            if not spec.active(now) or not spec.matches_flow(src, dst):
                continue
            if spec.kind == "flow_fail":
                return "fail"
            factor *= spec.factor
        return factor

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, master) -> None:
        """Hook this injector into a Master and its network model.

        An injector constructed without telemetry adopts the Master's,
        so injected-fault events land in the same trace as the
        migrations they disturb.
        """
        master.fault_injector = self
        master.network.fault_hook = self.flow_disposition
        if not self.telemetry.enabled:
            self.telemetry = master.telemetry

    def summary(self) -> dict[str, int]:
        """Counts of what the campaign actually did."""
        kinds: dict[str, int] = {}
        for record in self.applied:
            kinds[record.spec.kind] = kinds.get(record.spec.kind, 0) + 1
        kinds["crashed_nodes"] = len(self.killed)
        return kinds
