"""Strict mode: run the invariant validators inside the Master.

:class:`StrictChecker` is the hook the
:class:`~repro.core.master.Master` calls after each migration phase when
constructed with ``strict_mode=True`` (or when an experiment sets
``ExperimentConfig.strict_checks``).  Every check either passes silently
-- bumping the ``invariant_checks_total`` counter -- or raises
:class:`~repro.errors.InvariantViolation` with a structured diff, turning
a silent cache-accounting bug into a loud failure at the phase that
introduced it.

The module also hosts the invariant *smoke runs* behind the
``repro check`` CLI: short strict-mode experiments (one plain, one over
the fault-sweep scenario) that drive real migrations through the
validators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.check.invariants import check_lru, check_ring, check_slabs
from repro.hashing.ketama import ConsistentHashRing
from repro.obs import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memcached.cluster import MemcachedCluster


class StrictChecker:
    """Runs cheap validators over a cluster after migration phases.

    Parameters
    ----------
    cluster:
        The cluster whose nodes/ring to validate.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; passing checks bump
        ``invariant_checks_total{phase=...}``.
    """

    def __init__(
        self,
        cluster: "MemcachedCluster",
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cluster = cluster
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Total individual validator executions that passed.
        self.checks_run = 0

    def _record(self, phase: str, count: int) -> None:
        self.checks_run += count
        self.telemetry.metrics.counter(
            "invariant_checks_total",
            "Strict-mode invariant checks that passed",
            phase=phase,
        ).inc(count)

    def check_nodes(
        self,
        phase: str,
        names: Iterable[str],
        require_sorted: bool = True,
    ) -> int:
        """Validate LRU structure and slab accounting on ``names``.

        Nodes that no longer exist (destroyed mid-migration by a fault)
        are skipped -- their state is gone either way.  Returns the
        number of nodes validated; raises
        :class:`~repro.errors.InvariantViolation` on the first failure.
        """
        checked = 0
        for name in names:
            node = self.cluster.nodes.get(name)
            if node is None:
                continue
            check_lru(node, require_sorted_timestamps=require_sorted)
            check_slabs(node)
            checked += 1
        self._record(phase, 2 * checked)
        return checked

    def check_target_ring(
        self, phase: str, ring: ConsistentHashRing
    ) -> None:
        """Validate a hypothetical (planning-time) ring's structure."""
        check_ring(ring)
        self._record(phase, 1)

    def check_cluster_ring(self, phase: str) -> None:
        """Validate the live ring maps only onto provisioned nodes."""
        check_ring(self.cluster.ring, nodes=self.cluster.nodes)
        self._record(phase, 1)


# ----------------------------------------------------------------------
# Invariant smoke runs (the `repro check` CLI's runtime side)
# ----------------------------------------------------------------------


def strict_smoke_report(
    duration_s: int = 120, seed: int = 3
) -> dict[str, Any]:
    """Run a small strict-mode experiment with one scale-in migration.

    Every migration phase passes through the invariant validators;
    an :class:`~repro.errors.InvariantViolation` propagates to the
    caller.  Returns a summary dict for the CLI to render.
    """
    from repro.sim.experiment import ExperimentConfig, run_experiment
    from repro.workloads.traces import make_trace

    config = ExperimentConfig(
        trace=make_trace("sys", duration_s=duration_s),
        policy="elmem",
        duration_s=duration_s,
        num_keys=25_000,
        initial_nodes=5,
        schedule=[(round(duration_s * 0.4), 4)],
        seed=seed,
        strict_checks=True,
    )
    result = run_experiment(config)
    return _summarise(result, label="strict smoke (sys, 5 -> 4 nodes)")


def strict_fault_sweep_report(
    intensity: float = 0.6,
    duration_s: int = 400,
    seed: int = 3,
) -> dict[str, Any]:
    """Run the fault-sweep scenario in strict mode.

    The hostile case: flow failures and node faults land mid-migration
    while every phase's output is validated.  Completing without an
    :class:`~repro.errors.InvariantViolation` is the acceptance bar for
    the resilient-migration paths.
    """
    from repro.sim.experiment import run_experiment
    from repro.sim.scenarios import fault_sweep_config

    config = fault_sweep_config(
        intensity,
        scenario_name="sys",
        duration_s=duration_s,
        seed=seed,
        num_keys=40_000,
        initial_nodes=6,
    )
    config.strict_checks = True
    result = run_experiment(config)
    return _summarise(
        result,
        label=(
            f"strict fault sweep (sys, intensity {intensity:g}, "
            f"{duration_s}s)"
        ),
    )


def _summarise(result: Any, label: str) -> dict[str, Any]:
    checker = getattr(result.master, "strict_checker", None)
    outcomes = [report.outcome for report in result.reports]
    return {
        "label": label,
        "checks_run": checker.checks_run if checker is not None else 0,
        "migrations": len(outcomes),
        "outcomes": outcomes,
        "hit_rate": result.summary().get("mean_hit_rate", 0.0),
        "violations": 0,
    }
