"""Machine-readable output for ``repro check`` findings.

Two consumers beyond a human reading stdout:

- **SARIF 2.1.0** (:func:`to_sarif`) for code-scanning UIs -- one run,
  one driver (``repro-check``), one result per violation, with the rule
  metadata carried in ``tool.driver.rules``;
- **GitHub workflow commands** (:func:`github_annotations`) -- the
  ``::error file=...,line=...::message`` lines that make CI findings
  show up inline on the pull-request diff.

Both consume the same :class:`~repro.check.lint.Violation` records the
linter and the conformance checker produce, so every REP0xx/REP1xx/
REP2xx finding flows through one serialization path.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.check.lint import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    violations: Sequence[Violation],
    rule_rows: Iterable[tuple[str, str, str]] = (),
) -> dict[str, Any]:
    """A SARIF 2.1.0 document for ``violations``.

    ``rule_rows`` is the ``(code, name, description)`` catalogue; rules
    that appear in findings but not in the catalogue are synthesized
    from the finding itself so the document always validates.
    """
    rules: dict[str, dict[str, Any]] = {
        code: {
            "id": code,
            "name": name,
            "shortDescription": {"text": description},
        }
        for code, name, description in rule_rows
    }
    for violation in violations:
        rules.setdefault(
            violation.code,
            {
                "id": violation.code,
                "name": violation.rule,
                "shortDescription": {"text": violation.rule},
            },
        )
    rule_ids = sorted(rules)
    results = [
        {
            "ruleId": violation.code,
            "ruleIndex": rule_ids.index(violation.code),
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, violation.line),
                            "startColumn": max(1, violation.col + 1),
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://github.com/memcached-elmem/repro"
                        ),
                        "rules": [rules[code] for code in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str,
    violations: Sequence[Violation],
    rule_rows: Iterable[tuple[str, str, str]] = (),
) -> None:
    """Serialize :func:`to_sarif` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(violations, rule_rows), handle, indent=2)
        handle.write("\n")


def github_annotations(violations: Sequence[Violation]) -> list[str]:
    """``::error`` workflow-command lines, one per violation.

    Newlines inside messages are URL-encoded per the workflow-command
    escaping rules; GitHub renders them back.
    """

    def escape(text: str) -> str:
        return (
            text.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )

    return [
        f"::error file={violation.path},line={max(1, violation.line)},"
        f"col={max(1, violation.col + 1)},"
        f"title={violation.code} {violation.rule}::"
        + escape(violation.message)
        for violation in violations
    ]


def violations_json(
    violations: Sequence[Violation],
) -> list[dict[str, Any]]:
    """Plain-dict form of ``violations`` for ``repro check --json``."""
    return [
        {
            "code": violation.code,
            "rule": violation.rule,
            "path": violation.path,
            "line": violation.line,
            "col": violation.col,
            "message": violation.message,
        }
        for violation in violations
    ]
