"""Runtime validators for the cache's load-bearing data structures.

Each ``check_*`` function walks live state through the *public* node /
ring surface and raises :class:`~repro.errors.InvariantViolation` (with a
structured expected/actual diff) on the first inconsistency.  They are
deliberately O(items)-cheap so the Master's ``strict_mode`` can afford to
run them after every migration phase:

- :func:`check_lru` -- doubly-linked MRU list integrity per slab class:
  forward and backward walks agree, lengths match the class and the hash
  table, and (optionally) recency timestamps are monotone, the property
  FuseCache's binary searches rely on;
- :func:`check_slabs` -- page/chunk accounting sums to the allocator
  totals and every item fits the chunk of the class it lives in;
- :func:`check_ring` -- ring structure is sound and every key maps to a
  live member;
- :func:`check_ring_remap` -- a membership change remaps ~1/(k+1) of the
  keys, and only in the direction consistent hashing promises.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import CapacityError, InvariantViolation
from repro.hashing.ketama import DEFAULT_VNODES, ConsistentHashRing
from repro.memcached.items import Item
from repro.memcached.node import MemcachedNode


def _diff(field: str, expected: object, actual: object) -> dict:
    return {field: {"expected": expected, "actual": actual}}


# ----------------------------------------------------------------------
# MRU list integrity
# ----------------------------------------------------------------------


def _walk_forward(
    node_name: str, class_id: int, head: Item | None
) -> list[Item]:
    """Collect items head -> tail, verifying back-pointers en route."""
    items: list[Item] = []
    seen: set[int] = set()
    previous: Item | None = None
    current = head
    while current is not None:
        if id(current) in seen:
            raise InvariantViolation(
                "lru",
                f"{node_name}/class {class_id}",
                f"cycle in the MRU list at key {current.key!r}",
            )
        seen.add(id(current))
        if current.prev is not previous:
            raise InvariantViolation(
                "lru",
                f"{node_name}/class {class_id}",
                f"broken prev pointer at key {current.key!r}",
                diff=_diff(
                    "prev_key",
                    previous.key if previous is not None else None,
                    current.prev.key if current.prev is not None else None,
                ),
            )
        items.append(current)
        previous = current
        current = current.next
    return items


def check_lru(
    node: MemcachedNode, require_sorted_timestamps: bool = True
) -> int:
    """Validate every slab class's MRU list on ``node``.

    Checks, per class: the forward walk's back-pointers are consistent,
    the walk ends at the recorded tail, its length matches the list's
    size counter, every linked item belongs to this class and is the
    object the hash table resolves, and -- when
    ``require_sorted_timestamps`` -- ``last_access`` is non-increasing
    head to tail (true under ``merge``-mode imports; ``prepend`` mode
    deliberately gives it up, as the paper's implementation does).

    Returns the total number of items walked.  Raises
    :class:`InvariantViolation` on the first inconsistency.
    """
    total = 0
    for slab_class in node.slabs.classes:
        mru = slab_class.mru
        subject = f"{node.name}/class {slab_class.class_id}"
        items = _walk_forward(node.name, slab_class.class_id, mru.head)
        if (items and items[-1] is not mru.tail) or (
            not items and mru.tail is not None
        ):
            raise InvariantViolation(
                "lru",
                subject,
                "tail pointer does not match the last walked item",
                diff=_diff(
                    "tail_key",
                    items[-1].key if items else None,
                    mru.tail.key if mru.tail is not None else None,
                ),
            )
        if len(items) != len(mru):
            raise InvariantViolation(
                "lru",
                subject,
                "size counter disagrees with the forward walk",
                diff=_diff("length", len(mru), len(items)),
            )
        for item in items:
            if item.slab_class_id != slab_class.class_id:
                raise InvariantViolation(
                    "lru",
                    subject,
                    f"item {item.key!r} is linked into the wrong class",
                    diff=_diff(
                        "slab_class_id",
                        slab_class.class_id,
                        item.slab_class_id,
                    ),
                )
            if node.peek(item.key) is not item:
                raise InvariantViolation(
                    "lru",
                    subject,
                    f"hash table does not resolve linked item "
                    f"{item.key!r}",
                )
        if require_sorted_timestamps:
            for hotter, colder in zip(items, items[1:]):
                if colder.last_access > hotter.last_access:
                    raise InvariantViolation(
                        "lru",
                        subject,
                        "recency timestamps are not monotone "
                        f"(key {colder.key!r} is newer than its MRU "
                        "predecessor)",
                        diff=_diff(
                            "last_access_order",
                            f"<= {hotter.last_access}",
                            colder.last_access,
                        ),
                    )
        total += len(items)
    if total != node.curr_items:
        raise InvariantViolation(
            "lru",
            node.name,
            "hash table count disagrees with the linked items",
            diff=_diff("item_count", node.curr_items, total),
        )
    return total


# ----------------------------------------------------------------------
# Slab accounting
# ----------------------------------------------------------------------


def check_slabs(node: MemcachedNode) -> int:
    """Validate page/chunk accounting for ``node``'s slab allocator.

    Checks that per-class page counts sum to the allocator's assigned
    total (no leaked pages), the assigned total fits the memory budget,
    each class's used chunks match its item count and capacity, and no
    item is larger than the chunk of the class holding it.

    Returns the number of items accounted for.
    """
    slabs = node.slabs
    summed_pages = sum(c.pages for c in slabs.classes)
    if summed_pages != slabs.assigned_pages:
        raise InvariantViolation(
            "slabs",
            node.name,
            "per-class pages do not sum to the assigned total",
            diff=_diff("assigned_pages", slabs.assigned_pages, summed_pages),
        )
    if slabs.assigned_pages > slabs.total_pages:
        raise InvariantViolation(
            "slabs",
            node.name,
            "more pages assigned than the memory budget holds",
            diff=_diff("total_pages", slabs.total_pages, slabs.assigned_pages),
        )
    total_items = 0
    for slab_class in slabs.classes:
        subject = f"{node.name}/class {slab_class.class_id}"
        if slab_class.used_chunks != len(slab_class.mru):
            raise InvariantViolation(
                "slabs",
                subject,
                "used-chunk counter disagrees with the item list",
                diff=_diff(
                    "used_chunks",
                    len(slab_class.mru),
                    slab_class.used_chunks,
                ),
            )
        if slab_class.used_chunks > slab_class.total_chunks:
            raise InvariantViolation(
                "slabs",
                subject,
                "more chunks used than the class's pages provide",
                diff=_diff(
                    "total_chunks",
                    slab_class.total_chunks,
                    slab_class.used_chunks,
                ),
            )
        for item in slab_class.mru:
            if item.total_size > slab_class.chunk_size:
                raise InvariantViolation(
                    "slabs",
                    subject,
                    f"item {item.key!r} exceeds its class's chunk size",
                    diff=_diff(
                        "chunk_size",
                        f">= {item.total_size}",
                        slab_class.chunk_size,
                    ),
                )
            try:
                proper = slabs.class_for_size(item.total_size)
            except CapacityError:
                raise InvariantViolation(
                    "slabs",
                    subject,
                    f"item {item.key!r} is larger than the largest chunk",
                ) from None
            if proper.class_id != slab_class.class_id:
                raise InvariantViolation(
                    "slabs",
                    subject,
                    f"item {item.key!r} lives in the wrong size class",
                    diff=_diff(
                        "class_id", proper.class_id, slab_class.class_id
                    ),
                )
        total_items += len(slab_class.mru)
    return total_items


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


def check_ring(
    ring: ConsistentHashRing,
    nodes: Iterable[str] | Mapping[str, object] | None = None,
    samples: int = 256,
    cache_audit_limit: int = 2048,
) -> None:
    """Validate ``ring`` structure and that keys map to live members.

    Checks the point list is sorted with owners drawn from the current
    membership, every member contributes at least one virtual point, and
    ``samples`` deterministic probe keys all resolve to members.  When
    ``nodes`` is given (e.g. ``cluster.nodes``), the membership must be a
    subset of it -- a ring pointing at a destroyed node is the
    misrouting bug this check exists for.  Up to ``cache_audit_limit``
    entries of the ring's lookup cache are additionally audited against
    the cold path (a stale entry means the per-membership cache missed an
    invalidation).
    """
    members = ring.members
    if not members:
        raise InvariantViolation("ring", "ring", "ring has no members")
    if nodes is not None:
        live = set(nodes)
        dead = sorted(members - live)
        if dead:
            raise InvariantViolation(
                "ring",
                "ring",
                "membership references nodes that no longer exist",
                diff=_diff("dead_members", [], dead),
            )
    previous_point = -1
    counts: dict[str, int] = {}
    for point, owner in ring.iter_points():
        if point < previous_point:
            raise InvariantViolation(
                "ring",
                "ring",
                "virtual points are not sorted ascending",
                diff=_diff("point_order", f">= {previous_point}", point),
            )
        previous_point = point
        if owner not in members:
            raise InvariantViolation(
                "ring",
                "ring",
                f"virtual point owned by non-member {owner!r}",
            )
        counts[owner] = counts.get(owner, 0) + 1
    missing = sorted(name for name in members if not counts.get(name))
    if missing:
        raise InvariantViolation(
            "ring",
            "ring",
            "members contribute no virtual points",
            diff=_diff("pointless_members", [], missing),
        )
    for index in range(samples):
        owner = ring.node_for_key(f"__ring_probe_{index}__")
        if owner not in members:
            raise InvariantViolation(
                "ring",
                "ring",
                f"probe key routed to non-member {owner!r}",
            )
    # The lookup cache must agree with the cold path under the current
    # membership: a stale entry (cache not invalidated on add/remove)
    # silently misroutes every request for that key, which is exactly the
    # bug class the per-membership cache design must never admit.
    info = ring.cache_info()
    if info["max_size"] and info["size"] > info["max_size"]:
        raise InvariantViolation(
            "ring",
            "ring",
            "lookup cache exceeds its configured capacity",
            diff=_diff("cache_size", f"<= {info['max_size']}", info["size"]),
        )
    audited = 0
    for key, cached_owner in ring.cached_routes().items():
        if audited >= cache_audit_limit:
            break
        audited += 1
        fresh = ring.uncached_lookup(key)
        if cached_owner != fresh:
            raise InvariantViolation(
                "ring",
                "ring",
                f"lookup cache is stale for key {key!r}",
                diff=_diff("owner", fresh, cached_owner),
            )
        if cached_owner not in members:
            raise InvariantViolation(
                "ring",
                "ring",
                f"lookup cache routes {key!r} to non-member "
                f"{cached_owner!r}",
            )


def check_ring_remap(
    members: Iterable[str],
    add: str | None = None,
    remove: str | None = None,
    samples: int = 4000,
    tolerance: float = 0.5,
    vnodes: int = DEFAULT_VNODES,
) -> float:
    """Verify the consistent-hashing remap contract for one change.

    Builds a ring over ``members``, applies exactly one of ``add`` /
    ``remove``, and measures the fraction of ``samples`` probe keys whose
    owner changed.  Asserts the fraction is within ``tolerance``
    (relative) of the ideal ``1/(k+1)`` (add) or ``1/k`` (remove), and
    that keys moved only in the allowed direction: on removal, only keys
    the removed node owned are remapped; on addition, moved keys land
    only on the new node (Section III-D4's property).

    Returns the measured remap fraction.
    """
    names = sorted(set(members))
    if (add is None) == (remove is None):
        raise InvariantViolation(
            "ring",
            "remap",
            "exactly one of add/remove must be given",
        )
    before = ConsistentHashRing(names, vnodes=vnodes)
    after = ConsistentHashRing(names, vnodes=vnodes)
    if add is not None:
        after.add_node(add)
        expected = 1.0 / (len(names) + 1)
        change = f"+{add}"
    else:
        if remove not in before.members:
            raise InvariantViolation(
                "ring", "remap", f"{remove!r} is not a member"
            )
        after.remove_node(remove)
        expected = 1.0 / len(names)
        change = f"-{remove}"
    moved = 0
    for index in range(samples):
        key = f"__remap_probe_{index}__"
        owner_before = before.node_for_key(key)
        owner_after = after.node_for_key(key)
        if owner_before == owner_after:
            continue
        moved += 1
        if remove is not None and owner_before != remove:
            raise InvariantViolation(
                "ring",
                f"remap {change}",
                f"key owned by surviving node {owner_before!r} was "
                "remapped",
                diff=_diff("owner", owner_before, owner_after),
            )
        if add is not None and owner_after != add:
            raise InvariantViolation(
                "ring",
                f"remap {change}",
                "moved key landed on an existing node instead of the "
                "new one",
                diff=_diff("owner", add, owner_after),
            )
    fraction = moved / samples
    if abs(fraction - expected) > tolerance * expected:
        raise InvariantViolation(
            "ring",
            f"remap {change}",
            "remap fraction outside tolerance of the consistent-hashing "
            "ideal",
            diff=_diff(
                "fraction",
                f"{expected:.4f} +/- {tolerance * expected:.4f}",
                round(fraction, 4),
            ),
        )
    return fraction
