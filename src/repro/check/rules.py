"""Repo-specific lint rules (the ``REPnnn`` catalogue).

Each rule encodes a contract the simulation depends on:

========  ==========================  =========================================
code      name                        contract protected
========  ==========================  =========================================
REP001    no-wall-clock               simulated code never reads the wall clock
                                      (determinism; obs/CLI are out of scope)
REP002    no-unseeded-rng             every RNG is seeded and instance-scoped
REP003    no-mutable-default          no shared mutable default arguments
REP004    no-bare-except              failures are never silently widened
REP005    no-float-eq-simtime         simulated-time floats are never compared
                                      with ``==``/``!=``
REP006    no-private-cache-state      only ``repro.memcached`` touches cache
                                      internals (``_table``, ``_lru``, ...)
REP007    public-api-annotations      public ``core``/``memcached`` functions
                                      carry full type annotations
REP008    no-print-in-library         library code reports via ``repro.obs``
                                      or return values, not ``print``
========  ==========================  =========================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import LintRule, Module, Violation

#: Packages whose code runs *inside* the simulated timeline.
SIMULATED_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.memcached",
    "repro.workloads",
)


def _terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class NoWallClockRule(LintRule):
    """REP001: no wall-clock reads in simulated code.

    The simulation has its own clock; reading ``time.time`` (or friends)
    inside ``sim``/``core``/``memcached``/``workloads`` silently couples
    results to the host machine.  Observability wall-clock spans
    (``repro.obs``) and CLI progress timing (``repro.cli``) are outside
    the rule's scope by construction.
    """

    code = "REP001"
    name = "no-wall-clock"
    description = "wall-clock read inside simulated code"

    WALL_TIME_ATTRS = frozenset(
        {"time", "time_ns", "perf_counter", "perf_counter_ns",
         "monotonic", "monotonic_ns", "process_time", "localtime"}
    )
    WALL_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, module: Module) -> bool:
        return module.in_packages(*SIMULATED_PACKAGES)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "datetime",
            ):
                for alias in node.names:
                    if (
                        alias.name in self.WALL_TIME_ATTRS
                        or alias.name in self.WALL_DATETIME_ATTRS
                    ):
                        yield self.violation(
                            module,
                            node,
                            f"importing wall-clock `{node.module}."
                            f"{alias.name}` into simulated code; use the "
                            "sim clock passed as `now`",
                        )
            elif isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "time"
                    and node.attr in self.WALL_TIME_ATTRS
                ):
                    yield self.violation(
                        module,
                        node,
                        f"`time.{node.attr}` reads the wall clock; "
                        "simulated code must use the sim clock (`now`)",
                    )
                elif node.attr in self.WALL_DATETIME_ATTRS and (
                    (isinstance(base, ast.Name) and base.id == "datetime")
                    or (
                        isinstance(base, ast.Attribute)
                        and base.attr == "datetime"
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "datetime"
                    )
                ):
                    yield self.violation(
                        module,
                        node,
                        f"`datetime.{node.attr}` reads the wall clock; "
                        "simulated code must use the sim clock (`now`)",
                    )


class NoUnseededRngRule(LintRule):
    """REP002: every RNG must be seeded and instance-scoped.

    Flags module-level ``random.*`` calls (shared global state),
    ``random.Random()`` without a seed, ``np.random.default_rng()``
    without a seed, and legacy ``np.random.<dist>`` global draws.
    """

    code = "REP002"
    name = "no-unseeded-rng"
    description = "unseeded or module-global RNG use"

    NUMPY_SEEDED_TYPES = frozenset(
        {"Generator", "SeedSequence", "BitGenerator"}
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name) and base.id == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.violation(
                            module,
                            node,
                            "`random.Random()` without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                else:
                    yield self.violation(
                        module,
                        node,
                        f"module-level `random.{func.attr}(...)` uses the "
                        "shared global RNG; use a seeded "
                        "`random.Random(seed)` instance",
                    )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("np", "numpy")
            ):
                if func.attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.violation(
                            module,
                            node,
                            "`np.random.default_rng()` without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                elif func.attr not in self.NUMPY_SEEDED_TYPES:
                    yield self.violation(
                        module,
                        node,
                        f"legacy `np.random.{func.attr}(...)` draws from "
                        "the global numpy RNG; use "
                        "`np.random.default_rng(seed)`",
                    )


class NoMutableDefaultRule(LintRule):
    """REP003: no mutable default argument values."""

    code = "REP003"
    name = "no-mutable-default"
    description = "mutable default argument"

    MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque",
         "Counter", "OrderedDict"}
    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return name in self.MUTABLE_CALLS
        return False

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in `{node.name}`; "
                        "default to None (or use dataclasses.field)",
                    )


class NoBareExceptRule(LintRule):
    """REP004: no bare ``except:`` clauses."""

    code = "REP004"
    name = "no-bare-except"
    description = "bare except clause"

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare `except:` swallows SystemExit/KeyboardInterrupt "
                    "and hides real failures; catch a ReproError subclass",
                )


class NoFloatEqSimTimeRule(LintRule):
    """REP005: no ``==``/``!=`` on simulated-time floats.

    Sim timestamps are accumulated floats; exact equality silently
    depends on summation order.  Comparing against the literal sentinel
    ``0``/``0.0`` ("never expires") or ``None`` stays legal.  Scoped to
    library code: tests assert exact equality against deterministic
    literals on purpose.
    """

    code = "REP005"
    name = "no-float-eq-simtime"
    description = "float equality on a simulated-time value"

    def applies_to(self, module: Module) -> bool:
        return module.in_packages("repro")

    TIME_NAMES = frozenset(
        {"now", "time", "timestamp", "ts", "last_access", "created_at",
         "expires_at", "executed_at", "deadline", "start_time",
         "end_time", "sim_s"}
    )
    TIME_SUFFIXES = ("_s", "_seconds", "_time", "_timestamp", "_at", "_ts")

    def _time_like(self, node: ast.AST) -> str | None:
        name = _terminal_name(node)
        if name is None:
            return None
        if name in self.TIME_NAMES or name.endswith(self.TIME_SUFFIXES):
            return name
        return None

    @staticmethod
    def _exempt_operand(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and (
            node.value is None
            or isinstance(node.value, str)
            or (
                isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)
                and node.value == 0
            )
        )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._exempt_operand(left) or self._exempt_operand(
                    right
                ):
                    continue
                name = self._time_like(left) or self._time_like(right)
                if name is not None:
                    yield self.violation(
                        module,
                        node,
                        f"float equality on simulated-time value "
                        f"`{name}`; use an ordering comparison or "
                        "math.isclose",
                    )


class NoPrivateCacheStateRule(LintRule):
    """REP006: cache internals stay inside ``repro.memcached``.

    The hash table, MRU pointers, and remap table are load-bearing
    invariants; outside code must go through the public node/cluster
    surface (``peek``, ``keys``, ``items_in_mru_order``, ...).  Scoped
    to library code outside ``repro.memcached``: tests corrupt
    internals deliberately to prove the invariant checkers notice.
    """

    code = "REP006"
    name = "no-private-cache-state"
    description = "private cache state touched outside repro.memcached"

    PRIVATE_ATTRS = frozenset(
        {"_table", "_items", "_lru", "_head", "_tail", "_cas_counter",
         "_remap"}
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_packages("repro") and not module.in_packages(
            "repro.memcached"
        )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self.PRIVATE_ATTRS
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.violation(
                    module,
                    node,
                    f"access to private cache state `.{node.attr}` from "
                    "outside repro.memcached; use the public node/cluster "
                    "API",
                )


class PublicApiAnnotationsRule(LintRule):
    """REP007: public ``core``/``memcached`` functions are fully annotated."""

    code = "REP007"
    name = "public-api-annotations"
    description = "public function missing type annotations"

    def applies_to(self, module: Module) -> bool:
        return module.in_packages("repro.core", "repro.memcached")

    def _check_function(
        self, module: Module, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            arg.arg
            for arg in positional + list(args.kwonlyargs)
            if arg.annotation is None
        ]
        for extra in (args.vararg, args.kwarg):
            if extra is not None and extra.annotation is None:
                missing.append(f"*{extra.arg}")
        if missing:
            yield self.violation(
                module,
                node,
                f"public function `{node.name}` has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.violation(
                module,
                node,
                f"public function `{node.name}` is missing a return "
                "annotation",
            )

    def check(self, module: Module) -> Iterator[Violation]:
        # Walk module- and class-level functions only; nested helpers are
        # implementation detail.
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        )
        for scope in scopes:
            for node in ast.iter_child_nodes(scope):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if node.name.startswith("_"):
                    continue
                yield from self._check_function(module, node)


class NoPrintInLibraryRule(LintRule):
    """REP008: library code must not ``print``.

    Human-facing output belongs to ``repro.cli`` and the report renderers
    in ``repro.analysis``; everything else returns data or records
    telemetry through ``repro.obs``.
    """

    code = "REP008"
    name = "no-print-in-library"
    description = "print() call in library code"

    def applies_to(self, module: Module) -> bool:
        return not module.in_packages("repro.cli", "repro.analysis")

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    module,
                    node,
                    "print() in library code; return data or record it "
                    "via repro.obs instead",
                )


DEFAULT_RULES: tuple[LintRule, ...] = (
    NoWallClockRule(),
    NoUnseededRngRule(),
    NoMutableDefaultRule(),
    NoBareExceptRule(),
    NoFloatEqSimTimeRule(),
    NoPrivateCacheStateRule(),
    PublicApiAnnotationsRule(),
    NoPrintInLibraryRule(),
)
"""The full rule catalogue, in code order."""


def rule_catalogue() -> list[tuple[str, str, str]]:
    """(code, name, description) rows for docs and ``repro check --list``."""
    return [
        (rule.code, rule.name, rule.description) for rule in DEFAULT_RULES
    ]
