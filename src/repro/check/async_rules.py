"""Concurrency-safety lint rules for the live tier (the ``REP1xx`` pack).

The REP0xx catalogue (:mod:`repro.check.rules`) protects *simulation*
contracts; these rules protect the *asyncio/threading* contracts that
``repro.net`` and ``repro.proxy`` introduced: one event loop per
:class:`~repro.net.runtime.EventLoopThread`, synchronous callers on other
threads, and coroutines that must never block that shared loop.

========  ===========================  ========================================
code      name                         hazard caught
========  ===========================  ========================================
REP101    no-blocking-call-in-async    blocking call (``time.sleep``, sync
                                       socket/file I/O, subprocess) inside an
                                       ``async def`` stalls every connection
                                       sharing the loop
REP102    no-unawaited-coroutine       a coroutine called but never awaited is
                                       a silent no-op
REP103    no-untracked-task-spawn      ``create_task``/``ensure_future`` whose
                                       result is discarded can be GC'd
                                       mid-flight and swallows exceptions
REP104    no-await-under-sync-lock     ``await`` while holding a
                                       ``threading``-style lock parks the lock
                                       across suspension points (deadlock bait)
REP105    threadsafe-loop-access       loop methods that are not thread-safe
                                       (``call_soon``, ``create_task``)
                                       invoked from synchronous code holding a
                                       loop reference
REP106    no-contextvar-across-bridge  ambient contextvar reads in async-tier
                                       coroutines: contextvars do not cross
                                       ``run_coroutine_threadsafe``, so bridged
                                       callers silently read the default
========  ===========================  ========================================

Every rule is a pure AST check -- no imports of the checked code -- so the
pack runs on fixtures, tests, and the live tree alike.  Deliberate
exceptions carry ``repro: allow[REP1xx]`` markers exactly like the REP0xx
rules (e.g. the documented ``trace_context`` override fallback in
``net/client.py``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import LintRule, Module, Violation

#: Packages whose coroutines routinely run on a loop that synchronous
#: threads drive through :class:`~repro.net.runtime.EventLoopThread` --
#: the scope of the contextvar-bridge rule.
ASYNC_BRIDGED_PACKAGES = ("repro.net", "repro.proxy")


def _terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested function defs.

    A nested ``def``/``async def``/``lambda`` is its own execution scope --
    a sync helper defined inside a coroutine may legitimately run on
    another thread -- so scope-sensitive rules must not attribute its body
    to the enclosing function.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class NoBlockingCallInAsyncRule(LintRule):
    """REP101: no blocking calls inside ``async def``.

    One blocked coroutine blocks the *whole* event loop -- every
    connection, timer, and breaker sharing it.  Flags ``time.sleep``,
    synchronous socket dialing, subprocess execution, synchronous file
    I/O (builtin ``open`` and the ``pathlib`` read/write helpers), and
    ``concurrent.futures`` results awaited with ``.result()`` on futures
    produced by the thread bridge (``submit`` /
    ``run_coroutine_threadsafe``) -- calling ``.result()`` on the loop
    thread for work scheduled on that same loop deadlocks it.
    """

    code = "REP101"
    name = "no-blocking-call-in-async"
    description = "blocking call inside async code"

    #: Dotted call chains that block the calling thread outright.
    BLOCKING_CALLS = frozenset(
        {
            "time.sleep",
            "socket.create_connection",
            "socket.getaddrinfo",
            "socket.gethostbyname",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "os.system",
            "urllib.request.urlopen",
            "requests.get",
            "requests.post",
            "requests.request",
        }
    )
    #: Attribute calls that are file I/O no matter the receiver.
    BLOCKING_ATTRS = frozenset(
        {"read_text", "read_bytes", "write_text", "write_bytes"}
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for func in _functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            bridged = self._bridge_futures(func)
            for node in _walk_scope(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_name(node.func)
                if dotted in self.BLOCKING_CALLS:
                    yield self.violation(
                        module,
                        node,
                        f"blocking `{dotted}(...)` inside `async def "
                        f"{func.name}` stalls the whole event loop; use "
                        "the asyncio equivalent (e.g. `await "
                        "asyncio.sleep`, `asyncio.open_connection`)",
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                ):
                    yield self.violation(
                        module,
                        node,
                        f"synchronous file I/O (`open`) inside `async def "
                        f"{func.name}`; do file work off-loop (e.g. "
                        "`loop.run_in_executor`) or before entering async "
                        "code",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.BLOCKING_ATTRS
                ):
                    yield self.violation(
                        module,
                        node,
                        f"synchronous file I/O "
                        f"(`.{node.func.attr}`) inside `async def "
                        f"{func.name}` blocks the event loop",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "result"
                    and self._is_bridge_future(node.func.value, bridged)
                ):
                    yield self.violation(
                        module,
                        node,
                        "`.result()` on a thread-bridge future inside "
                        f"`async def {func.name}` can deadlock the loop; "
                        "`await asyncio.wrap_future(...)` instead",
                    )

    @staticmethod
    def _bridge_futures(func: ast.AsyncFunctionDef) -> set[str]:
        """Names assigned from ``submit``/``run_coroutine_threadsafe``."""
        names: set[str] = set()
        for node in _walk_scope(func):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
            ):
                continue
            called = _terminal_name(node.value.func)
            if called not in ("submit", "run_coroutine_threadsafe"):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_bridge_future(receiver: ast.AST, bridged: set[str]) -> bool:
        if isinstance(receiver, ast.Name) and receiver.id in bridged:
            return True
        if isinstance(receiver, ast.Call):
            called = _terminal_name(receiver.func)
            return called in ("submit", "run_coroutine_threadsafe")
        return False


class NoUnawaitedCoroutineRule(LintRule):
    """REP102: a coroutine call whose result is discarded never runs.

    Calling an ``async def`` returns a coroutine object; dropping it on
    the floor (a bare expression statement) is a silent no-op plus a
    ``never awaited`` warning at GC time.  Only calls that *provably*
    produce a coroutine are flagged -- inside an ``async def``, a bare
    statement calling a module-level ``async def`` by name, a
    ``self.<m>(...)`` whose ``<m>`` is an async method of the enclosing
    class, or ``asyncio.sleep`` -- so sync methods that merely share a
    name with a coroutine elsewhere in the module stay clean.
    """

    code = "REP102"
    name = "no-unawaited-coroutine"
    description = "coroutine called but never awaited"

    @staticmethod
    def _scopes(
        tree: ast.Module,
    ) -> Iterator[tuple[ast.AsyncFunctionDef, set[str], set[str]]]:
        """Yield (async def, module-level async names, class async names)."""
        module_async = {
            node.name
            for node in ast.iter_child_nodes(tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield node, module_async, set()
            elif isinstance(node, ast.ClassDef):
                methods = {
                    child.name
                    for child in ast.iter_child_nodes(node)
                    if isinstance(child, ast.AsyncFunctionDef)
                }
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.AsyncFunctionDef):
                        yield child, module_async, methods

    def check(self, module: Module) -> Iterator[Violation]:
        for func, module_async, class_async in self._scopes(module.tree):
            for node in _walk_scope(func):
                if not (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                call = node.value
                dotted = _dotted_name(call.func)
                target = _terminal_name(call.func)
                is_coroutine = (
                    dotted == "asyncio.sleep"
                    or (
                        isinstance(call.func, ast.Name)
                        and call.func.id in module_async
                    )
                    or (
                        isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == "self"
                        and call.func.attr in class_async
                    )
                )
                if is_coroutine:
                    yield self.violation(
                        module,
                        node,
                        f"coroutine `{target}(...)` is never awaited; "
                        "`await` it, or hand it to `asyncio.create_task` "
                        "and retain the task",
                    )


class NoUntrackedTaskSpawnRule(LintRule):
    """REP103: fire-and-forget tasks must be retained.

    The event loop keeps only a *weak* reference to tasks; a bare
    ``create_task(...)``/``ensure_future(...)`` statement can be
    garbage-collected mid-flight, and its exception is reported to
    nobody.  Keep a reference and attach a done-callback that discards
    it -- the pattern ``ProxyRouter._spawn`` implements.
    """

    code = "REP103"
    name = "no-untracked-task-spawn"
    description = "task spawned without retaining a reference"

    SPAWNERS = frozenset({"create_task", "ensure_future"})

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
            ):
                continue
            called = _terminal_name(node.value.func)
            if called in self.SPAWNERS:
                yield self.violation(
                    module,
                    node,
                    f"`{called}(...)` result discarded: the loop holds "
                    "only a weak reference, so the task can vanish "
                    "mid-flight and its exception is lost; retain it in "
                    "a set with a done-callback (see "
                    "`ProxyRouter._spawn`)",
                )


class NoAwaitUnderSyncLockRule(LintRule):
    """REP104: never ``await`` while holding a synchronous lock.

    A ``with some_lock:`` block that suspends at an ``await`` keeps the
    *thread* lock held across arbitrary loop iterations; any other
    thread (or any coroutine ending up on a thread that) touching the
    lock deadlocks.  Asyncio locks via ``async with`` are fine.
    """

    code = "REP104"
    name = "no-await-under-sync-lock"
    description = "await while holding a synchronous lock"

    LOCK_FACTORIES = frozenset(
        {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
    )

    def _lock_like(self, expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Call):
            called = _terminal_name(expr.func)
            dotted = _dotted_name(expr.func) or ""
            if called in self.LOCK_FACTORIES and not dotted.startswith(
                "asyncio."
            ):
                return called
            return None
        name = _terminal_name(expr)
        if name is not None and (
            "lock" in name.lower() or "mutex" in name.lower()
        ):
            return name
        return None

    def check(self, module: Module) -> Iterator[Violation]:
        for func in _functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _walk_scope(func):
                # `async with` (ast.AsyncWith) is the sanctioned form.
                if not type(node) is ast.With:  # noqa: E714 - exact type
                    continue
                lock_name = None
                for item in node.items:
                    lock_name = self._lock_like(item.context_expr)
                    if lock_name is not None:
                        break
                if lock_name is None:
                    continue
                for inner in node.body:
                    for sub in ast.walk(inner):
                        if isinstance(sub, ast.Await):
                            yield self.violation(
                                module,
                                sub,
                                f"`await` while holding synchronous lock "
                                f"`{lock_name}`: the thread lock stays "
                                "held across the suspension; use "
                                "`asyncio.Lock` with `async with`, or "
                                "release before awaiting",
                            )
                            break


class ThreadsafeLoopAccessRule(LintRule):
    """REP105: synchronous code must use the thread-safe loop entry points.

    ``loop.call_soon``/``loop.create_task``/``loop.call_later`` are only
    legal *on* the loop's own thread.  Synchronous code that holds a loop
    reference is, in this codebase, by construction on another thread
    (that is what :class:`~repro.net.runtime.EventLoopThread` is for),
    so it must go through ``loop.call_soon_threadsafe``,
    ``asyncio.run_coroutine_threadsafe``, or ``EventLoopThread.submit``.
    ``asyncio.get_event_loop()`` is flagged outright: it hands back a
    thread-local loop that is almost never the live tier's loop.
    """

    code = "REP105"
    name = "threadsafe-loop-access"
    description = "non-thread-safe loop access from synchronous code"

    UNSAFE_METHODS = frozenset(
        {"call_soon", "call_later", "call_at", "create_task"}
    )
    LOOP_NAMES = ("loop",)

    def _loopish(self, receiver: ast.AST) -> bool:
        if isinstance(receiver, ast.Call):
            # get_running_loop() only succeeds on the loop thread, so
            # chained calls on it are safe by construction.
            return _terminal_name(receiver.func) == "get_event_loop"
        name = _terminal_name(receiver)
        return name is not None and name.lower().endswith(self.LOOP_NAMES)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _dotted_name(node.func) == "asyncio.get_event_loop"
            ):
                yield self.violation(
                    module,
                    node,
                    "`asyncio.get_event_loop()` returns a thread-local "
                    "loop, not the live tier's; use "
                    "`asyncio.get_running_loop()` inside coroutines or "
                    "an explicitly owned `EventLoopThread`",
                )
        for func in _functions(module.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _walk_scope(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.UNSAFE_METHODS
                    and self._loopish(node.func.value)
                ):
                    continue
                yield self.violation(
                    module,
                    node,
                    f"`{node.func.attr}` on an event loop from "
                    f"synchronous `{func.name}` is not thread-safe; use "
                    "`call_soon_threadsafe`, "
                    "`asyncio.run_coroutine_threadsafe`, or "
                    "`EventLoopThread.submit`",
                )


class NoContextvarAcrossBridgeRule(LintRule):
    """REP106: ambient contextvar reads in bridged async-tier coroutines.

    Contextvars propagate through ``await`` within one task but **not**
    across ``run_coroutine_threadsafe`` -- the mechanism every
    synchronous caller in this repo uses to reach the live tier.  A
    coroutine in ``repro.net``/``repro.proxy`` that reads an ambient
    contextvar therefore silently sees the default when driven through
    the bridge.  Provide an explicit override attribute (the
    ``NodeClient.trace_context`` pattern) and mark the deliberate
    ambient fallback with ``repro: allow[REP106]``.
    """

    code = "REP106"
    name = "no-contextvar-across-bridge"
    description = "ambient contextvar read in a thread-bridged coroutine"

    READER_CALLS = frozenset({"current_context", "copy_context"})

    def applies_to(self, module: Module) -> bool:
        return module.in_packages(*ASYNC_BRIDGED_PACKAGES)

    @staticmethod
    def _contextvar_get(node: ast.Call) -> str | None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "get"):
            return None
        name = _terminal_name(func.value)
        if name is None:
            return None
        if name.isupper() or name.endswith(("_CONTEXT", "_VAR")):
            return name
        return None

    def check(self, module: Module) -> Iterator[Violation]:
        for func in _functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _walk_scope(func):
                if not isinstance(node, ast.Call):
                    continue
                called = _terminal_name(node.func)
                var_name = self._contextvar_get(node)
                if called in self.READER_CALLS or var_name is not None:
                    subject = var_name or f"{called}()"
                    yield self.violation(
                        module,
                        node,
                        f"ambient contextvar read (`{subject}`) inside "
                        f"`async def {func.name}`: contextvars do not "
                        "cross run_coroutine_threadsafe, so bridged "
                        "callers read the default; accept an explicit "
                        "override (see `NodeClient.trace_context`)",
                    )


ASYNC_RULES: tuple[LintRule, ...] = (
    NoBlockingCallInAsyncRule(),
    NoUnawaitedCoroutineRule(),
    NoUntrackedTaskSpawnRule(),
    NoAwaitUnderSyncLockRule(),
    ThreadsafeLoopAccessRule(),
    NoContextvarAcrossBridgeRule(),
)
"""The concurrency-safety rule pack, in code order (REP101..REP106)."""


def async_rule_catalogue() -> list[tuple[str, str, str]]:
    """(code, name, description) rows for docs and ``--list-rules``."""
    return [(rule.code, rule.name, rule.description) for rule in ASYNC_RULES]
