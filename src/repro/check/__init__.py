"""Correctness tooling: custom lint rules + runtime invariant checking.

The reproduction rests on invariants the paper assumes silently -- MRU
lists are truly recency-ordered (FuseCache's pruning is only correct on
sorted lists), slab accounting never leaks pages, the ketama ring remaps
~1/(k+1) keys on a membership change, and experiments are bit-reproducible
from a seed.  This package *checks* them, from two sides:

- :mod:`repro.check.lint` + :mod:`repro.check.rules` -- an AST-based lint
  framework with repo-specific rules (no wall-clock in simulated code, no
  unseeded RNG, no private cache-state mutation from outside
  ``repro.memcached``, ...) run by ``repro check [paths]``;
- :mod:`repro.check.invariants` / :mod:`repro.check.oracle` -- runtime
  validators over live data structures (LRU list integrity, slab
  accounting, ring mapping, a brute-force FuseCache reference) that raise
  :class:`~repro.errors.InvariantViolation` with a structured diff;
- :mod:`repro.check.strict` -- the ``strict_mode`` hook the
  :class:`~repro.core.master.Master` calls after each migration phase;
- :mod:`repro.check.async_rules` -- the REP1xx concurrency-safety rule
  pack for the asyncio/threading live tier (``repro check --async``);
- :mod:`repro.check.protocol_conformance` -- the REP2xx static
  wire-protocol drift checker (``repro check --protocol``);
- :mod:`repro.check.loopcheck` -- the opt-in runtime loop sanitizer
  behind ``--sanitize`` (asyncio debug mode + blocking-call trap).
"""

from __future__ import annotations

from repro.check.async_rules import ASYNC_RULES, async_rule_catalogue
from repro.check.invariants import (
    check_lru,
    check_ring,
    check_ring_remap,
    check_slabs,
)
from repro.check.lint import (
    LintRule,
    Linter,
    Violation,
    lint_paths,
    lint_source,
)
from repro.check.loopcheck import LoopSanitizer, create_sanitizer
from repro.check.oracle import check_fusecache, fusecache_oracle
from repro.check.protocol_conformance import (
    check_conformance,
    default_conformance,
)
from repro.check.rules import DEFAULT_RULES, rule_catalogue
from repro.check.strict import StrictChecker
from repro.errors import InvariantViolation

__all__ = [
    "ASYNC_RULES",
    "DEFAULT_RULES",
    "InvariantViolation",
    "LintRule",
    "Linter",
    "LoopSanitizer",
    "StrictChecker",
    "Violation",
    "async_rule_catalogue",
    "check_conformance",
    "check_fusecache",
    "check_lru",
    "check_ring",
    "check_ring_remap",
    "check_slabs",
    "create_sanitizer",
    "default_conformance",
    "fusecache_oracle",
    "lint_paths",
    "lint_source",
    "rule_catalogue",
]
