"""AST-based lint framework for repo-specific correctness rules.

The standard linters (ruff) catch generic Python mistakes; the rules this
framework hosts encode *simulation* contracts -- e.g. "no wall-clock reads
inside simulated code" or "never mutate another object's cache state" --
that no off-the-shelf rule set knows about.  See :mod:`repro.check.rules`
for the catalogue.

Rules receive a parsed :class:`Module` (path, dotted module name, AST,
source lines) and yield :class:`Violation` records.  A violation on a line
carrying a ``repro: allow[CODE]`` comment is suppressed, which is the
escape hatch for the rare legitimate exception.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The human-readable one-line form printed by ``repro check``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.rule}] {self.message}"
        )


@dataclass
class Module:
    """One parsed source file handed to every rule."""

    path: str
    #: Dotted module name rooted at ``repro`` (e.g. ``repro.sim.clock``);
    #: rules scope themselves by prefix.  Files outside a ``repro``
    #: package tree get their bare stem.
    module: str
    tree: ast.Module
    source_lines: Sequence[str] = field(default_factory=list)

    def in_packages(self, *prefixes: str) -> bool:
        """True when the module sits under any of the dotted prefixes."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class LintRule:
    """Base class for one lint rule.

    Subclasses set :attr:`code` (stable ``REPnnn`` identifier),
    :attr:`name` (kebab-case slug) and :attr:`description`, and implement
    :meth:`check`.  :meth:`applies_to` scopes the rule to parts of the
    tree; the framework skips non-matching modules entirely.
    """

    code: str = "REP000"
    name: str = "unnamed-rule"
    description: str = ""

    def applies_to(self, module: Module) -> bool:
        """Whether this rule runs on ``module`` (default: every module)."""
        return True

    def check(self, module: Module) -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    def violation(
        self, module: Module, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            code=self.code,
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, rooted at the ``repro`` package.

    ``src/repro/sim/clock.py -> repro.sim.clock``; ``__init__.py`` maps to
    its package.  Paths with no ``repro`` component fall back to the stem,
    which keeps synthetic lint fixtures out of every scoped rule unless
    the test passes an explicit module name to :func:`lint_source`.
    """
    parts = list(path.parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.name]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


ALLOW_MARKER = "repro: allow["


def _allowed(module: Module, violation: Violation) -> bool:
    """True when the violation's line carries a matching allow marker."""
    index = violation.line - 1
    if 0 <= index < len(module.source_lines):
        line = module.source_lines[index]
        return f"{ALLOW_MARKER}{violation.code}]" in line
    return False


class Linter:
    """Runs a rule set over parsed modules."""

    def __init__(self, rules: Sequence[LintRule]) -> None:
        self.rules = list(rules)

    def check_module(self, module: Module) -> list[Violation]:
        """All violations of every applicable rule, suppressions applied."""
        found: list[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for violation in rule.check(module):
                if not _allowed(module, violation):
                    found.append(violation)
        return found

    def check_source(
        self, source: str, path: str = "<string>", module: str | None = None
    ) -> list[Violation]:
        """Lint a source string (the unit-test entry point)."""
        parsed = Module(
            path=path,
            module=module or module_name_for(Path(path)),
            tree=ast.parse(source),
            source_lines=source.splitlines(),
        )
        return self.check_module(parsed)

    def check_file(self, path: Path) -> list[Violation]:
        """Lint one file on disk."""
        source = path.read_text()
        return self.check_source(source, path=str(path))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, skipping caches."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if "__pycache__" not in found.parts:
                    yield found
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[LintRule] | None = None
) -> list[Violation]:
    """Lint every Python file under ``paths`` with ``rules``.

    ``rules=None`` uses the full default catalogue.  Results are ordered
    by path, then line.
    """
    if rules is None:
        from repro.check.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    linter = Linter(rules)
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(linter.check_file(path))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def lint_source(
    source: str,
    module: str,
    rules: Sequence[LintRule] | None = None,
) -> list[Violation]:
    """Lint a source string as if it were ``module`` (test helper)."""
    if rules is None:
        from repro.check.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    return Linter(rules).check_source(
        source, path=f"<{module}>", module=module
    )
